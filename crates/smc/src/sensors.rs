//! Sensor definitions: what each SMC key measures and how faithfully.
//!
//! Every key is a pipeline `quantize(gain · source + drift + noise)`.
//! The per-key parameters (DESIGN.md §6) are what make the paper's Table 2
//! (which keys vary with workload), Table 3/5 (which keys show data
//! dependence under TVLA) and Table 4 (which keys support CPA) come out:
//!
//! * `PHPC` — P-cluster rail, fine quantization, small noise → cleanest;
//! * `PDTR` / `PMVC` / `PMVR` / `PPMR` — other rails / partial views →
//!   moderate leakage;
//! * `PSTR` — system rail with slow drift → TVLA false positives between
//!   same-plaintext sets, CPA failure;
//! * `PHPS` — the model-based estimator, no data dependence at all.

use crate::key::{key, SmcKey};
use crate::types::SmcDataType;
use psc_soc::WindowReport;
use serde::{Deserialize, Serialize};

/// What physical (or model) quantity a key samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SensorSource {
    /// P-cluster power rail, watts.
    PClusterPower,
    /// E-cluster power rail, watts.
    EClusterPower,
    /// DRAM rail plus a fraction of package power (memory/voltage-converter
    /// telemetry aggregates several loads), watts.
    MemoryConverterPower {
        /// Fraction of package power folded in.
        package_fraction: f64,
    },
    /// Total package power, watts.
    PackagePower,
    /// DC-in rail, watts.
    DcInPower,
    /// Whole-system rail, watts.
    SystemPower,
    /// The governor's model-based CPU power estimate (data-independent).
    EstimatorCpuPower,
    /// Junction temperature, °C.
    Temperature,
    /// Fan speed derived from temperature, RPM.
    FanRpm,
    /// A constant (static configuration keys, battery full-charge, …).
    Constant(f64),
}

impl SensorSource {
    /// Extract the source value from a window report.
    #[must_use]
    pub fn sample(&self, report: &WindowReport) -> f64 {
        match *self {
            SensorSource::PClusterPower => report.rails.p_cluster_w,
            SensorSource::EClusterPower => report.rails.e_cluster_w,
            SensorSource::MemoryConverterPower { package_fraction } => {
                report.rails.dram_w + package_fraction * report.rails.package_w
            }
            SensorSource::PackagePower => report.rails.package_w,
            SensorSource::DcInPower => report.rails.dc_in_w,
            SensorSource::SystemPower => report.rails.system_w,
            SensorSource::EstimatorCpuPower => report.estimated_cpu_power_w,
            SensorSource::Temperature => report.temperature_c,
            SensorSource::FanRpm => {
                // Fan curve: off below 45 °C, then ~90 RPM/°C.
                (report.temperature_c - 45.0).max(0.0) * 90.0
            }
            SensorSource::Constant(v) => v,
        }
    }
}

/// Full definition of one SMC key's sensor pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorDef {
    /// The SMC key.
    pub key: SmcKey,
    /// Human-readable description.
    pub description: String,
    /// Measured quantity.
    pub source: SensorSource,
    /// Multiplicative gain applied to the source.
    pub gain: f64,
    /// Quantization step of the published value (same unit as the source
    /// after gain). `PHPC`-class power keys quantize at µW; IOReport-class
    /// estimates at mJ/mW.
    pub quant_step: f64,
    /// Gaussian measurement noise σ added before quantization.
    pub noise_sigma: f64,
    /// Random-walk drift: per-update step σ (0 disables drift).
    pub drift_step_sigma: f64,
    /// Random-walk mean-reversion factor.
    pub drift_reversion: f64,
    /// Declared SMC data type.
    pub data_type: SmcDataType,
    /// Whether this key is power-related (subject to the access-restriction
    /// countermeasure of §5).
    pub power_related: bool,
    /// Whether user space may write this key (fan targets and similar
    /// tunables). §4's negative finding holds here by construction: no
    /// writable key configures a reactive power limit.
    pub writable: bool,
}

impl SensorDef {
    fn power(
        key_name: &str,
        description: &str,
        source: SensorSource,
        gain: f64,
        noise_sigma: f64,
    ) -> Self {
        Self {
            key: key(key_name),
            description: description.to_owned(),
            source,
            gain,
            quant_step: 1.0e-6, // µW resolution (§3.6: SMC power ~µW)
            noise_sigma,
            drift_step_sigma: 0.0,
            drift_reversion: 0.0,
            data_type: SmcDataType::Flt,
            power_related: true,
            writable: false,
        }
    }

    fn constant(key_name: &str, description: &str, value: f64, data_type: SmcDataType) -> Self {
        Self {
            key: key(key_name),
            description: description.to_owned(),
            source: SensorSource::Constant(value),
            gain: 1.0,
            quant_step: 0.0,
            noise_sigma: 0.0,
            drift_step_sigma: 0.0,
            drift_reversion: 0.0,
            data_type,
            power_related: key_name.starts_with('P'),
            writable: false,
        }
    }

    fn environmental(
        key_name: &str,
        description: &str,
        source: SensorSource,
        data_type: SmcDataType,
    ) -> Self {
        Self {
            key: key(key_name),
            description: description.to_owned(),
            source,
            gain: 1.0,
            quant_step: 1.0 / 256.0,
            noise_sigma: 0.05,
            drift_step_sigma: 0.0,
            drift_reversion: 0.0,
            data_type,
            power_related: false,
            writable: false,
        }
    }

    /// Mark the key user-writable (builder style).
    #[must_use]
    pub fn into_writable(mut self) -> Self {
        self.writable = true;
        self
    }
}

/// The sensor population of one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorSet {
    sensors: Vec<SensorDef>,
}

impl SensorSet {
    /// Build from definitions.
    ///
    /// # Panics
    ///
    /// Panics on duplicate keys (a preset bug).
    #[must_use]
    pub fn new(sensors: Vec<SensorDef>) -> Self {
        let mut seen = std::collections::HashSet::new();
        for s in &sensors {
            assert!(seen.insert(s.key), "duplicate sensor key {}", s.key);
        }
        Self { sensors }
    }

    /// All sensor definitions.
    #[must_use]
    pub fn sensors(&self) -> &[SensorDef] {
        &self.sensors
    }

    /// Look up a key's definition.
    #[must_use]
    pub fn get(&self, k: SmcKey) -> Option<&SensorDef> {
        self.sensors.iter().find(|s| s.key == k)
    }

    /// Number of keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sensors.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sensors.is_empty()
    }

    /// Shared (non-device-specific) keys: temperatures, fans, battery,
    /// static `P…` configuration keys that do *not* vary with workload.
    fn common() -> Vec<SensorDef> {
        vec![
            SensorDef::environmental(
                "TC0P",
                "CPU proximity temperature",
                SensorSource::Temperature,
                SmcDataType::Sp78,
            ),
            SensorDef::environmental(
                "TC1P",
                "CPU die temperature",
                SensorSource::Temperature,
                SmcDataType::Sp78,
            ),
            SensorDef::environmental(
                "TG0P",
                "GPU proximity temperature",
                SensorSource::Temperature,
                SmcDataType::Sp78,
            ),
            SensorDef::environmental(
                "F0Ac",
                "Fan 0 actual speed",
                SensorSource::FanRpm,
                SmcDataType::Fpe2,
            ),
            SensorDef::constant(
                "B0FC",
                "Battery full charge capacity (mAh)",
                4382.0,
                SmcDataType::Ui16,
            ),
            SensorDef::constant("BCLM", "Battery charge level max (%)", 100.0, SmcDataType::Ui8),
            SensorDef::constant("BNCB", "Battery connected flag", 1.0, SmcDataType::Flag),
            // Static power-configuration keys: start with `P` so they enter
            // the paper's candidate pool, but never vary with workload —
            // the Table 2 screening must reject them.
            SensorDef::constant("P0IR", "Rail 0 current limit (A)", 6.0, SmcDataType::Flt),
            SensorDef::constant("P1IR", "Rail 1 current limit (A)", 3.5, SmcDataType::Flt),
            SensorDef::constant("PBLC", "Battery charge power limit (W)", 0.0, SmcDataType::Flt),
            SensorDef::constant("PCLC", "Charger power limit (W)", 30.0, SmcDataType::Flt),
            SensorDef::constant("PDBR", "Debug rail setpoint (W)", 0.5, SmcDataType::Flt),
            SensorDef::constant("PMAX", "Maximum package power (W)", 22.0, SmcDataType::Flt),
            SensorDef::constant("PLIM", "Active power limit index", 0.0, SmcDataType::Ui8),
            SensorDef::constant("PHPM", "P-cluster power mode", 0.0, SmcDataType::Ui8),
            // User-writable tunables: none of them is limit-related, which
            // is the §4 finding the writable-key probe reproduces.
            SensorDef::constant("F0Tg", "Fan 0 target speed (RPM)", 0.0, SmcDataType::Fpe2)
                .into_writable(),
            SensorDef::constant("LSOF", "Display backlight off flag", 0.0, SmcDataType::Flag)
                .into_writable(),
            SensorDef::constant("KPPW", "Keyboard backlight power", 0.0, SmcDataType::Ui16)
                .into_writable(),
        ]
    }

    /// The Mac Mini M1 sensor population (Table 2, left column): the
    /// workload-dependent power keys are `PDTR PHPC PHPS PMVR PPMR PSTR`.
    #[must_use]
    pub fn mac_mini_m1() -> Self {
        let mut sensors = Self::common();
        sensors.extend([
            // M1 telemetry is a little coarser/noisier than M2's, which is
            // why Table 4 recovers fewer bytes on the Mini at 350 k traces.
            SensorDef::power("PHPC", "P-cluster power", SensorSource::PClusterPower, 0.92, 6.0e-3),
            SensorDef::power(
                "PDTR",
                "DC-in total rail power",
                SensorSource::DcInPower,
                1.0,
                9.0e-3,
            ),
            SensorDef::power(
                "PMVR",
                "Memory/voltage-regulator rail power",
                SensorSource::MemoryConverterPower { package_fraction: 0.55 },
                1.0,
                5.0e-3,
            ),
            SensorDef::power(
                "PPMR",
                "Package main rail power",
                SensorSource::PackagePower,
                1.0,
                1.1e-2,
            ),
            {
                let mut pstr = SensorDef::power(
                    "PSTR",
                    "System total power",
                    SensorSource::SystemPower,
                    1.0,
                    6.0e-3,
                );
                pstr.drift_step_sigma = 9.0e-3;
                pstr.drift_reversion = 0.02;
                pstr
            },
            {
                let mut phps = SensorDef::power(
                    "PHPS",
                    "P-cluster power setpoint (estimator)",
                    SensorSource::EstimatorCpuPower,
                    1.0,
                    8.0e-4,
                );
                phps.quant_step = 1.0e-3;
                phps
            },
        ]);
        let count = sensors.len() as f64 + 1.0;
        sensors.push(SensorDef::constant("#KEY", "Number of SMC keys", count, SmcDataType::Ui32));
        Self::new(sensors)
    }

    /// The MacBook Air M2 sensor population (Table 2, right column): the
    /// workload-dependent power keys are `PDTR PHPC PHPS PMVC PSTR`.
    #[must_use]
    pub fn macbook_air_m2() -> Self {
        let mut sensors = Self::common();
        sensors.extend([
            SensorDef::power("PHPC", "P-cluster power", SensorSource::PClusterPower, 1.0, 4.0e-3),
            SensorDef::power(
                "PDTR",
                "DC-in total rail power",
                SensorSource::DcInPower,
                1.0,
                8.0e-3,
            ),
            SensorDef::power(
                "PMVC",
                "Memory/voltage-converter rail power",
                SensorSource::MemoryConverterPower { package_fraction: 0.55 },
                1.0,
                4.5e-3,
            ),
            {
                let mut pstr = SensorDef::power(
                    "PSTR",
                    "System total power",
                    SensorSource::SystemPower,
                    1.0,
                    5.0e-3,
                );
                pstr.drift_step_sigma = 8.0e-3;
                pstr.drift_reversion = 0.02;
                pstr
            },
            {
                let mut phps = SensorDef::power(
                    "PHPS",
                    "P-cluster power setpoint (estimator)",
                    SensorSource::EstimatorCpuPower,
                    1.0,
                    8.0e-4,
                );
                phps.quant_step = 1.0e-3;
                phps
            },
        ]);
        let count = sensors.len() as f64 + 1.0;
        sensors.push(SensorDef::constant("#KEY", "Number of SMC keys", count, SmcDataType::Ui32));
        Self::new(sensors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_soc::PowerRails;

    fn report(p: f64, est: f64, temp: f64) -> WindowReport {
        WindowReport {
            duration_s: 1.0,
            rails: PowerRails::assemble(p, 0.3, 0.4, 0.5, 0.88, 1.5),
            estimated_cpu_power_w: est,
            estimated_p_cluster_w: est * 0.8,
            estimated_e_cluster_w: est * 0.2,
            p_freq_ghz: 3.5,
            e_freq_ghz: 2.4,
            temperature_c: temp,
            p_core_reps: 1.0e7,
            ..WindowReport::default()
        }
    }

    #[test]
    fn m2_has_table2_power_keys() {
        let set = SensorSet::macbook_air_m2();
        for name in ["PDTR", "PHPC", "PHPS", "PMVC", "PSTR"] {
            assert!(set.get(key(name)).is_some(), "missing {name}");
        }
        assert!(set.get(key("PMVR")).is_none(), "PMVR is M1-only");
        assert!(set.get(key("PPMR")).is_none(), "PPMR is M1-only");
    }

    #[test]
    fn m1_has_table2_power_keys() {
        let set = SensorSet::mac_mini_m1();
        for name in ["PDTR", "PHPC", "PHPS", "PMVR", "PPMR", "PSTR"] {
            assert!(set.get(key(name)).is_some(), "missing {name}");
        }
        assert!(set.get(key("PMVC")).is_none(), "PMVC is M2-only");
    }

    #[test]
    fn candidate_pool_is_realistically_large() {
        // §3.2: "approximately 30" P-keys pool; we model a smaller but
        // non-trivial population with both varying and static P-keys.
        let set = SensorSet::macbook_air_m2();
        let p_keys = set.sensors().iter().filter(|s| s.key.is_power_key()).count();
        assert!(p_keys >= 10, "need a meaningful screening pool, got {p_keys}");
        assert!(set.len() > p_keys, "non-P keys must exist too");
    }

    #[test]
    fn phpc_samples_p_cluster_rail() {
        let set = SensorSet::macbook_air_m2();
        let def = set.get(key("PHPC")).unwrap();
        let r = report(2.5, 3.0, 40.0);
        assert!((def.source.sample(&r) - 2.5).abs() < 1e-12);
        assert!(def.power_related);
        assert_eq!(def.quant_step, 1.0e-6, "µW quantization");
    }

    #[test]
    fn phps_samples_estimator_not_rails() {
        let set = SensorSet::macbook_air_m2();
        let def = set.get(key("PHPS")).unwrap();
        let a = report(2.5, 3.0, 40.0);
        let b = report(9.9, 3.0, 40.0); // rails change, estimator fixed
        assert_eq!(def.source.sample(&a), def.source.sample(&b));
    }

    #[test]
    fn pstr_is_the_only_drifting_key() {
        let set = SensorSet::macbook_air_m2();
        for s in set.sensors() {
            if s.key == key("PSTR") {
                assert!(s.drift_step_sigma > 0.0);
            } else {
                assert_eq!(s.drift_step_sigma, 0.0, "{} must not drift", s.key);
            }
        }
    }

    #[test]
    fn static_p_keys_do_not_vary() {
        let set = SensorSet::macbook_air_m2();
        let def = set.get(key("PMAX")).unwrap();
        let a = report(1.0, 1.0, 30.0);
        let b = report(20.0, 15.0, 90.0);
        assert_eq!(def.source.sample(&a), def.source.sample(&b));
        assert_eq!(def.noise_sigma, 0.0);
    }

    #[test]
    fn fan_curve_off_when_cool() {
        let set = SensorSet::mac_mini_m1();
        let def = set.get(key("F0Ac")).unwrap();
        assert_eq!(def.source.sample(&report(1.0, 1.0, 30.0)), 0.0);
        assert!(def.source.sample(&report(1.0, 1.0, 80.0)) > 1000.0);
    }

    #[test]
    fn memory_converter_mixes_package() {
        let src = SensorSource::MemoryConverterPower { package_fraction: 0.5 };
        let r = report(2.0, 1.0, 40.0);
        let expected = r.rails.dram_w + 0.5 * r.rails.package_w;
        assert!((src.sample(&r) - expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "duplicate sensor key")]
    fn duplicate_keys_rejected() {
        let dup = SensorDef::constant("PMAX", "dup", 1.0, SmcDataType::Flt);
        let dup2 = SensorDef::constant("PMAX", "dup2", 2.0, SmcDataType::Flt);
        let _ = SensorSet::new(vec![dup, dup2]);
    }
}
