//! Property tests for the distributed fleet protocol:
//!
//! * every worker/aggregator message round-trips bit-exactly, and any
//!   truncation or single bit flip is a typed error (the frame CRC
//!   covers tags and lengths too) — corrupted partials can never
//!   misparse into a mergeable message;
//! * the `(epoch, seq)` dedup gate admits every distinct stamp at most
//!   once under arbitrary at-least-once delivery schedules (replays,
//!   reorders, duplicates), and the admitted subsequence is strictly
//!   increasing — the merge-exactly-once law.

use proptest::prelude::*;
use psc_core::session::ShardHealth;
use psc_core::spec::AnalysisMode;
use psc_serve::fleet::{AggregatorMsg, DedupGate, MemberFinal, WorkerMsg};
use psc_telemetry::ring::ChannelStats;

fn ascii(bytes: &[u8]) -> String {
    bytes.iter().map(|b| char::from(b'a' + b % 26)).collect()
}

#[allow(clippy::too_many_arguments)]
fn build_worker_msg(
    kind: usize,
    member: u32,
    epoch: u64,
    seq: u64,
    blob: &[u8],
    counts: (u64, u64),
    text: &[u8],
    health_kind: usize,
) -> WorkerMsg {
    match kind % 4 {
        0 => WorkerMsg::Hello {
            member,
            members: member.wrapping_add(1),
            epoch,
            fingerprint: seq.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            mode: [AnalysisMode::Tvla, AnalysisMode::Cpa, AnalysisMode::Adaptive][kind % 3],
        },
        1 => WorkerMsg::Partial { member, epoch, seq, frame: blob.to_vec() },
        2 => WorkerMsg::Heartbeat { member, epoch },
        _ => WorkerMsg::Done {
            member,
            epoch,
            seq,
            state: MemberFinal {
                analysis: blob.to_vec(),
                monitor: blob.iter().rev().copied().collect(),
                bus: ChannelStats {
                    accepted: counts.0,
                    dropped: counts.1,
                    delivered: counts.0,
                    high_water: counts.1.min(1024),
                },
                io_errors: counts.1 % 7,
                io_retries: counts.0 % 5,
                health: match health_kind % 3 {
                    0 => ShardHealth::Ok,
                    1 => ShardHealth::Degraded { reason: ascii(text) },
                    _ => ShardHealth::Failed { reason: ascii(text) },
                },
            },
        },
    }
}

fn assert_rejects_every_truncation(frame: &[u8], decodes: &dyn Fn(&[u8]) -> bool) {
    for len in 0..frame.len() {
        assert!(!decodes(&frame[..len]), "truncation to {len}/{} bytes parsed", frame.len());
    }
}

fn assert_rejects_every_bit_flip(frame: &[u8], decodes: &dyn Fn(&[u8]) -> bool) {
    let mut copy = frame.to_vec();
    for byte in 0..copy.len() {
        for bit in 0..8 {
            copy[byte] ^= 1 << bit;
            assert!(!decodes(&copy), "bit {bit} of byte {byte} flipped and still parsed");
            copy[byte] ^= 1 << bit;
        }
    }
}

proptest! {
    #[test]
    fn worker_messages_round_trip_and_reject_corruption(
        kind in 0usize..4,
        member in 0u32..8,
        epoch in any::<u64>(),
        seq in any::<u64>(),
        blob in proptest::collection::vec(any::<u8>(), 0..24),
        accepted in any::<u64>(),
        dropped in any::<u64>(),
        text in proptest::collection::vec(any::<u8>(), 8),
        health_kind in 0usize..3,
    ) {
        let msg = build_worker_msg(
            kind, member, epoch, seq, &blob, (accepted, dropped), &text, health_kind,
        );
        let frame = msg.encode();
        prop_assert_eq!(WorkerMsg::decode(&frame).unwrap(), msg);
        let decodes = |bytes: &[u8]| WorkerMsg::decode(bytes).is_ok();
        assert_rejects_every_truncation(&frame, &decodes);
        assert_rejects_every_bit_flip(&frame, &decodes);
    }

    #[test]
    fn aggregator_messages_round_trip_and_reject_corruption(
        kind in 0usize..3,
        epoch in any::<u64>(),
        seq in any::<u64>(),
        accepted in any::<bool>(),
        text in proptest::collection::vec(any::<u8>(), 0..16),
    ) {
        let msg = match kind {
            0 => AggregatorMsg::Welcome,
            1 => AggregatorMsg::Ack { epoch, seq, accepted },
            _ => AggregatorMsg::Reject { reason: ascii(&text) },
        };
        let frame = msg.encode();
        prop_assert_eq!(AggregatorMsg::decode(&frame).unwrap(), msg);
        let decodes = |bytes: &[u8]| AggregatorMsg::decode(bytes).is_ok();
        assert_rejects_every_truncation(&frame, &decodes);
        assert_rejects_every_bit_flip(&frame, &decodes);
    }

    /// Merge-exactly-once: under an arbitrary at-least-once delivery
    /// schedule (any mix of fresh stamps, duplicates and replays) the
    /// gate admits each distinct stamp at most once, the admitted
    /// subsequence is strictly increasing, and an exact replay of any
    /// already-admitted stamp is always refused.
    #[test]
    fn dedup_gate_admits_each_stamp_at_most_once(
        stamps in proptest::collection::vec((0u64..4, 0u64..16), 1..64),
        replay_at in any::<u64>(),
    ) {
        let mut gate = DedupGate::default();
        let mut admitted: Vec<(u64, u64)> = Vec::new();
        for &(epoch, seq) in &stamps {
            if gate.admit(epoch, seq) {
                admitted.push((epoch, seq));
            }
            // An immediate duplicate of anything is always refused.
            prop_assert!(
                !gate.admit(epoch, seq),
                "duplicate stamp ({}, {}) admitted twice in a row", epoch, seq
            );
        }
        // Strictly increasing admitted subsequence.
        for pair in admitted.windows(2) {
            prop_assert!(pair[1] > pair[0], "admitted stamps not strictly increasing: {pair:?}");
        }
        // Each distinct stamp admitted at most once.
        let mut dedup = admitted.clone();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), admitted.len(), "a stamp was admitted twice");
        // Replaying any previously admitted stamp is refused.
        if !admitted.is_empty() {
            let idx = (replay_at as usize) % admitted.len();
            let (epoch, seq) = admitted[idx];
            prop_assert!(!gate.admit(epoch, seq), "replay of ({epoch}, {seq}) admitted");
        }
        prop_assert_eq!(gate.last(), admitted.last().copied());
    }

    /// The gate's law restated pointwise: a stamp is admitted iff it is
    /// lexicographically greater than the last admitted stamp — epoch
    /// outranks sequence.
    #[test]
    fn dedup_gate_is_exactly_lexicographic(
        first in (0u64..8, 0u64..8),
        second in (0u64..8, 0u64..8),
    ) {
        let mut gate = DedupGate::default();
        prop_assert!(gate.admit(first.0, first.1), "the first stamp is always admitted");
        let expected = second > first;
        prop_assert_eq!(gate.admit(second.0, second.1), expected);
    }
}
