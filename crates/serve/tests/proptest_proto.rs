//! Adversarial wire-protocol properties — the serve protocol must
//! reject corruption exactly as strictly as the checkpoint codec it is
//! built on (mirroring `proptest_sca.rs`'s checkpoint coverage):
//!
//! * every message kind round-trips bit-exactly;
//! * truncation at **every** byte offset is a typed error;
//! * **any** single bit flip is a typed error (the CRC trailer covers
//!   the whole frame, tags and lengths included);
//! * an oversized length prefix is refused before the frame is read;
//! * unknown section tags are skipped forward-compatibly.

use proptest::prelude::*;
use psc_core::spec::AnalysisMode;
use psc_serve::proto::{
    read_frame, with_extra_section, CancelResult, JobState, JobSummary, ProtoError, RejectReason,
    Request, Response, MAX_FRAME_LEN,
};
use psc_telemetry::metrics::{names, MetricsRegistry, MetricsSnapshot};

fn ascii(bytes: &[u8]) -> String {
    bytes.iter().map(|b| char::from(b'a' + b % 26)).collect()
}

fn snapshot(obs: u64, dropped: u64, latency: u64) -> MetricsSnapshot {
    let reg = MetricsRegistry::new();
    reg.counter(names::BUS_OBS).add(obs);
    reg.counter(names::BUS_DROPPED).add(dropped);
    reg.gauge(names::BUS_HIGH_WATER).set_max(obs.min(1024));
    reg.histogram(names::CONSUME_BLOCK_NS).record(latency);
    reg.snapshot()
}

fn build_request(kind: usize, job: u64, name: &[u8], wait: bool, text: &[u8]) -> Request {
    match kind % 5 {
        0 => Request::Submit { tenant: ascii(name), wait, spec: ascii(text) },
        1 => Request::Status,
        2 => Request::Cancel { job },
        3 => Request::Watch { job },
        _ => Request::Drain,
    }
}

#[allow(clippy::too_many_arguments)]
fn build_response(
    kind: usize,
    job: u64,
    name: &[u8],
    text: &[u8],
    blob: &[u8],
    counts: (u64, u64, u64),
    flags: (bool, usize, usize),
) -> Response {
    let (obs, dropped, latency) = counts;
    let (flag, reason_kind, state_kind) = flags;
    match kind % 7 {
        0 => Response::Accepted { job },
        1 => Response::Rejected {
            reason: match reason_kind % 6 {
                0 => RejectReason::Saturated { detail: ascii(text) },
                1 => RejectReason::TenantBusy { tenant: ascii(name), cap: obs },
                2 => RejectReason::Draining,
                3 => RejectReason::BadSpec { error: ascii(text) },
                4 => RejectReason::DeadlineExceeded { deadline_ms: obs },
                _ => RejectReason::Failed { error: ascii(text) },
            },
        },
        2 => Response::Progress { job, metrics: snapshot(obs, dropped, latency) },
        3 => Response::Report {
            job,
            mode: [AnalysisMode::Tvla, AnalysisMode::Cpa, AnalysisMode::Adaptive][state_kind % 3],
            stopped_early: flag,
            rounds: latency,
            text: ascii(text),
            analysis: blob.to_vec(),
        },
        4 => Response::JobList {
            jobs: vec![JobSummary {
                id: job,
                tenant: ascii(name),
                mode: [AnalysisMode::Tvla, AnalysisMode::Cpa, AnalysisMode::Adaptive]
                    [state_kind % 3],
                state: [
                    JobState::Queued,
                    JobState::Running,
                    JobState::Stopping,
                    JobState::Completed,
                    JobState::Cancelled,
                    JobState::Failed,
                ][state_kind % 6],
            }],
            server: snapshot(obs, dropped, latency),
        },
        5 => Response::CancelOutcome {
            job,
            outcome: [
                CancelResult::Cancelled,
                CancelResult::Stopping,
                CancelResult::AlreadyDone,
                CancelResult::NotFound,
            ][reason_kind % 4],
        },
        _ => Response::Drained { completed: obs, rejected: dropped },
    }
}

/// Truncation at every byte offset must be a typed error, never a
/// short parse.
fn assert_rejects_every_truncation(frame: &[u8], decodes: &dyn Fn(&[u8]) -> bool) {
    for len in 0..frame.len() {
        assert!(!decodes(&frame[..len]), "truncation to {len}/{} bytes parsed", frame.len());
    }
}

/// Any single bit flip must be a typed error — the CRC trailer covers
/// the entire frame, so even tag and length corruption is caught.
fn assert_rejects_every_bit_flip(frame: &[u8], decodes: &dyn Fn(&[u8]) -> bool) {
    let mut copy = frame.to_vec();
    for byte in 0..copy.len() {
        for bit in 0..8 {
            copy[byte] ^= 1 << bit;
            assert!(!decodes(&copy), "bit {bit} of byte {byte} flipped and still parsed");
            copy[byte] ^= 1 << bit;
        }
    }
}

proptest! {
    #[test]
    fn requests_round_trip_and_reject_corruption(
        kind in 0usize..5,
        job in any::<u64>(),
        name in proptest::collection::vec(any::<u8>(), 3),
        wait in any::<bool>(),
        text in proptest::collection::vec(any::<u8>(), 12),
    ) {
        let request = build_request(kind, job, &name, wait, &text);
        let frame = request.encode();
        prop_assert_eq!(Request::decode(&frame).unwrap(), request);
        let decodes = |bytes: &[u8]| Request::decode(bytes).is_ok();
        assert_rejects_every_truncation(&frame, &decodes);
        assert_rejects_every_bit_flip(&frame, &decodes);
    }

    #[test]
    fn responses_round_trip_and_reject_corruption(
        kind in 0usize..7,
        job in any::<u64>(),
        name in proptest::collection::vec(any::<u8>(), 3),
        text in proptest::collection::vec(any::<u8>(), 10),
        blob in proptest::collection::vec(any::<u8>(), 6),
        obs in any::<u64>(),
        dropped in any::<u64>(),
        latency in any::<u64>(),
        flag in any::<bool>(),
        reason_kind in 0usize..6,
        state_kind in 0usize..6,
    ) {
        let response = build_response(
            kind, job, &name, &text, &blob,
            (obs, dropped, latency),
            (flag, reason_kind, state_kind),
        );
        let frame = response.encode();
        prop_assert_eq!(Response::decode(&frame).unwrap(), response);
        let decodes = |bytes: &[u8]| Response::decode(bytes).is_ok();
        assert_rejects_every_truncation(&frame, &decodes);
        assert_rejects_every_bit_flip(&frame, &decodes);
    }

    #[test]
    fn unknown_sections_skip_on_both_message_kinds(
        job in any::<u64>(),
        tag in 100u16..u16::MAX,
        extra in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let request = Request::Cancel { job };
        let framed = with_extra_section(&request.encode(), tag, &extra);
        prop_assert_eq!(Request::decode(&framed).unwrap(), request);

        let response = Response::Accepted { job };
        let framed = with_extra_section(&response.encode(), tag, &extra);
        prop_assert_eq!(Response::decode(&framed).unwrap(), response);
    }

    #[test]
    fn oversized_length_prefixes_are_typed_errors(extra in 1u32..1000) {
        let len = MAX_FRAME_LEN + extra;
        let mut wire = Vec::new();
        wire.extend_from_slice(&len.to_le_bytes());
        // No body at all: the cap must trip before any read of it.
        let mut cursor = std::io::Cursor::new(wire);
        match read_frame(&mut cursor) {
            Err(ProtoError::Oversized(got)) => prop_assert_eq!(got, len),
            other => prop_assert!(false, "expected Oversized, got {:?}", other.map(|_| ())),
        }
    }
}
