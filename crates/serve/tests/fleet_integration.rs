//! End-to-end distributed fleet aggregation: an aggregator plus one
//! `run_worker` per fleet member (threads here; real processes in the
//! CLI smoke test) must reproduce the in-process fleet run **byte for
//! byte** on TVLA and CPA, and the whole transport fault matrix —
//! disconnect + reconnect, delayed frames, corrupted frames — must
//! never panic the aggregator, dedup exactly, and leave the survivor
//! merge equal to the fault-free run.

use psc_core::report;
use psc_core::session::ShardHealth;
use psc_core::spec::{AnalysisMode, CampaignSpec};
use psc_core::{Device, TuneConfig};
use psc_serve::fleet::{
    run_worker, Aggregator, AggregatorConfig, FleetOutcome, WorkerConfig, WorkerSummary,
};
use std::path::PathBuf;
use std::time::Duration;

fn spec(mode: AnalysisMode, traces: usize) -> CampaignSpec {
    CampaignSpec {
        mode,
        device: Device::MacMiniM1,
        kernel: false,
        fleet: true,
        traces,
        shards: 2,
        seed: 0x00D5_C0DE,
        key: *b"fleet-integratio",
        every: 4,
        tune: TuneConfig::default(),
        mitigation: None,
        record: None,
        monitor: None,
    }
}

fn temp_dir(tag: &str, member: usize) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("psc_fleet_itest_{tag}_{member}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn cleanup(dir: &PathBuf) {
    if let Ok(entries) = std::fs::read_dir(dir) {
        for e in entries.flatten() {
            std::fs::remove_file(e.path()).ok();
        }
    }
    std::fs::remove_dir(dir).ok();
}

/// Run a full distributed campaign: bind the aggregator on an
/// ephemeral port, spawn one worker thread per config, join everything.
fn run_distributed(
    spec: &CampaignSpec,
    tag: &str,
    mut tweak: impl FnMut(usize, &mut WorkerConfig),
) -> (FleetOutcome, Vec<WorkerSummary>) {
    let members = spec.fleet_members().len();
    let aggregator =
        Aggregator::bind("127.0.0.1:0", spec.clone(), AggregatorConfig::default()).expect("bind");
    let addr = aggregator.local_addr().expect("local addr");
    let agg_handle = std::thread::spawn(move || aggregator.run());
    let dirs: Vec<PathBuf> = (0..members).map(|m| temp_dir(tag, m)).collect();
    let summaries: Vec<WorkerSummary> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..members)
            .map(|member| {
                let mut cfg = WorkerConfig::new(member, dirs[member].clone());
                cfg.heartbeat_interval = Duration::from_millis(50);
                tweak(member, &mut cfg);
                let spec = spec.clone();
                scope.spawn(move || run_worker(addr, &spec, &cfg).expect("worker"))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker thread")).collect()
    });
    let outcome = agg_handle.join().expect("aggregator thread").expect("aggregation");
    for dir in &dirs {
        cleanup(dir);
    }
    (outcome, summaries)
}

fn inline_baseline(spec: &CampaignSpec) -> (String, Vec<u8>) {
    let outcome = report::run_spec(spec);
    (report::campaign_banner(spec) + &outcome.body, outcome.analysis)
}

#[test]
fn distributed_tvla_is_byte_identical_to_the_inline_fleet_run() {
    let spec = spec(AnalysisMode::Tvla, 48);
    let (baseline_text, baseline_analysis) = inline_baseline(&spec);
    let (outcome, summaries) = run_distributed(&spec, "tvla", |_, _| {});

    assert_eq!(outcome.merged.text, baseline_text, "report text must match byte for byte");
    assert_eq!(outcome.merged.analysis, baseline_analysis, "encoded analysis state must match");
    assert_eq!(outcome.merged.survivors, 2);
    assert!(outcome.merged.health.iter().all(ShardHealth::is_ok));
    assert_eq!(outcome.stats.corrupt_frames, 0);
    assert_eq!(outcome.stats.reconnects, 0);
    for s in &summaries {
        assert_eq!(s.epochs, 1, "no reconnects on a clean transport");
    }
}

#[test]
fn distributed_cpa_is_byte_identical_to_the_inline_fleet_run() {
    let spec = spec(AnalysisMode::Cpa, 48);
    let (baseline_text, baseline_analysis) = inline_baseline(&spec);
    let (outcome, _) = run_distributed(&spec, "cpa", |_, _| {});

    assert_eq!(outcome.merged.text, baseline_text, "report text must match byte for byte");
    assert_eq!(outcome.merged.analysis, baseline_analysis, "encoded analysis state must match");
    assert_eq!(outcome.merged.survivors, 2);
}

/// Disconnect + reconnect: the worker's epoch bumps, re-sends dedup
/// exactly once, and the merged accumulators equal the fault-free run
/// — the member surfaces as `Degraded` with the reconnect count.
#[test]
fn a_disconnecting_worker_reconnects_and_merges_exactly_once() {
    let spec = spec(AnalysisMode::Tvla, 48);
    let (_, baseline_analysis) = inline_baseline(&spec);
    let (outcome, summaries) = run_distributed(&spec, "disc", |member, cfg| {
        if member == 1 {
            cfg.faults.disconnects = 1;
        }
    });

    assert_eq!(
        outcome.merged.analysis, baseline_analysis,
        "reconnect re-sends must merge exactly once"
    );
    assert_eq!(outcome.merged.survivors, 2);
    assert!(outcome.merged.health[0].is_ok());
    assert!(
        matches!(outcome.merged.health[1], ShardHealth::Degraded { .. }),
        "a reconnected member is degraded, not failed: {:?}",
        outcome.merged.health[1]
    );
    assert_eq!(summaries[1].reconnects, 1, "exactly the injected disconnect");
    assert_eq!(summaries[1].epochs, 2, "one epoch bump");
    assert!(outcome.stats.reconnects >= 1);
}

/// Delayed frames slow the stream down but change nothing: full byte
/// identity, all members healthy.
#[test]
fn delayed_frames_change_nothing() {
    let spec = spec(AnalysisMode::Tvla, 48);
    let (baseline_text, baseline_analysis) = inline_baseline(&spec);
    let (outcome, _) = run_distributed(&spec, "delay", |_, cfg| {
        cfg.faults.frame_delay_us = 2_000;
    });

    assert_eq!(outcome.merged.text, baseline_text);
    assert_eq!(outcome.merged.analysis, baseline_analysis);
    assert!(outcome.merged.health.iter().all(ShardHealth::is_ok));
}

/// Corrupted frames are CRC-rejected and counted — never merged, never
/// a panic — and the final result is unharmed because partials are
/// cumulative and the terminal exchange retries under a fresh stamp.
#[test]
fn corrupted_frames_are_rejected_and_the_merge_is_unharmed() {
    let spec = spec(AnalysisMode::Tvla, 48);
    let (_, baseline_analysis) = inline_baseline(&spec);
    let (outcome, summaries) = run_distributed(&spec, "corrupt", |member, cfg| {
        if member == 0 {
            cfg.faults.frame_corrupt = 1;
        }
    });

    assert_eq!(outcome.merged.analysis, baseline_analysis, "corruption must never merge");
    assert_eq!(outcome.merged.survivors, 2);
    assert_eq!(outcome.stats.corrupt_frames, 1, "exactly the injected corruption");
    assert!(summaries[0].rejected >= 1, "the worker saw its frame refused");
}

/// Frame drops starve the partial stream but the campaign still lands:
/// dropped advisory frames cost nothing, the terminal exchange is
/// drop-exempt, and the merge equals the fault-free run.
#[test]
fn dropped_partials_do_not_stall_completion() {
    let spec = spec(AnalysisMode::Tvla, 48);
    let (baseline_text, baseline_analysis) = inline_baseline(&spec);
    let (outcome, _) = run_distributed(&spec, "drop", |_, cfg| {
        cfg.faults.frame_drops = 3;
    });

    assert_eq!(outcome.merged.text, baseline_text);
    assert_eq!(outcome.merged.analysis, baseline_analysis);
    assert_eq!(outcome.merged.survivors, 2);
}

/// A worker that never shows up is demoted on the join deadline and
/// the survivor-restricted merge still completes.
#[test]
fn a_missing_worker_is_demoted_and_survivors_merge() {
    let spec = spec(AnalysisMode::Tvla, 48);
    let cfg = AggregatorConfig {
        join_timeout: Duration::from_millis(1_500),
        heartbeat_timeout: Duration::from_millis(1_500),
        ..AggregatorConfig::default()
    };
    let aggregator = Aggregator::bind("127.0.0.1:0", spec.clone(), cfg).expect("bind");
    let addr = aggregator.local_addr().expect("local addr");
    let agg_handle = std::thread::spawn(move || aggregator.run());

    // Only member 0 ever connects.
    let dir = temp_dir("missing", 0);
    let mut wcfg = WorkerConfig::new(0, dir.clone());
    wcfg.heartbeat_interval = Duration::from_millis(50);
    run_worker(addr, &spec, &wcfg).expect("worker 0");
    let outcome = agg_handle.join().expect("aggregator thread").expect("aggregation");
    cleanup(&dir);

    assert_eq!(outcome.merged.survivors, 1);
    assert!(outcome.merged.health[0].is_ok());
    assert!(
        matches!(outcome.merged.health[1], ShardHealth::Failed { .. }),
        "the absent member fails: {:?}",
        outcome.merged.health[1]
    );

    // Survivor equality: the merge equals the fault-free run restricted
    // to member 0 — built without sockets via the same member_state
    // helper the worker uses.
    let state = psc_serve::fleet::member_state(&spec, 0, None).expect("member 0 state");
    let restricted = psc_serve::fleet::merge_survivors(
        &spec,
        &[
            psc_serve::fleet::MemberOutcome::Completed { state, reconnects: 0 },
            psc_serve::fleet::MemberOutcome::Failed { reason: "never connected".into() },
        ],
    )
    .expect("restricted merge");
    assert_eq!(outcome.merged.analysis, restricted.analysis, "survivor-restricted equality");
}
