//! End-to-end service tests: streamed reports must be byte-identical
//! to inline runs of the same spec (with jobs genuinely concurrent),
//! admission must shed with a typed rejection, and drain must settle
//! cleanly.

use psc_core::report;
use psc_core::spec::{AnalysisMode, CampaignSpec};
use psc_core::{Device, TuneConfig};
use psc_serve::proto::{CancelResult, JobState, RejectReason, Response};
use psc_serve::server::names;
use psc_serve::{submit_and_wait, AdmissionConfig, Client, Server, ServerConfig};
use std::time::Duration;

fn spec(mode: AnalysisMode, traces: usize, shards: usize) -> CampaignSpec {
    CampaignSpec {
        mode,
        device: Device::MacMiniM1,
        kernel: false,
        fleet: false,
        traces,
        shards,
        seed: 0x00D5_C0DE,
        key: *b"serve-integratio",
        every: 8,
        tune: TuneConfig::default(),
        mitigation: None,
        record: None,
        monitor: None,
    }
}

fn start_server(workers: usize, admission: AdmissionConfig) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        admission,
        spool: None,
        progress_interval: Duration::from_millis(10),
        ..ServerConfig::default()
    })
    .expect("bind an ephemeral port")
}

fn expect_report(response: Response) -> (String, Vec<u8>) {
    match response {
        Response::Report { text, analysis, .. } => (text, analysis),
        other => panic!("expected a report, got {other:?}"),
    }
}

#[test]
fn streamed_reports_are_bit_identical_to_inline_runs() {
    let server = start_server(2, AdmissionConfig::default());
    let addr = server.addr();
    // The adaptive budget stays under the 24-traces-per-side detection
    // minimum so the run exhausts its budget: a detected crossing stops
    // the producers at a scheduling-dependent round, and this test pins
    // byte-identity, not early-stop behaviour (covered in psc-core).
    let specs = [
        spec(AnalysisMode::Tvla, 250, 2),
        spec(AnalysisMode::Cpa, 400, 2),
        spec(AnalysisMode::Adaptive, 40, 2),
    ];

    // Submit all three concurrently over a 2-worker pool, so at least
    // two campaigns must be in flight at once.
    let streamed: Vec<(String, Vec<u8>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = specs
            .iter()
            .map(|spec| {
                let text = spec.render();
                scope.spawn(move || {
                    expect_report(submit_and_wait(addr, "itest", &text).expect("submit and wait"))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("submitter thread")).collect()
    });

    for (spec, (text, analysis)) in specs.iter().zip(&streamed) {
        let inline = report::run_spec(spec);
        let expected = report::campaign_banner(spec) + &inline.body;
        assert_eq!(text, &expected, "served {:?} report text drifted from inline", spec.mode);
        assert_eq!(
            analysis, &inline.analysis,
            "served {:?} analysis state drifted from inline",
            spec.mode
        );
    }

    // The pool really ran campaigns concurrently.
    let metrics = server.metrics();
    assert!(
        metrics.gauge(names::PEAK_RUNNING) >= 2,
        "expected >=2 concurrent jobs, peak was {}",
        metrics.gauge(names::PEAK_RUNNING)
    );
    assert_eq!(metrics.counter(names::COMPLETED), 3);
    assert_eq!(metrics.counter(names::ACCEPTED), 3);

    let mut client = Client::connect(addr).expect("connect");
    match client.drain().expect("drain") {
        Response::Drained { completed, rejected } => {
            assert_eq!(completed, 3);
            assert_eq!(rejected, 0);
        }
        other => panic!("expected Drained, got {other:?}"),
    }
    server.join();
}

#[test]
fn saturated_server_sheds_with_a_typed_rejection() {
    let server = start_server(
        1,
        AdmissionConfig { max_queue: 0, tenant_cap: 8, ..AdmissionConfig::default() },
    );
    let addr = server.addr();

    // Occupy the only worker (no wait — the connection closes, the job runs).
    let big = spec(AnalysisMode::Tvla, 4000, 1).render();
    let mut client = Client::connect(addr).expect("connect");
    let first = client.submit("hog", &big, false).expect("submit");
    assert!(matches!(first, Response::Accepted { job: 0 }), "got {first:?}");

    // Wait until it is actually running, then hit the zero-length queue.
    loop {
        let mut status = Client::connect(addr).expect("connect");
        let Response::JobList { jobs, .. } = status.status().expect("status") else {
            panic!("expected JobList")
        };
        if jobs.iter().any(|j| j.id == 0 && j.state == JobState::Running) {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let small = spec(AnalysisMode::Tvla, 10, 1).render();
    let mut second = Client::connect(addr).expect("connect");
    match second.submit("hog", &small, false).expect("submit") {
        Response::Rejected { reason: RejectReason::Saturated { detail } } => {
            assert!(detail.contains("queue full"), "unexpected detail: {detail}");
        }
        other => panic!("expected Rejected(Saturated), got {other:?}"),
    }

    // The refusal is observable in the server's own metrics.
    let metrics = server.metrics();
    assert_eq!(metrics.counter(names::REJECTED), 1);
    assert_eq!(metrics.counter(names::SUBMITTED), 2);

    // Drain stops the running job at its next block boundary.
    let mut drainer = Client::connect(addr).expect("connect");
    match drainer.drain().expect("drain") {
        Response::Drained { completed, rejected } => {
            assert_eq!(completed, 1);
            assert_eq!(rejected, 0);
        }
        other => panic!("expected Drained, got {other:?}"),
    }
    server.join();
}

#[test]
fn cancel_covers_queued_running_and_finished_jobs() {
    let server = start_server(
        1,
        AdmissionConfig { max_queue: 8, tenant_cap: 8, ..AdmissionConfig::default() },
    );
    let addr = server.addr();

    let long = spec(AnalysisMode::Tvla, 4000, 1).render();
    let queued = spec(AnalysisMode::Tvla, 10, 1).render();
    let mut client = Client::connect(addr).expect("connect");
    assert!(matches!(
        client.submit("t", &long, false).expect("submit"),
        Response::Accepted { job: 0 }
    ));
    let mut client = Client::connect(addr).expect("connect");
    assert!(matches!(
        client.submit("t", &queued, false).expect("submit"),
        Response::Accepted { job: 1 }
    ));

    let mut canceller = Client::connect(addr).expect("connect");
    // Job 1 sits behind the long job on the single worker: cancelled outright.
    let outcome = canceller.cancel(1).expect("cancel");
    assert!(
        matches!(outcome, Response::CancelOutcome { job: 1, outcome: CancelResult::Cancelled }),
        "got {outcome:?}"
    );
    // Job 0 is running (or about to be): stopping or cancelled, never NotFound.
    let mut canceller = Client::connect(addr).expect("connect");
    match canceller.cancel(0).expect("cancel") {
        Response::CancelOutcome {
            job: 0,
            outcome: CancelResult::Stopping | CancelResult::Cancelled,
        } => {}
        other => panic!("expected a cancel on job 0, got {other:?}"),
    }
    // Unknown job id.
    let mut canceller = Client::connect(addr).expect("connect");
    assert!(matches!(
        canceller.cancel(99).expect("cancel"),
        Response::CancelOutcome { job: 99, outcome: CancelResult::NotFound }
    ));

    // A malformed spec is a typed refusal, not a dropped connection.
    let mut bad = Client::connect(addr).expect("connect");
    match bad.submit("t", "mode=nonsense\n", false).expect("submit") {
        Response::Rejected { reason: RejectReason::BadSpec { .. } } => {}
        other => panic!("expected BadSpec, got {other:?}"),
    }

    let mut drainer = Client::connect(addr).expect("connect");
    assert!(matches!(drainer.drain().expect("drain"), Response::Drained { .. }));
    server.join();
}
