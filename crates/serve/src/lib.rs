//! # psc-serve — the multi-tenant campaign service
//!
//! `psc serve` turns the campaign driver into a long-running daemon: it
//! accepts campaign specs over a local TCP socket (`127.0.0.1` only —
//! the substrate is simulated and the workflow air-gap friendly, so
//! the wire format is std-only and never leaves the loopback), runs
//! them concurrently over a bounded worker pool, and streams
//! incremental metrics and the final TVLA/CPA/adaptive report back to
//! the submitting client.
//!
//! The load-bearing property is **determinism across the socket**: a
//! report streamed out of the service is byte-identical to the same
//! spec run inline with `psc campaign`, because both front ends share
//! one spec parser ([`psc_core::spec::CampaignSpec`]) and one renderer
//! ([`psc_core::report`]), and the wall-clock metrics line is never
//! part of the report body.
//!
//! ## Service protocol
//!
//! ### Frame grammar
//!
//! Every message in either direction is one codec-v3 frame — the same
//! CRC-checked container the campaign checkpoints use
//! ([`psc_sca::checkpoint`]) — behind a little-endian `u32` length
//! prefix:
//!
//! ```text
//! wire     := len:u32le frame            len <= proto::MAX_FRAME_LEN
//! frame    := "PSCT" version:u16=3 count:u16 section*
//! section  := tag:u16 len:u32 payload crc32:u32
//! ```
//!
//! The message is the first section whose tag the receiver knows
//! (requests `1..=4`: `Submit`, `Status`, `Cancel`, `Drain`; responses
//! `16..=22`: `Accepted`, `Rejected`, `Progress`, `Report`, `JobList`,
//! `CancelOutcome`, `Drained`); unknown tags are skipped, so peers can
//! gain sections without breaking older builds. Corruption handling is
//! inherited from the checkpoint codec and pinned by the same kind of
//! proptests: any truncation, any bit flip and any oversized length
//! prefix is a typed error, never a misparse.
//!
//! ### Admission semantics
//!
//! `Submit` passes the [`admission::AdmissionController`] before it
//! gets a queue slot. The controller reads the pool's FIFO backlog,
//! the per-tenant queued-or-running count, the live merge of every
//! running job's per-shard [`psc_telemetry::metrics::MetricsSnapshot`]
//! (bus drop rate), and the p99 of the dispatch-wait histogram. A
//! tripped signal sheds the job with a **typed** refusal —
//! [`proto::RejectReason::Saturated`] or
//! [`proto::RejectReason::TenantBusy`] — the connection is answered,
//! never hung up on. Admitted jobs are `Accepted{job_id}`; a waiting
//! client then receives `Progress` frames (merged metrics snapshots)
//! at a fixed cadence until the final `Report`.
//!
//! ### Drain / shutdown lifecycle
//!
//! `Drain` flips the server into a terminal mode: new submissions are
//! refused with `Rejected{Draining}`, everything still queued is
//! rejected (counted in the `Drained` reply), and running jobs get
//! their cooperative stop flag set so they wind down at the next block
//! boundary — checkpointing through the ordinary
//! [`psc_core::session::Campaign::checkpoint_to`] machinery when the
//! server was started with a spool directory, so `psc resume` can
//! finish them later. Once the table is quiet the pool is joined, the
//! client gets `Drained{completed, rejected}`, and the accept loop
//! exits.
//!
//! ## Crate layout
//!
//! * [`proto`] — frame grammar, request/response types, socket I/O;
//! * [`spec` (in psc-core)](psc_core::spec) — the shared campaign.cfg
//!   parser;
//! * [`pool`] — the bounded FIFO worker pool;
//! * [`admission`] — saturation signals and the admission decision;
//! * [`server`] — accept loop, job table, drain lifecycle;
//! * [`client`] — the blocking client the CLI subcommands use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod client;
pub mod pool;
pub mod proto;
pub mod server;

pub use admission::{AdmissionConfig, AdmissionController};
pub use client::{submit_and_wait, Client};
pub use proto::{ProtoError, RejectReason, Request, Response};
pub use server::{Server, ServerConfig, DEFAULT_ADDR};
