//! # psc-serve — the multi-tenant campaign service
//!
//! `psc serve` turns the campaign driver into a long-running daemon: it
//! accepts campaign specs over a local TCP socket (`127.0.0.1` only —
//! the substrate is simulated and the workflow air-gap friendly, so
//! the wire format is std-only and never leaves the loopback), runs
//! them concurrently over a bounded worker pool, and streams
//! incremental metrics and the final TVLA/CPA/adaptive report back to
//! the submitting client.
//!
//! The load-bearing property is **determinism across the socket**: a
//! report streamed out of the service is byte-identical to the same
//! spec run inline with `psc campaign`, because both front ends share
//! one spec parser ([`psc_core::spec::CampaignSpec`]) and one renderer
//! ([`psc_core::report`]), and the wall-clock metrics line is never
//! part of the report body.
//!
//! ## Service protocol
//!
//! ### Frame grammar
//!
//! Every message in either direction is one codec-v3 frame — the same
//! CRC-checked container the campaign checkpoints use
//! ([`psc_sca::checkpoint`]) — behind a little-endian `u32` length
//! prefix:
//!
//! ```text
//! wire     := len:u32le frame            len <= proto::MAX_FRAME_LEN
//! frame    := "PSCT" version:u16=3 count:u16 section*
//! section  := tag:u16 len:u32 payload crc32:u32
//! ```
//!
//! The message is the first section whose tag the receiver knows
//! (requests `1..=5`: `Submit`, `Status`, `Cancel`, `Drain`, `Watch`;
//! responses `16..=22`: `Accepted`, `Rejected`, `Progress`, `Report`,
//! `JobList`, `CancelOutcome`, `Drained`; fleet worker messages
//! `32..=35` and aggregator replies `48..=50`, see [`fleet`]); unknown
//! tags are skipped, so peers can gain sections without breaking older
//! builds. Corruption handling is inherited from the checkpoint codec
//! and pinned by the same kind of proptests: any truncation, any bit
//! flip and any oversized length prefix is a typed error, never a
//! misparse.
//!
//! ### Admission semantics
//!
//! `Submit` passes the [`admission::AdmissionController`] before it
//! gets a queue slot. The controller reads the pool's FIFO backlog,
//! the per-tenant queued-or-running count, the live merge of every
//! running job's per-shard [`psc_telemetry::metrics::MetricsSnapshot`]
//! (bus drop rate), and the p99 of the dispatch-wait histogram. A
//! tripped signal sheds the job with a **typed** refusal —
//! [`proto::RejectReason::Saturated`] or
//! [`proto::RejectReason::TenantBusy`] — the connection is answered,
//! never hung up on. Admitted jobs are `Accepted{job_id}`; a waiting
//! client then receives `Progress` frames (merged metrics snapshots)
//! at a fixed cadence until the final `Report`.
//!
//! ### Drain / shutdown lifecycle
//!
//! `Drain` flips the server into a terminal mode: new submissions are
//! refused with `Rejected{Draining}`, everything still queued is
//! rejected (counted in the `Drained` reply), and running jobs get
//! their cooperative stop flag set so they wind down at the next block
//! boundary — checkpointing through the ordinary
//! [`psc_core::session::Campaign::checkpoint_to`] machinery when the
//! server was started with a spool directory, so `psc resume` can
//! finish them later. Once the table is quiet the pool is joined, the
//! client gets `Drained{completed, rejected}`, and the accept loop
//! exits.
//!
//! ## Distributed operation & failure semantics
//!
//! The [`fleet`] module runs one fleet campaign across *processes*:
//! `psc worker` executes a single member's shard and `psc aggregate`
//! merges the member states with the same proptested snapshot-merge
//! folds the in-process [`psc_core::source::Fleet`] driver uses, so a
//! fault-free distributed run is **byte-identical** to the
//! single-process fleet run of the same spec.
//!
//! * **Partial-frame grammar** — workers periodically ship their
//!   latest per-shard checkpoint frame (the codec-v3 `shard-000.ckpt`
//!   snapshot, verbatim) inside [`fleet::WorkerMsg::Partial`], over
//!   the same length-prefixed wire as the service protocol. Partials
//!   are *cumulative* snapshots, so retaining only the newest is
//!   lossless.
//! * **Epoch/sequence dedup rule** — every worker send carries a
//!   strictly increasing `(epoch, seq)` stamp; the epoch bumps per
//!   reconnect, the sequence per send. The aggregator's
//!   [`fleet::DedupGate`] admits a stamp iff it is lexicographically
//!   greater than the member's last admitted stamp, which makes
//!   at-least-once delivery and reconnect re-sends merge exactly once
//!   (pinned by proptests over arbitrary duplicate/reorder schedules).
//! * **Heartbeat deadlines** — workers heartbeat on an interval;
//!   the aggregator demotes members that miss the heartbeat deadline,
//!   never connect within the join window, or straggle past the
//!   straggler timeout after the first member finishes
//!   ([`fleet::AggregatorConfig`]).
//! * **Degradation semantics** — demoted members land on the final
//!   report as [`psc_core::session::ShardHealth::Failed`] with the
//!   demotion reason; members that completed but needed transport
//!   reconnects surface as `Degraded`. Survivors merge to exactly the
//!   fault-free run restricted to the same members, and the aggregator
//!   never panics on corrupt, duplicate or stale frames — each is a
//!   counted, typed refusal.
//! * **Transport fault injection** — the whole matrix (frame drop,
//!   frame delay, disconnect, bit corruption) is deterministically
//!   injectable on the worker send path through
//!   [`psc_telemetry::faults::FaultPlan`]'s transport budgets, and
//!   reconnects run under the same jittered
//!   [`psc_telemetry::faults::RetryPolicy`] the campaign recorder
//!   uses.
//!
//! ## Crate layout
//!
//! * [`proto`] — frame grammar, request/response types, socket I/O;
//! * [`spec` (in psc-core)](psc_core::spec) — the shared campaign.cfg
//!   parser;
//! * [`pool`] — the bounded FIFO worker pool;
//! * [`admission`] — saturation signals and the admission decision;
//! * [`server`] — accept loop, job table, drain lifecycle;
//! * [`client`] — the blocking client the CLI subcommands use;
//! * [`fleet`] — distributed fleet workers and the aggregator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod client;
pub mod fleet;
pub mod pool;
pub mod proto;
pub mod server;

pub use admission::{AdmissionConfig, AdmissionController};
pub use client::{submit_and_wait, submit_and_wait_with_retry, Client};
pub use fleet::{
    Aggregator, AggregatorConfig, DedupGate, FleetError, FleetOutcome, MemberOutcome, WorkerConfig,
};
pub use proto::{ProtoError, RejectReason, Request, Response};
pub use server::{Server, ServerConfig, DEFAULT_ADDR};
