//! The campaign server: accept loop, job table, drain lifecycle.
//!
//! One thread accepts connections on a local TCP socket and spawns a
//! handler per connection; handlers parse one [`Request`] and reply
//! (a waited-on submit streams [`Response::Progress`] frames until the
//! final [`Response::Report`]). Campaign execution happens on the
//! bounded FIFO [`WorkerPool`]; the [`AdmissionController`] decides at
//! submit time whether a job gets a queue slot at all.
//!
//! The server instruments itself with the same
//! [`MetricsRegistry`] the campaigns use — counters for every job
//! transition, peak-concurrency gauges, and dispatch-wait /
//! report-latency histograms — and serves that registry's snapshot in
//! every [`Response::JobList`].

use crate::admission::{AdmissionController, AdmissionSignals};
use crate::pool::WorkerPool;
use crate::proto::{
    read_frame, write_frame, CancelResult, JobState, JobSummary, ProtoError, RejectReason, Request,
    Response,
};
use psc_core::report::{self, campaign_banner};
use psc_core::session::Campaign;
use psc_core::spec::{AnalysisMode, CampaignSpec};
use psc_telemetry::metrics::{MetricsHub, MetricsRegistry, MetricsSnapshot};
use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Default service endpoint — loopback only; the daemon is a local
/// multiplexer, not a network service.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7145";

/// Metric names for the server's own [`MetricsRegistry`] (the campaign
/// pipeline names live in [`psc_telemetry::metrics::names`]).
pub mod names {
    /// Submissions received (before admission).
    pub const SUBMITTED: &str = "serve.jobs.submitted";
    /// Submissions admitted to the queue.
    pub const ACCEPTED: &str = "serve.jobs.accepted";
    /// Submissions refused (admission, drain, bad spec).
    pub const REJECTED: &str = "serve.jobs.rejected";
    /// Jobs that ran to completion.
    pub const COMPLETED: &str = "serve.jobs.completed";
    /// Jobs cancelled before or during execution.
    pub const CANCELLED: &str = "serve.jobs.cancelled";
    /// Jobs whose worker failed.
    pub const FAILED: &str = "serve.jobs.failed";
    /// Peak concurrently-running jobs.
    pub const PEAK_RUNNING: &str = "serve.peak_running";
    /// Peak pool queue depth.
    pub const PEAK_QUEUE: &str = "serve.peak_queue_depth";
    /// Queue wait per dispatched job, nanoseconds; its p99 feeds
    /// admission.
    pub const DISPATCH_WAIT_NS: &str = "serve.dispatch_wait_ns";
    /// Submit-to-report latency per completed job, nanoseconds.
    pub const REPORT_LATENCY_NS: &str = "serve.report_latency_ns";
}

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (use port 0 for an ephemeral port in tests).
    pub addr: String,
    /// Worker threads executing campaigns.
    pub workers: usize,
    /// Admission thresholds.
    pub admission: crate::admission::AdmissionConfig,
    /// When set, every job checkpoints to `spool/job-NNN` at its
    /// spec's cadence, so drained or interrupted jobs resume with
    /// `psc resume`.
    pub spool: Option<PathBuf>,
    /// Cadence of [`Response::Progress`] frames to waiting clients.
    pub progress_interval: Duration,
    /// How long a connection may take to deliver its complete request
    /// frame. A stalled or half-open client is refused with the typed
    /// [`RejectReason::DeadlineExceeded`] instead of pinning a
    /// connection-handler thread forever.
    pub read_deadline: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: DEFAULT_ADDR.to_owned(),
            workers: 2,
            admission: crate::admission::AdmissionConfig::default(),
            spool: None,
            progress_interval: Duration::from_millis(100),
            read_deadline: Duration::from_secs(10),
        }
    }
}

struct FinishedReport {
    mode: AnalysisMode,
    stopped_early: bool,
    rounds: u64,
    text: String,
    analysis: Vec<u8>,
}

struct Job {
    tenant: String,
    spec: CampaignSpec,
    state: JobState,
    stop: Arc<AtomicBool>,
    hub: Arc<MetricsHub>,
    accepted_at: Instant,
    report: Option<Arc<FinishedReport>>,
    error: Option<String>,
}

#[derive(Default)]
struct JobTable {
    jobs: BTreeMap<u64, Job>,
    next_id: u64,
}

struct Inner {
    cfg: ServerConfig,
    addr: SocketAddr,
    registry: Arc<MetricsRegistry>,
    admission: AdmissionController,
    pool: Mutex<Option<WorkerPool>>,
    table: Mutex<JobTable>,
    running: AtomicUsize,
    draining: AtomicBool,
    shutdown: AtomicBool,
}

/// A running campaign service. Dropping the handle does **not** stop
/// the daemon — send [`Request::Drain`] (or call [`Server::shutdown`])
/// and then [`Server::join`].
pub struct Server {
    inner: Arc<Inner>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind `cfg.addr`, spawn the worker pool and the accept loop.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let registry = Arc::new(MetricsRegistry::new());
        let pool = WorkerPool::new(cfg.workers, registry.histogram(names::DISPATCH_WAIT_NS));
        let inner = Arc::new(Inner {
            admission: AdmissionController::new(cfg.admission),
            cfg,
            addr,
            registry,
            pool: Mutex::new(Some(pool)),
            table: Mutex::new(JobTable::default()),
            running: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
        });
        let accept_inner = Arc::clone(&inner);
        let accept = std::thread::Builder::new()
            .name("psc-serve-accept".into())
            .spawn(move || accept_loop(&accept_inner, &listener))?;
        Ok(Self { inner, accept: Some(accept) })
    }

    /// The actually-bound address (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// The server's own metrics (job counters, peaks, latencies).
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.registry.snapshot()
    }

    /// Stop without draining: refuse new connections, stop workers
    /// after their current job. Jobs still queued are abandoned —
    /// prefer [`Request::Drain`] for a graceful stop.
    pub fn shutdown(&self) {
        stop_accepting(&self.inner);
        if let Some(pool) = self.inner.pool.lock().expect("pool lock poisoned").take() {
            pool.join();
        }
    }

    /// Wait for the accept loop to exit (after a drain or
    /// [`Server::shutdown`]).
    pub fn join(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

fn stop_accepting(inner: &Inner) {
    inner.shutdown.store(true, Ordering::Release);
    // Unblock the accept() call with one throwaway connection.
    let _ = TcpStream::connect(inner.addr);
}

fn accept_loop(inner: &Arc<Inner>, listener: &TcpListener) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        let conn_inner = Arc::clone(inner);
        let _ = std::thread::Builder::new()
            .name("psc-serve-conn".into())
            .spawn(move || handle_connection(&conn_inner, stream));
    }
}

fn handle_connection(inner: &Arc<Inner>, mut stream: TcpStream) {
    // A stalled or half-open client must not pin this handler thread:
    // the whole request frame has to arrive within the read deadline.
    let _ = stream.set_read_timeout(Some(inner.cfg.read_deadline));
    let request = match read_frame(&mut stream).and_then(|frame| Request::decode(&frame)) {
        Ok(request) => request,
        Err(ProtoError::Timeout) => {
            let deadline_ms = u64::try_from(inner.cfg.read_deadline.as_millis()).unwrap_or(0);
            let reject =
                Response::Rejected { reason: RejectReason::DeadlineExceeded { deadline_ms } };
            let _ = write_frame(&mut stream, &reject.encode());
            return;
        }
        Err(e) => {
            // A malformed frame gets a typed refusal, never a silent
            // hangup; if even that write fails the peer is gone.
            let reject =
                Response::Rejected { reason: RejectReason::BadSpec { error: e.to_string() } };
            let _ = write_frame(&mut stream, &reject.encode());
            return;
        }
    };
    // Past this point the connection only writes (progress/report
    // streaming); the deadline has done its job.
    let _ = stream.set_read_timeout(None);
    match request {
        Request::Submit { tenant, wait, spec } => {
            handle_submit(inner, &mut stream, tenant, wait, &spec)
        }
        Request::Status => handle_status(inner, &mut stream),
        Request::Cancel { job } => handle_cancel(inner, &mut stream, job),
        Request::Drain => handle_drain(inner, &mut stream),
        Request::Watch { job } => handle_watch(inner, &mut stream, job),
    }
}

/// Re-attach a waiting client to a job it already submitted: verify
/// the job exists, then stream progress until the terminal frame —
/// the reconnect half of `psc submit --wait`'s disconnect tolerance.
fn handle_watch(inner: &Inner, stream: &mut TcpStream, job_id: u64) {
    let known = inner.table.lock().expect("job table poisoned").jobs.contains_key(&job_id);
    if !known {
        let _ = reply(
            stream,
            &Response::Rejected {
                reason: RejectReason::Failed { error: format!("no such job: {job_id}") },
            },
        );
        return;
    }
    if reply(stream, &Response::Accepted { job: job_id }) {
        stream_until_done(inner, stream, job_id);
    }
}

fn reply(stream: &mut TcpStream, response: &Response) -> bool {
    write_frame(stream, &response.encode()).is_ok()
}

fn reject(inner: &Inner, stream: &mut TcpStream, reason: RejectReason) {
    inner.registry.counter(names::REJECTED).inc();
    let _ = reply(stream, &Response::Rejected { reason });
}

/// Live merge of every running job's pipeline metrics.
fn running_pipeline(table: &JobTable) -> MetricsSnapshot {
    table
        .jobs
        .values()
        .filter(|j| matches!(j.state, JobState::Running | JobState::Stopping))
        .map(|j| j.hub.merged())
        .fold(MetricsSnapshot::default(), MetricsSnapshot::merged)
}

fn handle_submit(
    inner: &Arc<Inner>,
    stream: &mut TcpStream,
    tenant: String,
    wait: bool,
    spec: &str,
) {
    inner.registry.counter(names::SUBMITTED).inc();
    let spec = match CampaignSpec::parse(spec) {
        Ok(spec) => spec,
        Err(error) => return reject(inner, stream, RejectReason::BadSpec { error }),
    };
    if inner.draining.load(Ordering::Acquire) {
        return reject(inner, stream, RejectReason::Draining);
    }
    let queue_depth =
        inner.pool.lock().expect("pool lock poisoned").as_ref().map_or(0, WorkerPool::queue_depth);
    let running = inner.running.load(Ordering::Acquire);
    let dispatch_p99_ns = inner.registry.histogram(names::DISPATCH_WAIT_NS).percentile(0.99);
    let job_id = {
        let mut table = inner.table.lock().expect("job table poisoned");
        let tenant_jobs = table
            .jobs
            .values()
            .filter(|j| {
                j.tenant == tenant
                    && matches!(j.state, JobState::Queued | JobState::Running | JobState::Stopping)
            })
            .count();
        let signals = AdmissionSignals {
            queue_depth,
            idle_workers: inner.cfg.workers.saturating_sub(running),
            tenant_jobs,
            pipeline: &running_pipeline(&table),
            dispatch_p99_ns,
        };
        if let Err(reason) = inner.admission.admit(&tenant, &signals) {
            drop(table);
            return reject(inner, stream, reason);
        }
        let id = table.next_id;
        table.next_id += 1;
        table.jobs.insert(
            id,
            Job {
                tenant,
                spec,
                state: JobState::Queued,
                stop: Arc::new(AtomicBool::new(false)),
                hub: Arc::new(MetricsHub::new()),
                accepted_at: Instant::now(),
                report: None,
                error: None,
            },
        );
        id
    };
    inner.registry.counter(names::ACCEPTED).inc();
    inner.registry.gauge(names::PEAK_QUEUE).set_max(queue_depth as u64 + 1);
    let worker_inner = Arc::clone(inner);
    let submitted = inner
        .pool
        .lock()
        .expect("pool lock poisoned")
        .as_ref()
        .is_some_and(|pool| pool.submit(job_id, move || run_job(&worker_inner, job_id)));
    if !submitted {
        // Raced with a drain between admission and enqueue.
        let mut table = inner.table.lock().expect("job table poisoned");
        if let Some(job) = table.jobs.get_mut(&job_id) {
            job.state = JobState::Cancelled;
            job.error = Some("rejected by drain".into());
        }
        drop(table);
        return reject(inner, stream, RejectReason::Draining);
    }
    if !reply(stream, &Response::Accepted { job: job_id }) || !wait {
        return;
    }
    stream_until_done(inner, stream, job_id);
}

/// Stream [`Response::Progress`] frames to a waiting client until the
/// job reaches a terminal state, then send the final frame.
fn stream_until_done(inner: &Inner, stream: &mut TcpStream, job_id: u64) {
    loop {
        std::thread::sleep(inner.cfg.progress_interval);
        enum Peek {
            InFlight(MetricsSnapshot),
            Done(Response),
        }
        let peek = {
            let table = inner.table.lock().expect("job table poisoned");
            let Some(job) = table.jobs.get(&job_id) else { return };
            match job.state {
                JobState::Queued | JobState::Running | JobState::Stopping => {
                    Peek::InFlight(job.hub.merged())
                }
                JobState::Completed => {
                    let report = job.report.as_ref().expect("completed job has a report");
                    Peek::Done(Response::Report {
                        job: job_id,
                        mode: report.mode,
                        stopped_early: report.stopped_early,
                        rounds: report.rounds,
                        text: report.text.clone(),
                        analysis: report.analysis.clone(),
                    })
                }
                JobState::Cancelled => Peek::Done(Response::Rejected {
                    reason: RejectReason::Failed {
                        error: job.error.clone().unwrap_or_else(|| "cancelled".into()),
                    },
                }),
                JobState::Failed => Peek::Done(Response::Rejected {
                    reason: RejectReason::Failed {
                        error: job.error.clone().unwrap_or_else(|| "worker failed".into()),
                    },
                }),
            }
        };
        match peek {
            Peek::InFlight(metrics) => {
                if !reply(stream, &Response::Progress { job: job_id, metrics }) {
                    return; // client went away; the job keeps running
                }
            }
            Peek::Done(response) => {
                let _ = reply(stream, &response);
                return;
            }
        }
    }
}

/// Execute one admitted job on a pool worker.
fn run_job(inner: &Arc<Inner>, job_id: u64) {
    let (spec, stop, hub, accepted_at) = {
        let mut table = inner.table.lock().expect("job table poisoned");
        let Some(job) = table.jobs.get_mut(&job_id) else { return };
        if job.state != JobState::Queued {
            return; // cancelled while queued
        }
        job.state = JobState::Running;
        let running = inner.running.fetch_add(1, Ordering::AcqRel) + 1;
        inner.registry.gauge(names::PEAK_RUNNING).set_max(running as u64);
        (job.spec.clone(), Arc::clone(&job.stop), Arc::clone(&job.hub), job.accepted_at)
    };
    let run_spec = spec.clone();
    let spool = inner.cfg.spool.clone();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        let mut campaign = Campaign::from_spec(&run_spec).stop_flag(stop).metrics_hub(hub);
        if let Some(spool) = spool {
            campaign =
                campaign.checkpoint_to(spool.join(format!("job-{job_id:03}")), run_spec.every);
        }
        report::run_session(campaign.session(), &run_spec)
    }));
    inner.running.fetch_sub(1, Ordering::AcqRel);
    let mut table = inner.table.lock().expect("job table poisoned");
    let Some(job) = table.jobs.get_mut(&job_id) else { return };
    match outcome {
        Ok(out) => {
            if job.state == JobState::Stopping {
                job.state = JobState::Cancelled;
                job.error = Some("cancelled while running".into());
                inner.registry.counter(names::CANCELLED).inc();
            } else {
                job.report = Some(Arc::new(FinishedReport {
                    mode: out.mode,
                    stopped_early: out.stopped_early,
                    rounds: out.rounds,
                    text: campaign_banner(&spec) + &out.body,
                    analysis: out.analysis,
                }));
                job.state = JobState::Completed;
                inner.registry.counter(names::COMPLETED).inc();
                let latency = u64::try_from(accepted_at.elapsed().as_nanos()).unwrap_or(u64::MAX);
                inner.registry.histogram(names::REPORT_LATENCY_NS).record(latency);
            }
        }
        Err(panic) => {
            let message = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "worker panicked".into());
            job.state = JobState::Failed;
            job.error = Some(message);
            inner.registry.counter(names::FAILED).inc();
        }
    }
}

fn handle_status(inner: &Inner, stream: &mut TcpStream) {
    let jobs = {
        let table = inner.table.lock().expect("job table poisoned");
        table
            .jobs
            .iter()
            .map(|(&id, job)| JobSummary {
                id,
                tenant: job.tenant.clone(),
                mode: job.spec.mode,
                state: job.state,
            })
            .collect()
    };
    let _ = reply(stream, &Response::JobList { jobs, server: inner.registry.snapshot() });
}

fn handle_cancel(inner: &Inner, stream: &mut TcpStream, job_id: u64) {
    let outcome = {
        let mut table = inner.table.lock().expect("job table poisoned");
        match table.jobs.get_mut(&job_id) {
            None => CancelResult::NotFound,
            Some(job) => match job.state {
                JobState::Queued => {
                    // The pool will skip it: run_job refuses non-Queued jobs.
                    job.state = JobState::Cancelled;
                    job.error = Some("cancelled while queued".into());
                    inner.registry.counter(names::CANCELLED).inc();
                    CancelResult::Cancelled
                }
                JobState::Running | JobState::Stopping => {
                    job.state = JobState::Stopping;
                    job.stop.store(true, Ordering::Release);
                    CancelResult::Stopping
                }
                JobState::Completed | JobState::Cancelled | JobState::Failed => {
                    CancelResult::AlreadyDone
                }
            },
        }
    };
    let _ = reply(stream, &Response::CancelOutcome { job: job_id, outcome });
}

fn handle_drain(inner: &Arc<Inner>, stream: &mut TcpStream) {
    let first = !inner.draining.swap(true, Ordering::AcqRel);
    let mut rejected = 0u64;
    if first {
        // Reject everything still queued; stop what is running at its
        // next block boundary (it has been checkpointing all along if
        // a spool is configured).
        let queued =
            inner.pool.lock().expect("pool lock poisoned").as_ref().map_or_else(Vec::new, |p| {
                p.shutdown();
                p.take_queued()
            });
        let mut table = inner.table.lock().expect("job table poisoned");
        for pending in queued {
            if let Some(job) = table.jobs.get_mut(&pending.id) {
                if job.state == JobState::Queued {
                    job.state = JobState::Cancelled;
                    job.error = Some("rejected by drain".into());
                    inner.registry.counter(names::REJECTED).inc();
                    rejected += 1;
                }
            }
        }
        for job in table.jobs.values_mut() {
            if matches!(job.state, JobState::Running | JobState::Stopping) {
                job.stop.store(true, Ordering::Release);
            }
        }
    }
    // Wait until nothing is in flight any more.
    loop {
        let busy = {
            let table = inner.table.lock().expect("job table poisoned");
            table.jobs.values().any(|j| {
                matches!(j.state, JobState::Queued | JobState::Running | JobState::Stopping)
            })
        };
        if !busy {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    if first {
        if let Some(pool) = inner.pool.lock().expect("pool lock poisoned").take() {
            pool.join();
        }
    }
    let completed = inner.registry.counter(names::COMPLETED).get();
    let _ = reply(stream, &Response::Drained { completed, rejected });
    stop_accepting(inner);
}
