//! The `psc serve` wire protocol.
//!
//! Every message is one codec-v3 frame (the checkpoint codec from
//! [`psc_sca::checkpoint`]: magic, version, CRC-checked sections)
//! carried over the socket behind a little-endian `u32` length prefix.
//! Reusing the checkpoint codec means the service inherits its
//! corruption posture for free: a truncated, bit-flipped or oversized
//! frame is rejected with a typed error, never misparsed.
//!
//! ## Frame grammar
//!
//! ```text
//! wire     := len:u32le frame        (len <= MAX_FRAME_LEN)
//! frame    := "PSCT" version:u16=3 count:u16 section*
//! section  := tag:u16 len:u32 payload crc32:u32
//! ```
//!
//! A message is the **first section whose tag this build knows**;
//! unknown tags are skipped, so a newer peer may append sections
//! without breaking an older one (forward compatibility, pinned by the
//! protocol proptests). Request tags live in `1..=5`, response tags in
//! `16..=22`; the distributed-fleet messages (see [`crate::fleet`])
//! use worker tags `32..=35` and aggregator tags `48..=50`.

use psc_core::spec::AnalysisMode;
use psc_sca::checkpoint::{
    decode_frame, encode_frame, CheckpointError, PayloadReader, PayloadWriter, Section,
};
use psc_telemetry::metrics::MetricsSnapshot;
use std::io::{Read, Write};

/// Hard cap on a framed message, enforced on both send and receive.
/// Reports carry encoded analysis state (the largest payload: a CPA
/// state is ~1 MiB at 16 key bytes x 256 guesses); 4 MiB leaves
/// headroom without letting a corrupt length prefix allocate the moon.
pub const MAX_FRAME_LEN: u32 = 4 * 1024 * 1024;

/// Section tags. Requests and responses share one tag space so a
/// misdirected frame decodes to "unknown message", not a wrong type.
pub mod tags {
    /// Request: submit a campaign spec.
    pub const SUBMIT: u16 = 1;
    /// Request: list jobs and server metrics.
    pub const STATUS: u16 = 2;
    /// Request: cancel a job by id.
    pub const CANCEL: u16 = 3;
    /// Request: drain the server.
    pub const DRAIN: u16 = 4;
    /// Request: re-attach to a waited-on job by id after a disconnect.
    pub const WATCH: u16 = 5;
    /// Response: job accepted with its id.
    pub const ACCEPTED: u16 = 16;
    /// Response: submission rejected, with a typed reason.
    pub const REJECTED: u16 = 17;
    /// Response: in-flight progress snapshot for a waited-on job.
    pub const PROGRESS: u16 = 18;
    /// Response: final report for a waited-on job.
    pub const REPORT: u16 = 19;
    /// Response: job listing plus the server's own metrics.
    pub const JOB_LIST: u16 = 20;
    /// Response: outcome of a cancel request.
    pub const CANCEL_OUTCOME: u16 = 21;
    /// Response: drain complete.
    pub const DRAINED: u16 = 22;
    /// Fleet worker: hello — member identity, epoch, spec fingerprint.
    pub const WORKER_HELLO: u16 = 32;
    /// Fleet worker: partial accumulator state (codec-v3 checkpoint
    /// frame) stamped with an (epoch, sequence) pair.
    pub const WORKER_PARTIAL: u16 = 33;
    /// Fleet worker: liveness heartbeat.
    pub const WORKER_HEARTBEAT: u16 = 34;
    /// Fleet worker: final member state — analysis + pipeline totals.
    pub const WORKER_DONE: u16 = 35;
    /// Fleet aggregator: hello accepted.
    pub const AGG_WELCOME: u16 = 48;
    /// Fleet aggregator: cumulative acknowledgement of a partial.
    pub const AGG_ACK: u16 = 49;
    /// Fleet aggregator: the worker was refused, with a reason.
    pub const AGG_REJECT: u16 = 50;
}

/// Why a submission was refused. `Saturated` is the admission
/// controller shedding load — the one clients are expected to retry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The admission controller refused the job: queue full, drop rate
    /// or dispatch latency over threshold. `detail` names the signal.
    Saturated {
        /// Human-readable description of the tripped signal.
        detail: String,
    },
    /// The tenant already has `cap` jobs queued or running.
    TenantBusy {
        /// The tenant that hit its cap.
        tenant: String,
        /// The per-tenant cap in force.
        cap: u64,
    },
    /// The server is draining and accepts no new work.
    Draining,
    /// The campaign spec failed to parse.
    BadSpec {
        /// The parse error.
        error: String,
    },
    /// The job ran but its worker failed (panic or internal error).
    Failed {
        /// What went wrong.
        error: String,
    },
    /// The connection sat idle past the server's read deadline before
    /// delivering a complete request frame.
    DeadlineExceeded {
        /// The deadline that was missed, in milliseconds.
        deadline_ms: u64,
    },
}

impl core::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Saturated { detail } => write!(f, "saturated: {detail}"),
            Self::TenantBusy { tenant, cap } => {
                write!(f, "tenant {tenant} at its cap of {cap} job(s)")
            }
            Self::Draining => write!(f, "server is draining"),
            Self::BadSpec { error } => write!(f, "bad spec: {error}"),
            Self::Failed { error } => write!(f, "job failed: {error}"),
            Self::DeadlineExceeded { deadline_ms } => {
                write!(f, "no complete request within the {deadline_ms} ms read deadline")
            }
        }
    }
}

impl RejectReason {
    fn encode(&self, w: &mut PayloadWriter) {
        match self {
            Self::Saturated { detail } => {
                w.put_u8(0);
                w.put_str(detail);
            }
            Self::TenantBusy { tenant, cap } => {
                w.put_u8(1);
                w.put_str(tenant);
                w.put_u64(*cap);
            }
            Self::Draining => w.put_u8(2),
            Self::BadSpec { error } => {
                w.put_u8(3);
                w.put_str(error);
            }
            Self::Failed { error } => {
                w.put_u8(4);
                w.put_str(error);
            }
            Self::DeadlineExceeded { deadline_ms } => {
                w.put_u8(5);
                w.put_u64(*deadline_ms);
            }
        }
    }

    fn decode(r: &mut PayloadReader<'_>) -> Result<Self, CheckpointError> {
        Ok(match r.get_u8()? {
            0 => Self::Saturated { detail: r.get_str()? },
            1 => Self::TenantBusy { tenant: r.get_str()?, cap: r.get_u64()? },
            2 => Self::Draining,
            3 => Self::BadSpec { error: r.get_str()? },
            4 => Self::Failed { error: r.get_str()? },
            5 => Self::DeadlineExceeded { deadline_ms: r.get_u64()? },
            _ => return Err(CheckpointError::Corrupt("unknown reject reason")),
        })
    }
}

/// Lifecycle state of a job, as reported by [`Response::JobList`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is running it.
    Running,
    /// Cancel requested while running; the stop flag is set.
    Stopping,
    /// Finished; the report is held for a waiting client.
    Completed,
    /// Cancelled before a worker picked it up.
    Cancelled,
    /// The worker failed (panic or internal error).
    Failed,
}

impl JobState {
    fn to_u8(self) -> u8 {
        match self {
            Self::Queued => 0,
            Self::Running => 1,
            Self::Stopping => 2,
            Self::Completed => 3,
            Self::Cancelled => 4,
            Self::Failed => 5,
        }
    }

    fn from_u8(v: u8) -> Result<Self, CheckpointError> {
        Ok(match v {
            0 => Self::Queued,
            1 => Self::Running,
            2 => Self::Stopping,
            3 => Self::Completed,
            4 => Self::Cancelled,
            5 => Self::Failed,
            _ => return Err(CheckpointError::Corrupt("unknown job state")),
        })
    }

    /// Short lowercase label for listings.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Queued => "queued",
            Self::Running => "running",
            Self::Stopping => "stopping",
            Self::Completed => "completed",
            Self::Cancelled => "cancelled",
            Self::Failed => "failed",
        }
    }
}

/// Outcome of a [`Request::Cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelResult {
    /// The job was still queued and is now cancelled outright.
    Cancelled,
    /// The job was running; its stop flag is set and it will wind down
    /// at the next block boundary.
    Stopping,
    /// The job had already finished (completed, failed or cancelled).
    AlreadyDone,
    /// No job with that id exists.
    NotFound,
}

impl CancelResult {
    fn to_u8(self) -> u8 {
        match self {
            Self::Cancelled => 0,
            Self::Stopping => 1,
            Self::AlreadyDone => 2,
            Self::NotFound => 3,
        }
    }

    fn from_u8(v: u8) -> Result<Self, CheckpointError> {
        Ok(match v {
            0 => Self::Cancelled,
            1 => Self::Stopping,
            2 => Self::AlreadyDone,
            3 => Self::NotFound,
            _ => return Err(CheckpointError::Corrupt("unknown cancel outcome")),
        })
    }
}

/// One row of a [`Response::JobList`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSummary {
    /// Server-assigned job id.
    pub id: u64,
    /// Tenant that submitted it.
    pub tenant: String,
    /// Analysis mode the spec requested.
    pub mode: AnalysisMode,
    /// Current lifecycle state.
    pub state: JobState,
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Submit a campaign. `spec` is campaign.cfg text
    /// ([`psc_core::spec::CampaignSpec`] grammar); `wait` keeps the
    /// connection open for [`Response::Progress`] streaming and the
    /// final [`Response::Report`].
    Submit {
        /// Tenant identity for per-tenant admission caps.
        tenant: String,
        /// Stream progress and the final report on this connection.
        wait: bool,
        /// The campaign spec, in campaign.cfg text form.
        spec: String,
    },
    /// List jobs and server metrics.
    Status,
    /// Cancel the job with this id.
    Cancel {
        /// The job to cancel.
        job: u64,
    },
    /// Stop accepting work, stop running jobs at the next block
    /// boundary, reject everything queued, then confirm.
    Drain,
    /// Re-attach to a job submitted with `wait` after the original
    /// connection was lost: the server resumes streaming
    /// [`Response::Progress`] frames (and the final frame) for `job`
    /// on this connection. Unknown or already-reported jobs are
    /// refused with [`RejectReason::Failed`].
    Watch {
        /// The job to re-attach to.
        job: u64,
    },
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The submission was admitted.
    Accepted {
        /// The assigned job id.
        job: u64,
    },
    /// The submission (or the job itself) was refused.
    Rejected {
        /// Why.
        reason: RejectReason,
    },
    /// Periodic progress for a waited-on job: the live merge of the
    /// job's per-shard metrics registries.
    Progress {
        /// The job this snapshot describes.
        job: u64,
        /// Merged pipeline metrics so far.
        metrics: MetricsSnapshot,
    },
    /// The final report for a waited-on job.
    Report {
        /// The finished job.
        job: u64,
        /// Analysis mode that ran.
        mode: AnalysisMode,
        /// Adaptive only: stopped before the budget.
        stopped_early: bool,
        /// Adaptive only: rounds actually collected.
        rounds: u64,
        /// Deterministic report text (banner + body) — byte-identical
        /// to an inline `psc campaign` run of the same spec.
        text: String,
        /// Encoded analysis state (codec-v3 payload) for bit-exact
        /// restore on the client side.
        analysis: Vec<u8>,
    },
    /// Jobs and the server's own metrics.
    JobList {
        /// One row per job the server still remembers.
        jobs: Vec<JobSummary>,
        /// The server's service-level metrics registry.
        server: MetricsSnapshot,
    },
    /// Outcome of a cancel request.
    CancelOutcome {
        /// The job the cancel addressed.
        job: u64,
        /// What happened.
        outcome: CancelResult,
    },
    /// Drain finished.
    Drained {
        /// Jobs that completed (any terminal state reached normally).
        completed: u64,
        /// Queued jobs rejected by the drain.
        rejected: u64,
    },
}

/// Errors crossing the wire layer.
#[derive(Debug)]
pub enum ProtoError {
    /// The frame failed codec-v3 decoding (bad magic, CRC, truncation).
    Checkpoint(CheckpointError),
    /// The frame decoded but contained no section tag this build knows.
    UnknownMessage,
    /// A length prefix exceeded [`MAX_FRAME_LEN`].
    Oversized(u32),
    /// A configured read deadline elapsed before a frame arrived — the
    /// peer is half-open or stalled.
    Timeout,
    /// Socket-level I/O failure.
    Io(String),
}

impl core::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Checkpoint(e) => write!(f, "frame error: {e}"),
            Self::UnknownMessage => write!(f, "frame carries no known message section"),
            Self::Oversized(len) => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap")
            }
            Self::Timeout => write!(f, "read deadline elapsed waiting for a frame"),
            Self::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<CheckpointError> for ProtoError {
    fn from(e: CheckpointError) -> Self {
        Self::Checkpoint(e)
    }
}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        // A socket read timeout surfaces as `WouldBlock` or `TimedOut`
        // depending on the platform; both mean the same thing here.
        match e.kind() {
            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => Self::Timeout,
            _ => Self::Io(e.to_string()),
        }
    }
}

pub(crate) fn mode_to_u8(mode: AnalysisMode) -> u8 {
    match mode {
        AnalysisMode::Tvla => 0,
        AnalysisMode::Cpa => 1,
        AnalysisMode::Adaptive => 2,
    }
}

pub(crate) fn mode_from_u8(v: u8) -> Result<AnalysisMode, CheckpointError> {
    Ok(match v {
        0 => AnalysisMode::Tvla,
        1 => AnalysisMode::Cpa,
        2 => AnalysisMode::Adaptive,
        _ => return Err(CheckpointError::Corrupt("unknown analysis mode")),
    })
}

/// `u32`-length blob — for payloads that can outgrow `put_str`'s `u16`
/// length field (spec text, report text, encoded analysis state).
pub(crate) fn put_blob(w: &mut PayloadWriter, bytes: &[u8]) {
    w.put_u32(u32::try_from(bytes.len()).expect("blob fits in u32"));
    w.put_bytes(bytes);
}

pub(crate) fn get_blob(r: &mut PayloadReader<'_>) -> Result<Vec<u8>, CheckpointError> {
    let len = r.get_u32()? as usize;
    if len > r.remaining() {
        return Err(CheckpointError::Truncated);
    }
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(r.get_u8()?);
    }
    Ok(out)
}

pub(crate) fn get_blob_str(r: &mut PayloadReader<'_>) -> Result<String, CheckpointError> {
    String::from_utf8(get_blob(r)?).map_err(|_| CheckpointError::Corrupt("blob is not UTF-8"))
}

impl Request {
    /// Encode as one full codec-v3 frame (without the wire length
    /// prefix — [`write_frame`] adds that).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::new();
        let section = match self {
            Self::Submit { tenant, wait, spec } => {
                w.put_str(tenant);
                w.put_u8(u8::from(*wait));
                put_blob(&mut w, spec.as_bytes());
                w.into_section(tags::SUBMIT)
            }
            Self::Status => w.into_section(tags::STATUS),
            Self::Cancel { job } => {
                w.put_u64(*job);
                w.into_section(tags::CANCEL)
            }
            Self::Drain => w.into_section(tags::DRAIN),
            Self::Watch { job } => {
                w.put_u64(*job);
                w.into_section(tags::WATCH)
            }
        };
        encode_frame(&[section])
    }

    /// Decode a codec-v3 frame into a request: the first known-tag
    /// section wins, unknown tags are skipped.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Checkpoint`] on any framing/CRC/truncation
    /// failure or malformed payload; [`ProtoError::UnknownMessage`]
    /// when no section carries a request tag.
    pub fn decode(frame: &[u8]) -> Result<Self, ProtoError> {
        for section in decode_frame(frame)? {
            let mut r = PayloadReader::new(&section.payload);
            let parsed = match section.tag {
                tags::SUBMIT => Self::Submit {
                    tenant: r.get_str()?,
                    wait: r.get_u8()? != 0,
                    spec: get_blob_str(&mut r)?,
                },
                tags::STATUS => Self::Status,
                tags::CANCEL => Self::Cancel { job: r.get_u64()? },
                tags::DRAIN => Self::Drain,
                tags::WATCH => Self::Watch { job: r.get_u64()? },
                _ => continue,
            };
            r.finish()?;
            return Ok(parsed);
        }
        Err(ProtoError::UnknownMessage)
    }
}

impl Response {
    /// Encode as one full codec-v3 frame (without the wire length
    /// prefix — [`write_frame`] adds that).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::new();
        let section = match self {
            Self::Accepted { job } => {
                w.put_u64(*job);
                w.into_section(tags::ACCEPTED)
            }
            Self::Rejected { reason } => {
                reason.encode(&mut w);
                w.into_section(tags::REJECTED)
            }
            Self::Progress { job, metrics } => {
                w.put_u64(*job);
                metrics.encode(&mut w);
                w.into_section(tags::PROGRESS)
            }
            Self::Report { job, mode, stopped_early, rounds, text, analysis } => {
                w.put_u64(*job);
                w.put_u8(mode_to_u8(*mode));
                w.put_u8(u8::from(*stopped_early));
                w.put_u64(*rounds);
                put_blob(&mut w, text.as_bytes());
                put_blob(&mut w, analysis);
                w.into_section(tags::REPORT)
            }
            Self::JobList { jobs, server } => {
                w.put_u32(u32::try_from(jobs.len()).expect("job count fits in u32"));
                for job in jobs {
                    w.put_u64(job.id);
                    w.put_str(&job.tenant);
                    w.put_u8(mode_to_u8(job.mode));
                    w.put_u8(job.state.to_u8());
                }
                server.encode(&mut w);
                w.into_section(tags::JOB_LIST)
            }
            Self::CancelOutcome { job, outcome } => {
                w.put_u64(*job);
                w.put_u8(outcome.to_u8());
                w.into_section(tags::CANCEL_OUTCOME)
            }
            Self::Drained { completed, rejected } => {
                w.put_u64(*completed);
                w.put_u64(*rejected);
                w.into_section(tags::DRAINED)
            }
        };
        encode_frame(&[section])
    }

    /// Decode a codec-v3 frame into a response: the first known-tag
    /// section wins, unknown tags are skipped.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Checkpoint`] on any framing/CRC/truncation
    /// failure or malformed payload; [`ProtoError::UnknownMessage`]
    /// when no section carries a response tag.
    pub fn decode(frame: &[u8]) -> Result<Self, ProtoError> {
        for section in decode_frame(frame)? {
            let mut r = PayloadReader::new(&section.payload);
            let parsed = match section.tag {
                tags::ACCEPTED => Self::Accepted { job: r.get_u64()? },
                tags::REJECTED => Self::Rejected { reason: RejectReason::decode(&mut r)? },
                tags::PROGRESS => {
                    Self::Progress { job: r.get_u64()?, metrics: MetricsSnapshot::decode(&mut r)? }
                }
                tags::REPORT => Self::Report {
                    job: r.get_u64()?,
                    mode: mode_from_u8(r.get_u8()?)?,
                    stopped_early: r.get_u8()? != 0,
                    rounds: r.get_u64()?,
                    text: get_blob_str(&mut r)?,
                    analysis: get_blob(&mut r)?,
                },
                tags::JOB_LIST => {
                    let count = r.get_u32()?;
                    let mut jobs = Vec::new();
                    for _ in 0..count {
                        jobs.push(JobSummary {
                            id: r.get_u64()?,
                            tenant: r.get_str()?,
                            mode: mode_from_u8(r.get_u8()?)?,
                            state: JobState::from_u8(r.get_u8()?)?,
                        });
                    }
                    Self::JobList { jobs, server: MetricsSnapshot::decode(&mut r)? }
                }
                tags::CANCEL_OUTCOME => Self::CancelOutcome {
                    job: r.get_u64()?,
                    outcome: CancelResult::from_u8(r.get_u8()?)?,
                },
                tags::DRAINED => Self::Drained { completed: r.get_u64()?, rejected: r.get_u64()? },
                _ => continue,
            };
            r.finish()?;
            return Ok(parsed);
        }
        Err(ProtoError::UnknownMessage)
    }
}

/// Append an extra (unknown-to-this-build) section to an encoded frame
/// — test helper for the forward-compatibility law, and the shape a
/// newer peer would use to attach optional data.
#[must_use]
pub fn with_extra_section(frame: &[u8], tag: u16, payload: &[u8]) -> Vec<u8> {
    let mut sections = decode_frame(frame).expect("valid frame");
    sections.insert(0, Section { tag, payload: payload.to_vec() });
    encode_frame(&sections)
}

/// Write one length-prefixed frame to `stream` and flush.
///
/// # Errors
///
/// [`ProtoError::Oversized`] when the frame exceeds [`MAX_FRAME_LEN`];
/// [`ProtoError::Io`] on socket failure.
pub fn write_frame(stream: &mut impl Write, frame: &[u8]) -> Result<(), ProtoError> {
    let len = u32::try_from(frame.len()).map_err(|_| ProtoError::Oversized(u32::MAX))?;
    if len > MAX_FRAME_LEN {
        return Err(ProtoError::Oversized(len));
    }
    stream.write_all(&len.to_le_bytes())?;
    stream.write_all(frame)?;
    stream.flush()?;
    Ok(())
}

/// Read one length-prefixed frame from `stream`.
///
/// # Errors
///
/// [`ProtoError::Oversized`] when the prefix exceeds
/// [`MAX_FRAME_LEN`] (the frame is not read); [`ProtoError::Io`] on
/// socket failure or EOF mid-frame.
pub fn read_frame(stream: &mut impl Read) -> Result<Vec<u8>, ProtoError> {
    let mut prefix = [0u8; 4];
    stream.read_exact(&mut prefix)?;
    let len = u32::from_le_bytes(prefix);
    if len > MAX_FRAME_LEN {
        return Err(ProtoError::Oversized(len));
    }
    let mut frame = vec![0u8; len as usize];
    stream.read_exact(&mut frame)?;
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let reqs = [
            Request::Submit {
                tenant: "alice".into(),
                wait: true,
                spec: "mode=tvla\ndevice=m1\n".into(),
            },
            Request::Status,
            Request::Cancel { job: 42 },
            Request::Drain,
            Request::Watch { job: 42 },
        ];
        for req in reqs {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn response_round_trips() {
        let resps = [
            Response::Accepted { job: 7 },
            Response::Rejected {
                reason: RejectReason::Saturated { detail: "queue full (4/4)".into() },
            },
            Response::Rejected {
                reason: RejectReason::TenantBusy { tenant: "bob".into(), cap: 2 },
            },
            Response::Rejected { reason: RejectReason::Draining },
            Response::Rejected { reason: RejectReason::BadSpec { error: "mode: bad".into() } },
            Response::Rejected { reason: RejectReason::DeadlineExceeded { deadline_ms: 10_000 } },
            Response::Report {
                job: 7,
                mode: AnalysisMode::Adaptive,
                stopped_early: true,
                rounds: 312,
                text: "leakage detected\n".into(),
                analysis: vec![1, 2, 3, 255],
            },
            Response::JobList {
                jobs: vec![JobSummary {
                    id: 1,
                    tenant: "alice".into(),
                    mode: AnalysisMode::Cpa,
                    state: JobState::Running,
                }],
                server: MetricsSnapshot::default(),
            },
            Response::CancelOutcome { job: 9, outcome: CancelResult::Stopping },
            Response::Drained { completed: 3, rejected: 1 },
        ];
        for resp in resps {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn unknown_sections_skip_forward_compatibly() {
        let req = Request::Cancel { job: 3 };
        let framed = with_extra_section(&req.encode(), 999, b"future");
        assert_eq!(Request::decode(&framed).unwrap(), req);
        // A frame with ONLY unknown sections is a typed error.
        let alien = encode_frame(&[Section { tag: 999, payload: b"future".to_vec() }]);
        assert!(matches!(Request::decode(&alien), Err(ProtoError::UnknownMessage)));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_reading() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        let mut cursor = std::io::Cursor::new(wire);
        assert!(matches!(read_frame(&mut cursor), Err(ProtoError::Oversized(_))));
    }

    #[test]
    fn read_timeouts_map_to_the_typed_timeout_error() {
        for kind in [std::io::ErrorKind::TimedOut, std::io::ErrorKind::WouldBlock] {
            let e = std::io::Error::new(kind, "deadline elapsed");
            assert!(matches!(ProtoError::from(e), ProtoError::Timeout));
        }
        let hard = std::io::Error::new(std::io::ErrorKind::ConnectionReset, "reset");
        assert!(matches!(ProtoError::from(hard), ProtoError::Io(_)));
    }

    #[test]
    fn wire_round_trips_through_a_stream() {
        let frame = Request::Status.encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        assert_eq!(read_frame(&mut cursor).unwrap(), frame);
    }
}
