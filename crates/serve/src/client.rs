//! A small blocking client for the `psc serve` protocol — one
//! connection per request, mirroring the server's
//! request-per-connection model. The CLI subcommands (`psc submit`,
//! `psc jobs`, `psc cancel`, `psc drain`) and the integration tests
//! are all built on this.

use crate::proto::{read_frame, write_frame, ProtoError, Request, Response};
use psc_telemetry::faults::RetryPolicy;
use psc_telemetry::metrics::MetricsSnapshot;
use std::net::{TcpStream, ToSocketAddrs};

/// One protocol exchange with a server.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a server.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Io`] when the connection fails.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ProtoError> {
        Ok(Self { stream: TcpStream::connect(addr)? })
    }

    /// Send one request frame.
    ///
    /// # Errors
    ///
    /// Propagates wire-layer failures.
    pub fn send(&mut self, request: &Request) -> Result<(), ProtoError> {
        write_frame(&mut self.stream, &request.encode())
    }

    /// Read one response frame.
    ///
    /// # Errors
    ///
    /// Propagates wire-layer and decode failures.
    pub fn recv(&mut self) -> Result<Response, ProtoError> {
        Response::decode(&read_frame(&mut self.stream)?)
    }

    /// Submit a campaign spec and return the server's first answer
    /// ([`Response::Accepted`] or [`Response::Rejected`]). With
    /// `wait`, keep this client around and call
    /// [`Client::wait_for_report`] next.
    ///
    /// # Errors
    ///
    /// Propagates wire-layer and decode failures.
    pub fn submit(&mut self, tenant: &str, spec: &str, wait: bool) -> Result<Response, ProtoError> {
        self.send(&Request::Submit { tenant: tenant.to_owned(), wait, spec: spec.to_owned() })?;
        self.recv()
    }

    /// After an accepted `wait` submit: consume [`Response::Progress`]
    /// frames (passing each snapshot to `on_progress`) until the final
    /// frame — [`Response::Report`] on success, [`Response::Rejected`]
    /// on failure/cancellation — and return it.
    ///
    /// # Errors
    ///
    /// Propagates wire-layer and decode failures.
    pub fn wait_for_report(
        &mut self,
        mut on_progress: impl FnMut(&MetricsSnapshot),
    ) -> Result<Response, ProtoError> {
        loop {
            match self.recv()? {
                Response::Progress { metrics, .. } => on_progress(&metrics),
                other => return Ok(other),
            }
        }
    }

    /// Re-attach to a job this client (or a previous connection)
    /// already submitted: the server answers [`Response::Accepted`]
    /// and resumes streaming progress, or [`Response::Rejected`] for
    /// an unknown job id. Call [`Client::wait_for_report`] next.
    ///
    /// # Errors
    ///
    /// Propagates wire-layer and decode failures.
    pub fn watch(&mut self, job: u64) -> Result<Response, ProtoError> {
        self.send(&Request::Watch { job })?;
        self.recv()
    }

    /// Ask for the job list and server metrics.
    ///
    /// # Errors
    ///
    /// Propagates wire-layer and decode failures.
    pub fn status(&mut self) -> Result<Response, ProtoError> {
        self.send(&Request::Status)?;
        self.recv()
    }

    /// Cancel a job.
    ///
    /// # Errors
    ///
    /// Propagates wire-layer and decode failures.
    pub fn cancel(&mut self, job: u64) -> Result<Response, ProtoError> {
        self.send(&Request::Cancel { job })?;
        self.recv()
    }

    /// Drain the server: blocks until everything in flight has
    /// settled and returns the [`Response::Drained`] summary.
    ///
    /// # Errors
    ///
    /// Propagates wire-layer and decode failures.
    pub fn drain(&mut self) -> Result<Response, ProtoError> {
        self.send(&Request::Drain)?;
        self.recv()
    }
}

/// Submit with `wait` on a fresh connection and block until the final
/// frame, discarding progress snapshots.
///
/// # Errors
///
/// Propagates connection, wire-layer and decode failures.
pub fn submit_and_wait(
    addr: impl ToSocketAddrs,
    tenant: &str,
    spec: &str,
) -> Result<Response, ProtoError> {
    let mut client = Client::connect(addr)?;
    match client.submit(tenant, spec, true)? {
        Response::Accepted { .. } => client.wait_for_report(|_| ()),
        other => Ok(other),
    }
}

/// Submit with `wait` and survive transient disconnects: if the wait
/// stream drops mid-campaign, reconnect under `retry` (deterministic
/// jittered backoff, salted by the job id) and re-subscribe to the
/// same job with [`Request::Watch`]. The job keeps running server-side
/// across the gap, so the final frame is identical to an undisturbed
/// wait. Each progress snapshot is passed to `on_progress`.
///
/// # Errors
///
/// Propagates the submit-path failures verbatim; a wait-stream failure
/// is returned only once the retry budget is exhausted.
pub fn submit_and_wait_with_retry(
    addr: impl ToSocketAddrs + Clone,
    tenant: &str,
    spec: &str,
    retry: &RetryPolicy,
    mut on_progress: impl FnMut(&MetricsSnapshot),
) -> Result<Response, ProtoError> {
    let mut client = Client::connect(addr.clone())?;
    let job = match client.submit(tenant, spec, true)? {
        Response::Accepted { job } => job,
        other => return Ok(other),
    };
    let mut attempt = 1u32;
    loop {
        match client.wait_for_report(&mut on_progress) {
            Ok(response) => return Ok(response),
            Err(e) => {
                // The job survives the dropped stream; reconnect and
                // re-subscribe by id until the retry budget runs out.
                if !retry.should_retry(attempt) {
                    return Err(e);
                }
                std::thread::sleep(retry.delay(attempt, job));
                attempt += 1;
                client = match Client::connect(addr.clone()) {
                    Ok(client) => client,
                    Err(_) => continue,
                };
                match client.watch(job) {
                    Ok(Response::Accepted { .. }) => {}
                    Ok(other) => return Ok(other),
                    Err(_) => continue,
                }
            }
        }
    }
}
