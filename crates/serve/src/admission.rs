//! Admission control: decide at submit time whether the service can
//! take one more campaign without degrading the ones in flight.
//!
//! The controller sheds load with a **typed** refusal
//! ([`RejectReason::Saturated`] / [`RejectReason::TenantBusy`]) instead
//! of queueing unboundedly or hanging the client. It reads three kinds
//! of signal:
//!
//! * **queue depth** — the worker pool's FIFO backlog against
//!   `max_queue`;
//! * **pipeline pressure** — the live merge of every running job's
//!   per-shard [`MetricsSnapshot`]s (the PR-6 merge law makes that sum
//!   meaningful): bus drop rate over `max_drop_rate` means shards are
//!   already shedding blocks;
//! * **dispatch latency** — the p99 of the pool's queue-wait histogram
//!   ([`psc_telemetry::metrics::Histogram::percentile`]) against
//!   `max_dispatch_p99_ns`: jobs waiting too long for a worker is
//!   saturation even when the queue is technically under its cap.
//!
//! Per-tenant fairness is a separate cap: one tenant may hold at most
//! `tenant_cap` queued-or-running jobs, so a burst from one client
//! cannot starve the rest.

use crate::proto::RejectReason;
use psc_telemetry::metrics::{names, MetricsSnapshot};

/// Thresholds for [`AdmissionController`]. The defaults are
/// deliberately permissive — the service sheds only under real
/// pressure; tighten them per deployment via `psc serve` flags.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Maximum jobs waiting in the pool queue (running jobs excluded).
    /// A full queue still admits while a worker sits idle (the job
    /// dispatches immediately), so `0` means "never queue": admitted
    /// only if a worker is free to take the job now.
    pub max_queue: usize,
    /// Maximum queued-or-running jobs per tenant.
    pub tenant_cap: usize,
    /// Maximum tolerated bus drop rate across the running jobs'
    /// merged metrics, in `[0, 1]`.
    pub max_drop_rate: f64,
    /// Maximum tolerated p99 dispatch wait (queue -> worker), in
    /// nanoseconds.
    pub max_dispatch_p99_ns: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            max_queue: 16,
            tenant_cap: 8,
            max_drop_rate: 0.25,
            max_dispatch_p99_ns: 60_000_000_000, // 60 s in queue is saturation
        }
    }
}

/// The live inputs to one admission decision, gathered by the server
/// at submit time.
#[derive(Debug, Clone)]
pub struct AdmissionSignals<'a> {
    /// Jobs currently waiting in the pool queue.
    pub queue_depth: usize,
    /// Workers with no job assigned right now.
    pub idle_workers: usize,
    /// This tenant's queued-or-running job count.
    pub tenant_jobs: usize,
    /// Live merge of the running jobs' per-shard metrics.
    pub pipeline: &'a MetricsSnapshot,
    /// p99 of the pool's dispatch-wait histogram, if any dispatches
    /// have been observed yet.
    pub dispatch_p99_ns: Option<u64>,
}

/// Stateless threshold evaluator — all state lives in the metrics it
/// reads, so the decision is reproducible from a metrics snapshot.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdmissionController {
    cfg: AdmissionConfig,
}

/// Bus drop rate across a merged snapshot: dropped / (accepted +
/// dropped), `0.0` before any traffic.
#[must_use]
pub fn drop_rate(pipeline: &MetricsSnapshot) -> f64 {
    let accepted = pipeline.counter(names::BUS_BLOCKS);
    let dropped = pipeline.counter(names::BUS_DROPPED);
    let total = accepted + dropped;
    if total == 0 {
        0.0
    } else {
        dropped as f64 / total as f64
    }
}

impl AdmissionController {
    /// Build a controller over the given thresholds.
    #[must_use]
    pub fn new(cfg: AdmissionConfig) -> Self {
        Self { cfg }
    }

    /// The thresholds in force.
    #[must_use]
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Evaluate one submission. `Ok(())` admits; `Err` carries the
    /// typed refusal to send back. Checks run cheapest-first and the
    /// first tripped signal wins.
    ///
    /// # Errors
    ///
    /// [`RejectReason::Saturated`] when queue depth, drop rate or
    /// dispatch p99 crosses its threshold;
    /// [`RejectReason::TenantBusy`] when the tenant is at its cap.
    pub fn admit(&self, tenant: &str, signals: &AdmissionSignals<'_>) -> Result<(), RejectReason> {
        if signals.queue_depth >= self.cfg.max_queue && signals.idle_workers == 0 {
            return Err(RejectReason::Saturated {
                detail: format!("queue full ({}/{})", signals.queue_depth, self.cfg.max_queue),
            });
        }
        if signals.tenant_jobs >= self.cfg.tenant_cap {
            return Err(RejectReason::TenantBusy {
                tenant: tenant.to_owned(),
                cap: self.cfg.tenant_cap as u64,
            });
        }
        let rate = drop_rate(signals.pipeline);
        if rate > self.cfg.max_drop_rate {
            return Err(RejectReason::Saturated {
                detail: format!(
                    "bus drop rate {:.1}% over the {:.1}% threshold",
                    rate * 100.0,
                    self.cfg.max_drop_rate * 100.0
                ),
            });
        }
        if let Some(p99) = signals.dispatch_p99_ns {
            if p99 > self.cfg.max_dispatch_p99_ns {
                return Err(RejectReason::Saturated {
                    detail: format!(
                        "p99 dispatch wait {p99}ns over the {}ns threshold",
                        self.cfg.max_dispatch_p99_ns
                    ),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_telemetry::metrics::MetricsRegistry;

    fn signals(pipeline: &MetricsSnapshot) -> AdmissionSignals<'_> {
        AdmissionSignals {
            queue_depth: 0,
            idle_workers: 1,
            tenant_jobs: 0,
            pipeline,
            dispatch_p99_ns: None,
        }
    }

    #[test]
    fn admits_at_rest_and_sheds_on_each_signal() {
        let ctl = AdmissionController::new(AdmissionConfig {
            max_queue: 2,
            tenant_cap: 1,
            max_drop_rate: 0.5,
            max_dispatch_p99_ns: 1_000,
        });
        let idle = MetricsSnapshot::default();
        assert!(ctl.admit("a", &signals(&idle)).is_ok());

        let full = AdmissionSignals { queue_depth: 2, idle_workers: 0, ..signals(&idle) };
        assert!(matches!(ctl.admit("a", &full), Err(RejectReason::Saturated { .. })));

        let busy = AdmissionSignals { tenant_jobs: 1, ..signals(&idle) };
        assert!(matches!(ctl.admit("a", &busy), Err(RejectReason::TenantBusy { cap: 1, .. })));

        let slow = AdmissionSignals { dispatch_p99_ns: Some(2_000), ..signals(&idle) };
        assert!(matches!(ctl.admit("a", &slow), Err(RejectReason::Saturated { .. })));
    }

    #[test]
    fn drop_rate_reads_the_merged_bus_counters() {
        let reg = MetricsRegistry::new();
        reg.counter(names::BUS_BLOCKS).add(3);
        reg.counter(names::BUS_DROPPED).add(1);
        let snap = reg.snapshot();
        assert!((drop_rate(&snap) - 0.25).abs() < 1e-12);

        let ctl = AdmissionController::new(AdmissionConfig {
            max_drop_rate: 0.2,
            ..AdmissionConfig::default()
        });
        assert!(matches!(ctl.admit("a", &signals(&snap)), Err(RejectReason::Saturated { .. })));
    }

    #[test]
    fn max_queue_zero_only_admits_while_a_worker_is_idle() {
        let ctl = AdmissionController::new(AdmissionConfig {
            max_queue: 0,
            ..AdmissionConfig::default()
        });
        let idle = MetricsSnapshot::default();
        assert!(ctl.admit("a", &signals(&idle)).is_ok());
        let busy = AdmissionSignals { idle_workers: 0, ..signals(&idle) };
        assert!(matches!(ctl.admit("a", &busy), Err(RejectReason::Saturated { .. })));
    }
}
