//! Bounded FIFO worker pool.
//!
//! Jobs queue in submission order and a fixed set of worker threads
//! drains them; nothing here is asynchronous or work-stealing — FIFO
//! order is part of the service contract (a tenant can reason about
//! when its job runs from `psc jobs` output). The pool measures the
//! queue wait of every dispatched job into a caller-supplied histogram;
//! that histogram's p99 is one of the admission controller's
//! saturation signals.

use psc_telemetry::metrics::Histogram;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// One queued unit of work.
pub struct PoolJob {
    /// Caller-side identity (the server's job id) so a drained queue
    /// can be reported back per job.
    pub id: u64,
    /// When the job was enqueued — dispatch wait is measured from here.
    pub enqueued: Instant,
    /// The work itself.
    pub run: Box<dyn FnOnce() + Send + 'static>,
}

struct Shared {
    queue: Mutex<VecDeque<PoolJob>>,
    available: Condvar,
    shutdown: AtomicBool,
    dispatch_wait_ns: Arc<Histogram>,
}

/// A fixed-size worker pool over a FIFO queue.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `workers` threads (at least one) pulling from a shared
    /// FIFO queue. Every dispatch records its queue wait, in
    /// nanoseconds, into `dispatch_wait_ns`.
    #[must_use]
    pub fn new(workers: usize, dispatch_wait_ns: Arc<Histogram>) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            dispatch_wait_ns,
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("psc-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        Self { shared, workers }
    }

    /// Enqueue a job. Returns `false` (without enqueueing) after
    /// [`WorkerPool::shutdown`] — the caller decides how to surface
    /// that; the pool never silently drops accepted work.
    pub fn submit(&self, id: u64, run: impl FnOnce() + Send + 'static) -> bool {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return false;
        }
        let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
        queue.push_back(PoolJob { id, enqueued: Instant::now(), run: Box::new(run) });
        drop(queue);
        self.shared.available.notify_one();
        true
    }

    /// Jobs currently waiting for a worker (excludes running jobs).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().expect("pool queue poisoned").len()
    }

    /// Remove and return everything still queued — the drain path:
    /// the server rejects these jobs instead of running them.
    #[must_use]
    pub fn take_queued(&self) -> Vec<PoolJob> {
        self.shared.queue.lock().expect("pool queue poisoned").drain(..).collect()
    }

    /// Stop accepting work and wake the workers; each exits once the
    /// queue is empty. Call [`WorkerPool::join`] to wait for them.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
    }

    /// Wait for every worker to finish its current job and exit.
    /// Implies [`WorkerPool::shutdown`].
    pub fn join(mut self) {
        self.shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = shared.available.wait(queue).expect("pool queue poisoned");
            }
        };
        let wait_ns = u64::try_from(job.enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX);
        shared.dispatch_wait_ns.record(wait_ns);
        (job.run)();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_jobs_fifo_and_records_dispatch_wait() {
        let hist = Arc::new(Histogram::default());
        let pool = WorkerPool::new(1, Arc::clone(&hist));
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..4u64 {
            let order = Arc::clone(&order);
            assert!(pool.submit(i, move || order.lock().unwrap().push(i)));
        }
        pool.join();
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(hist.count(), 4);
    }

    #[test]
    fn take_queued_drains_pending_work_without_running_it() {
        let hist = Arc::new(Histogram::default());
        let pool = WorkerPool::new(1, hist);
        let gate = Arc::new(Mutex::new(()));
        let blocker = gate.lock().unwrap();
        let ran = Arc::new(AtomicU64::new(0));
        {
            let gate = Arc::clone(&gate);
            let ran = Arc::clone(&ran);
            pool.submit(0, move || {
                drop(gate.lock().unwrap());
                ran.fetch_add(1, Ordering::Relaxed);
            });
        }
        // Wait for the worker to pick up job 0 (it blocks on the gate),
        // then pile up queued jobs behind it.
        while pool.queue_depth() > 0 {
            std::thread::yield_now();
        }
        for i in 1..4u64 {
            let ran = Arc::clone(&ran);
            pool.submit(i, move || {
                ran.fetch_add(1, Ordering::Relaxed);
            });
        }
        let taken = pool.take_queued();
        assert_eq!(taken.iter().map(|j| j.id).collect::<Vec<_>>(), vec![1, 2, 3]);
        drop(blocker);
        pool.join();
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn submit_after_shutdown_is_refused() {
        let hist = Arc::new(Histogram::default());
        let pool = WorkerPool::new(2, hist);
        pool.shutdown();
        assert!(!pool.submit(9, || ()));
    }
}
