//! Distributed fleet aggregation: worker processes stream partial
//! accumulator state to an aggregator that merges survivors.
//!
//! The in-process [`Fleet`] source fans one shard per fleet member
//! across threads of a single process. This module is the same
//! campaign fanned across *processes*: each `psc worker` runs exactly
//! one member's shard (via [`FleetShard`], which re-addresses the
//! member's slot of the shared [`Fleet`] so the rig seed and device
//! are bit-identical to the in-process run) and streams its state to a
//! `psc aggregate` process, which merges the member reports with the
//! same snapshot-merge folds the in-process session uses. A
//! fault-free distributed run is therefore **byte-identical** — report
//! text and encoded analysis state — to the single-process fleet run
//! of the same spec.
//!
//! ## Worker protocol
//!
//! Every message is one codec-v3 frame behind the [`crate::proto`]
//! length prefix; worker tags are `32..=35`, aggregator tags
//! `48..=50`. A worker's life cycle:
//!
//! 1. [`WorkerMsg::Hello`] — member identity, member count, epoch, the
//!    spec fingerprint ([`spec_fingerprint`]) and analysis mode. The
//!    aggregator answers [`AggregatorMsg::Welcome`] or a typed
//!    [`AggregatorMsg::Reject`] (wrong spec, bad member index,
//!    unsupported mode).
//! 2. [`WorkerMsg::Partial`] — the worker's latest per-shard
//!    checkpoint frame (the existing codec-v3 `shard-000.ckpt`
//!    snapshot written by `Campaign::checkpoint_to`), stamped with an
//!    `(epoch, sequence)` pair. Partials are *cumulative* snapshots:
//!    the aggregator retains only the newest accepted stamp per
//!    member, so at-least-once delivery and reconnect re-sends merge
//!    exactly once. Stale or duplicate stamps are refused through the
//!    [`DedupGate`]; frames that fail CRC/decode are rejected and
//!    counted, never merged and never a panic.
//! 3. [`WorkerMsg::Heartbeat`] — liveness, sent on an interval.
//! 4. [`WorkerMsg::Done`] — the member's final state: encoded
//!    analysis accumulators, cadence-monitor totals, bus counters, I/O
//!    tallies and shard health.
//!
//! ## Epoch / sequence dedup rule
//!
//! Each worker send carries a strictly increasing `(epoch, seq)`
//! stamp. The epoch starts at 1 and bumps on every reconnect; `seq`
//! increases per send. The aggregator admits a stamp iff it is
//! lexicographically greater than the member's last admitted stamp —
//! so replays, re-sends after reconnect and out-of-order duplicates
//! are each accepted at most once (pinned by the fleet proptests).
//!
//! ## Failure semantics
//!
//! * Workers reconnect under the campaign [`RetryPolicy`] (bounded
//!   attempts, capped exponential backoff, deterministic jitter keyed
//!   by the member index), bumping their epoch per reconnect.
//! * The aggregator enforces a **heartbeat deadline** (a connected
//!   member that goes silent is demoted), a **join deadline** (a
//!   member that never says hello) and a **straggler timeout** (once
//!   the first member finishes, the rest must finish within the
//!   window). Demoted members land on the final report as
//!   [`ShardHealth::Failed`] and contribute nothing to the merge;
//!   members that completed but needed reconnects are
//!   [`ShardHealth::Degraded`]. Survivors merge to exactly the
//!   fault-free run restricted to the same members.
//! * Transport faults for the whole matrix — frame drop, frame delay,
//!   disconnect, bit corruption — are deterministically injectable on
//!   the worker send path through [`FaultPlan`]'s transport budgets.

use crate::proto::{
    get_blob, get_blob_str, mode_from_u8, mode_to_u8, put_blob, read_frame, tags, write_frame,
    ProtoError,
};
use psc_core::report::{self, campaign_banner, render_cpa_body, render_tvla_body};
use psc_core::session::{
    Campaign, ShardHealth, StreamingCpaReport, StreamingTvlaReport, MONITOR_INTERVAL_S,
};
use psc_core::source::{Fleet, FleetShard};
use psc_core::spec::{AnalysisMode, CampaignSpec, MitigationSetting};
use psc_sca::checkpoint::{
    decode_frame, encode_frame, CheckpointError, PayloadReader, PayloadWriter,
};
use psc_sca::cpa::HypTable;
use psc_telemetry::faults::{FaultPlan, FaultState, RetryPolicy};
use psc_telemetry::ring::ChannelStats;
use psc_telemetry::{split_counts, ChannelId, StreamingCpa, StreamingTvla, ThrottleMonitor};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Cadence-monitor retention, mirroring the session driver's private
/// depth: worker-shipped monitor snapshots carry no retained
/// checkpoints (only totals), so any depth ≥ 0 restores — this keeps
/// the restored monitors shaped like the in-process ones.
const MONITOR_DEPTH: usize = 64;

/// Handler-side socket read timeout: short enough that handler threads
/// notice aggregator completion promptly, well under any sane
/// heartbeat deadline.
const HANDLER_POLL: Duration = Duration::from_millis(100);

/// Errors from the distributed fleet layer.
#[derive(Debug)]
pub enum FleetError {
    /// The spec cannot run distributed (not a fleet, adaptive mode,
    /// member index out of range).
    Spec(String),
    /// A wire-layer failure that retries could not absorb.
    Proto(ProtoError),
    /// The aggregator refused this worker.
    Rejected(String),
    /// A member's shipped state failed to decode.
    Checkpoint(CheckpointError),
    /// Every member failed — nothing to merge.
    NoSurvivors,
    /// The worker's campaign thread panicked.
    WorkerPanicked(String),
}

impl core::fmt::Display for FleetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Spec(e) => write!(f, "spec cannot run distributed: {e}"),
            Self::Proto(e) => write!(f, "transport failure: {e}"),
            Self::Rejected(reason) => write!(f, "aggregator refused the worker: {reason}"),
            Self::Checkpoint(e) => write!(f, "member state failed to decode: {e}"),
            Self::NoSurvivors => write!(f, "every fleet member failed — nothing to merge"),
            Self::WorkerPanicked(e) => write!(f, "worker campaign panicked: {e}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<ProtoError> for FleetError {
    fn from(e: ProtoError) -> Self {
        Self::Proto(e)
    }
}

impl From<CheckpointError> for FleetError {
    fn from(e: CheckpointError) -> Self {
        Self::Checkpoint(e)
    }
}

impl From<std::io::Error> for FleetError {
    fn from(e: std::io::Error) -> Self {
        Self::Proto(ProtoError::from(e))
    }
}

/// FNV-1a over the spec's canonical `campaign.cfg` rendering: both
/// sides parse the same file format, so matching fingerprints mean
/// matching campaigns (keys, budgets, seed, tune — everything
/// [`CampaignSpec::render`] pins).
#[must_use]
pub fn spec_fingerprint(spec: &CampaignSpec) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in spec.render().bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Validate that `spec` can run as a distributed fleet and return the
/// member count.
///
/// # Errors
///
/// [`FleetError::Spec`] for non-fleet specs and for adaptive mode
/// (whose cross-shard early-stop flag cannot span processes).
pub fn distributed_members(spec: &CampaignSpec) -> Result<usize, FleetError> {
    if !spec.fleet {
        return Err(FleetError::Spec("distributed campaigns need fleet=true".into()));
    }
    if spec.mode == AnalysisMode::Adaptive {
        return Err(FleetError::Spec(
            "adaptive early-stop cannot span processes; use tvla or cpa".into(),
        ));
    }
    let members = spec.fleet_members().len();
    if members == 0 {
        return Err(FleetError::Spec("fleet has no members".into()));
    }
    Ok(members)
}

/// Per-member at-least-once dedup gate: a stamp is admitted iff it is
/// lexicographically greater than the last admitted `(epoch, seq)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct DedupGate {
    last: Option<(u64, u64)>,
}

impl DedupGate {
    /// Admit or refuse one stamp. Admission advances the gate; refusal
    /// leaves it unchanged, so a duplicate is refused every time.
    pub fn admit(&mut self, epoch: u64, seq: u64) -> bool {
        let stamp = (epoch, seq);
        if self.last.is_none_or(|last| stamp > last) {
            self.last = Some(stamp);
            true
        } else {
            false
        }
    }

    /// The last admitted stamp.
    #[must_use]
    pub fn last(&self) -> Option<(u64, u64)> {
        self.last
    }
}

/// One member's final state, as shipped in [`WorkerMsg::Done`]: the
/// encoded analysis accumulators plus every per-shard total the merged
/// report needs.
#[derive(Debug, Clone, PartialEq)]
pub struct MemberFinal {
    /// `StreamingTvla::encode_state` / `StreamingCpa::encode_state`
    /// payload for the member's single shard.
    pub analysis: Vec<u8>,
    /// `ThrottleMonitor::encode_state` payload (totals only — worker
    /// merge folds retain no cadence checkpoints).
    pub monitor: Vec<u8>,
    /// The member's bus counters.
    pub bus: ChannelStats,
    /// Recorder write failures (lost batches).
    pub io_errors: u64,
    /// Recorder retries that recovered.
    pub io_retries: u64,
    /// The member's own shard health.
    pub health: ShardHealth,
}

fn put_health(w: &mut PayloadWriter, health: &ShardHealth) {
    match health {
        ShardHealth::Ok => w.put_u8(0),
        ShardHealth::Degraded { reason } => {
            w.put_u8(1);
            put_blob(w, reason.as_bytes());
        }
        ShardHealth::Failed { reason } => {
            w.put_u8(2);
            put_blob(w, reason.as_bytes());
        }
    }
}

fn get_health(r: &mut PayloadReader<'_>) -> Result<ShardHealth, CheckpointError> {
    Ok(match r.get_u8()? {
        0 => ShardHealth::Ok,
        1 => ShardHealth::Degraded { reason: get_blob_str(r)? },
        2 => ShardHealth::Failed { reason: get_blob_str(r)? },
        _ => return Err(CheckpointError::Corrupt("unknown shard health")),
    })
}

impl MemberFinal {
    fn encode(&self, w: &mut PayloadWriter) {
        put_blob(w, &self.analysis);
        put_blob(w, &self.monitor);
        w.put_u64(self.bus.accepted);
        w.put_u64(self.bus.dropped);
        w.put_u64(self.bus.delivered);
        w.put_u64(self.bus.high_water);
        w.put_u64(self.io_errors);
        w.put_u64(self.io_retries);
        put_health(w, &self.health);
    }

    fn decode(r: &mut PayloadReader<'_>) -> Result<Self, CheckpointError> {
        Ok(Self {
            analysis: get_blob(r)?,
            monitor: get_blob(r)?,
            bus: ChannelStats {
                accepted: r.get_u64()?,
                dropped: r.get_u64()?,
                delivered: r.get_u64()?,
                high_water: r.get_u64()?,
            },
            io_errors: r.get_u64()?,
            io_retries: r.get_u64()?,
            health: get_health(r)?,
        })
    }
}

/// A worker-to-aggregator message.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerMsg {
    /// Identify: which member of how many, under which epoch, running
    /// which campaign.
    Hello {
        /// Member index (shard slot in the fleet).
        member: u32,
        /// Total fleet member count the worker believes in.
        members: u32,
        /// Connection epoch (1 on first connect, +1 per reconnect).
        epoch: u64,
        /// [`spec_fingerprint`] of the worker's spec.
        fingerprint: u64,
        /// Analysis mode the worker is running.
        mode: AnalysisMode,
    },
    /// A cumulative partial-state snapshot: the member's latest
    /// `shard-000.ckpt` checkpoint frame, verbatim.
    Partial {
        /// Member index.
        member: u32,
        /// Connection epoch.
        epoch: u64,
        /// Send sequence (strictly increasing per worker).
        seq: u64,
        /// The codec-v3 checkpoint frame.
        frame: Vec<u8>,
    },
    /// Liveness.
    Heartbeat {
        /// Member index.
        member: u32,
        /// Connection epoch.
        epoch: u64,
    },
    /// The member finished; here is its final state.
    Done {
        /// Member index.
        member: u32,
        /// Connection epoch.
        epoch: u64,
        /// Send sequence.
        seq: u64,
        /// The member's complete final state.
        state: MemberFinal,
    },
}

impl WorkerMsg {
    /// Encode as one codec-v3 frame (no wire length prefix).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::new();
        let section = match self {
            Self::Hello { member, members, epoch, fingerprint, mode } => {
                w.put_u32(*member);
                w.put_u32(*members);
                w.put_u64(*epoch);
                w.put_u64(*fingerprint);
                w.put_u8(mode_to_u8(*mode));
                w.into_section(tags::WORKER_HELLO)
            }
            Self::Partial { member, epoch, seq, frame } => {
                w.put_u32(*member);
                w.put_u64(*epoch);
                w.put_u64(*seq);
                put_blob(&mut w, frame);
                w.into_section(tags::WORKER_PARTIAL)
            }
            Self::Heartbeat { member, epoch } => {
                w.put_u32(*member);
                w.put_u64(*epoch);
                w.into_section(tags::WORKER_HEARTBEAT)
            }
            Self::Done { member, epoch, seq, state } => {
                w.put_u32(*member);
                w.put_u64(*epoch);
                w.put_u64(*seq);
                state.encode(&mut w);
                w.into_section(tags::WORKER_DONE)
            }
        };
        encode_frame(&[section])
    }

    /// Decode a codec-v3 frame: first known tag wins, unknown tags are
    /// skipped.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Checkpoint`] on framing/CRC/payload corruption;
    /// [`ProtoError::UnknownMessage`] when no worker tag is present.
    pub fn decode(frame: &[u8]) -> Result<Self, ProtoError> {
        for section in decode_frame(frame)? {
            let mut r = PayloadReader::new(&section.payload);
            let parsed = match section.tag {
                tags::WORKER_HELLO => Self::Hello {
                    member: r.get_u32()?,
                    members: r.get_u32()?,
                    epoch: r.get_u64()?,
                    fingerprint: r.get_u64()?,
                    mode: mode_from_u8(r.get_u8()?)?,
                },
                tags::WORKER_PARTIAL => Self::Partial {
                    member: r.get_u32()?,
                    epoch: r.get_u64()?,
                    seq: r.get_u64()?,
                    frame: get_blob(&mut r)?,
                },
                tags::WORKER_HEARTBEAT => {
                    Self::Heartbeat { member: r.get_u32()?, epoch: r.get_u64()? }
                }
                tags::WORKER_DONE => Self::Done {
                    member: r.get_u32()?,
                    epoch: r.get_u64()?,
                    seq: r.get_u64()?,
                    state: MemberFinal::decode(&mut r)?,
                },
                _ => continue,
            };
            r.finish()?;
            return Ok(parsed);
        }
        Err(ProtoError::UnknownMessage)
    }
}

/// An aggregator-to-worker message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggregatorMsg {
    /// Hello accepted.
    Welcome,
    /// Acknowledgement of a partial/heartbeat/done; `accepted` is
    /// `false` for stamps the dedup gate refused.
    Ack {
        /// Echoed epoch.
        epoch: u64,
        /// Echoed sequence.
        seq: u64,
        /// Whether the stamp was admitted.
        accepted: bool,
    },
    /// The worker (or this one frame) was refused.
    Reject {
        /// Why.
        reason: String,
    },
}

impl AggregatorMsg {
    /// Encode as one codec-v3 frame (no wire length prefix).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::new();
        let section = match self {
            Self::Welcome => w.into_section(tags::AGG_WELCOME),
            Self::Ack { epoch, seq, accepted } => {
                w.put_u64(*epoch);
                w.put_u64(*seq);
                w.put_u8(u8::from(*accepted));
                w.into_section(tags::AGG_ACK)
            }
            Self::Reject { reason } => {
                put_blob(&mut w, reason.as_bytes());
                w.into_section(tags::AGG_REJECT)
            }
        };
        encode_frame(&[section])
    }

    /// Decode a codec-v3 frame: first known tag wins.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Checkpoint`] on corruption,
    /// [`ProtoError::UnknownMessage`] when no aggregator tag is
    /// present.
    pub fn decode(frame: &[u8]) -> Result<Self, ProtoError> {
        for section in decode_frame(frame)? {
            let mut r = PayloadReader::new(&section.payload);
            let parsed = match section.tag {
                tags::AGG_WELCOME => Self::Welcome,
                tags::AGG_ACK => {
                    Self::Ack { epoch: r.get_u64()?, seq: r.get_u64()?, accepted: r.get_u8()? != 0 }
                }
                tags::AGG_REJECT => Self::Reject { reason: get_blob_str(&mut r)? },
                _ => continue,
            };
            r.finish()?;
            return Ok(parsed);
        }
        Err(ProtoError::UnknownMessage)
    }
}

/// Run member `member`'s shard of `spec` in-process and package its
/// final state — the worker's campaign half, also the helper tests and
/// benches use to build survivor-restricted baselines without sockets.
/// With `checkpoint_dir`, the campaign snapshots `shard-000.ckpt`
/// every `spec.every` blocks (the partial-stream source).
///
/// # Errors
///
/// [`FleetError::Spec`] when the spec cannot run distributed or
/// `member` is out of range.
///
/// # Panics
///
/// Propagates campaign panics (callers running worker processes catch
/// them at the thread join).
pub fn member_state(
    spec: &CampaignSpec,
    member: usize,
    checkpoint_dir: Option<&Path>,
) -> Result<MemberFinal, FleetError> {
    let members = distributed_members(spec)?;
    if member >= members {
        return Err(FleetError::Spec(format!("member {member} out of range (fleet of {members})")));
    }
    let fleet = Fleet::new(spec.fleet_members(), spec.key, spec.seed);
    let counts = split_counts(spec.traces, members);
    let mut campaign = Campaign::from_source(FleetShard::new(fleet, member))
        .keys(&spec.keys())
        .traces(counts[member])
        .shards(1)
        .mitigation(spec.mitigation.unwrap_or(MitigationSetting::None).to_config())
        .tune(spec.tune);
    if let Some(dir) = checkpoint_dir {
        campaign = campaign.checkpoint_to(dir, spec.every);
    }
    if let Some(dir) = &spec.record {
        // Worker-local recording: each member records its own shard
        // under a member-suffixed directory so co-located workers
        // never collide.
        campaign = campaign.record_to(format!("{dir}/member-{member:03}"));
    }
    if let Some(interval_s) = spec.monitor {
        campaign = campaign.monitor(interval_s);
    }
    Ok(match spec.mode {
        AnalysisMode::Tvla => {
            let report = campaign.session().tvla();
            let mut w = PayloadWriter::new();
            report.tvla.encode_state(&mut w);
            let analysis = w.into_payload();
            let mut w = PayloadWriter::new();
            report.monitor.encode_state(&mut w);
            MemberFinal {
                analysis,
                monitor: w.into_payload(),
                bus: report.bus,
                io_errors: report.io_errors,
                io_retries: report.io_retries,
                health: report.health[0].clone(),
            }
        }
        AnalysisMode::Cpa => {
            let report = campaign.session().cpa(report::cpa_model);
            let mut w = PayloadWriter::new();
            report.cpa.encode_state(&mut w);
            let analysis = w.into_payload();
            let mut w = PayloadWriter::new();
            report.monitor.encode_state(&mut w);
            MemberFinal {
                analysis,
                monitor: w.into_payload(),
                bus: report.bus,
                io_errors: report.io_errors,
                io_retries: report.io_retries,
                health: report.health[0].clone(),
            }
        }
        AnalysisMode::Adaptive => unreachable!("distributed_members refuses adaptive"),
    })
}

/// What became of one member, as input to [`merge_survivors`].
#[derive(Debug, Clone)]
pub enum MemberOutcome {
    /// The member delivered its final state (possibly after
    /// `reconnects` transport reconnects).
    Completed {
        /// The delivered state.
        state: MemberFinal,
        /// Transport reconnects the member needed (epoch − 1).
        reconnects: u64,
    },
    /// The member never delivered: killed, silent past its heartbeat
    /// deadline, or straggling past the timeout.
    Failed {
        /// Why it was demoted.
        reason: String,
    },
}

/// The aggregator's merged result.
#[derive(Debug)]
pub struct MergedFleet {
    /// Full deterministic report text: campaign banner + body, the
    /// same renderer `psc campaign` uses.
    pub text: String,
    /// Encoded merged analysis state (`encode_state` of the merged
    /// accumulators) — byte-identical to the in-process fleet run's
    /// `CampaignOutcome::analysis` when every member survived cleanly.
    pub analysis: Vec<u8>,
    /// Per-member health, in member order.
    pub health: Vec<ShardHealth>,
    /// Members that delivered final state.
    pub survivors: usize,
    /// Wall-clock nanoseconds the merge fold took.
    pub merge_ns: u64,
}

fn add_stats(a: ChannelStats, b: ChannelStats) -> ChannelStats {
    ChannelStats {
        accepted: a.accepted + b.accepted,
        dropped: a.dropped + b.dropped,
        delivered: a.delivered + b.delivered,
        high_water: a.high_water.max(b.high_water),
    }
}

fn restore_monitor(interval_s: f64, payload: &[u8]) -> Result<ThrottleMonitor, CheckpointError> {
    let mut monitor = ThrottleMonitor::new(interval_s, MONITOR_DEPTH);
    let mut r = PayloadReader::new(payload);
    monitor.restore_state(&mut r)?;
    r.finish()?;
    Ok(monitor)
}

fn outcome_health(outcome: &MemberOutcome) -> ShardHealth {
    match outcome {
        MemberOutcome::Completed { state, reconnects } => {
            if *reconnects > 0 && state.health.is_ok() {
                ShardHealth::Degraded {
                    reason: format!("completed after {reconnects} transport reconnect(s)"),
                }
            } else {
                state.health.clone()
            }
        }
        MemberOutcome::Failed { reason } => ShardHealth::Failed { reason: reason.clone() },
    }
}

/// Merge the surviving members of a distributed fleet campaign, in
/// member order, with exactly the folds the in-process session driver
/// uses — so a fault-free merge is byte-identical to the in-process
/// fleet run, and a degraded merge equals the fault-free run
/// restricted to the surviving members.
///
/// # Errors
///
/// [`FleetError::NoSurvivors`] when no member completed;
/// [`FleetError::Checkpoint`] when a delivered state fails to decode;
/// [`FleetError::Spec`] for specs that cannot run distributed.
pub fn merge_survivors(
    spec: &CampaignSpec,
    outcomes: &[MemberOutcome],
) -> Result<MergedFleet, FleetError> {
    let members = distributed_members(spec)?;
    if outcomes.len() != members {
        return Err(FleetError::Spec(format!(
            "{} outcome(s) for a fleet of {members}",
            outcomes.len()
        )));
    }
    let interval_s = spec.monitor.unwrap_or(MONITOR_INTERVAL_S);
    let health: Vec<ShardHealth> = outcomes.iter().map(outcome_health).collect();
    let survivors =
        outcomes.iter().filter(|o| matches!(o, MemberOutcome::Completed { .. })).count();
    if survivors == 0 {
        return Err(FleetError::NoSurvivors);
    }

    let t0 = Instant::now();
    let mut monitor = ThrottleMonitor::new(interval_s, MONITOR_DEPTH);
    let mut bus = ChannelStats::default();
    let mut io_errors = 0u64;
    let mut io_retries = 0u64;
    for outcome in outcomes {
        if let MemberOutcome::Completed { state, .. } = outcome {
            monitor = monitor.merged_totals(&restore_monitor(interval_s, &state.monitor)?);
            bus = add_stats(bus, state.bus);
            io_errors += state.io_errors;
            io_retries += state.io_retries;
        }
    }

    let (text, analysis) = match spec.mode {
        AnalysisMode::Tvla => {
            let mut merged = StreamingTvla::new();
            for outcome in outcomes {
                if let MemberOutcome::Completed { state, .. } = outcome {
                    let mut tvla = StreamingTvla::new();
                    let mut r = PayloadReader::new(&state.analysis);
                    tvla.restore_state(&mut r)?;
                    r.finish()?;
                    merged = merged.merged(tvla);
                }
            }
            let report = StreamingTvlaReport {
                tvla: merged,
                monitor,
                bus,
                keys: spec.keys(),
                shards: members,
                io_errors,
                recorder_error: None,
                shard_cadence: vec![Vec::new(); members],
                metrics: None,
                health: health.clone(),
                warnings: Vec::new(),
                io_retries,
            };
            let mut w = PayloadWriter::new();
            report.tvla.encode_state(&mut w);
            (campaign_banner(spec) + &render_tvla_body(&report), w.into_payload())
        }
        AnalysisMode::Cpa => {
            // One shared hypothesis table, like the in-process driver.
            let table = Arc::new(HypTable::for_model(report::cpa_model().as_ref()));
            let mut merged: Option<StreamingCpa> = None;
            for outcome in outcomes {
                if let MemberOutcome::Completed { state, .. } = outcome {
                    let mut cpa = StreamingCpa::with_table(
                        spec.keys().iter().map(|&k| ChannelId::Smc(k)),
                        report::cpa_model,
                        Arc::clone(&table),
                    );
                    cpa.set_unroll(spec.tune.cpa_unroll);
                    let mut r = PayloadReader::new(&state.analysis);
                    cpa.restore_state(&mut r)?;
                    r.finish()?;
                    merged = Some(match merged.take() {
                        None => cpa,
                        Some(acc) => acc
                            .merged(cpa)
                            .map_err(|_| CheckpointError::Corrupt("member channel sets differ"))?,
                    });
                }
            }
            let report = StreamingCpaReport {
                cpa: merged.expect("survivors > 0"),
                monitor,
                bus,
                keys: spec.keys(),
                shards: members,
                io_errors,
                recorder_error: None,
                shard_cadence: vec![Vec::new(); members],
                metrics: None,
                health: health.clone(),
                warnings: Vec::new(),
                io_retries,
            };
            let mut w = PayloadWriter::new();
            report.cpa.encode_state(&mut w);
            (campaign_banner(spec) + &render_cpa_body(&report, &spec.key), w.into_payload())
        }
        AnalysisMode::Adaptive => unreachable!("distributed_members refuses adaptive"),
    };
    let merge_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    Ok(MergedFleet { text, analysis, health, survivors, merge_ns })
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

/// Worker-process configuration.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// This worker's fleet member index.
    pub member: usize,
    /// Scratch directory for the member's checkpoint frames (the
    /// partial-stream source).
    pub workdir: PathBuf,
    /// Heartbeat cadence.
    pub heartbeat_interval: Duration,
    /// Reconnect policy (bounded attempts, capped backoff,
    /// deterministic jitter keyed by the member index).
    pub retry: RetryPolicy,
    /// Transport fault injection (only the transport budgets are
    /// honored; the member's campaign itself runs clean).
    pub faults: FaultPlan,
}

impl WorkerConfig {
    /// Defaults: 200 ms heartbeats, the default retry policy, no
    /// faults.
    #[must_use]
    pub fn new(member: usize, workdir: impl Into<PathBuf>) -> Self {
        Self {
            member,
            workdir: workdir.into(),
            heartbeat_interval: Duration::from_millis(200),
            retry: RetryPolicy::default(),
            faults: FaultPlan::default(),
        }
    }
}

/// What one worker run did, for diagnostics and the fleet bench.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Connection epochs used (1 = never reconnected).
    pub epochs: u64,
    /// Partial snapshots sent (including re-sends).
    pub partials_sent: u64,
    /// Sends the aggregator refused (dedup or corruption).
    pub rejected: u64,
    /// Transport reconnects performed.
    pub reconnects: u64,
    /// Total wall-clock time spent re-establishing the connection.
    pub recovery: Duration,
}

enum SendPlan {
    Send(Vec<u8>),
    Drop,
    Disconnect,
}

/// Apply the armed transport faults to one outbound message. Drop
/// faults model a lossy partial stream, so they apply to the advisory
/// messages (partials, heartbeats) — the terminal `Hello`/`Done`
/// exchanges go through the disconnect/corrupt gates only, both of
/// which have reply-driven retry paths.
fn plan_send(msg: &WorkerMsg, faults: &FaultState) -> SendPlan {
    if faults.take_disconnect() {
        return SendPlan::Disconnect;
    }
    let droppable = matches!(msg, WorkerMsg::Partial { .. } | WorkerMsg::Heartbeat { .. });
    if droppable && faults.take_frame_drop() {
        return SendPlan::Drop;
    }
    if let Some(delay) = faults.frame_delay() {
        std::thread::sleep(delay);
    }
    let mut frame = msg.encode();
    if faults.take_frame_corrupt() {
        // Flip one bit mid-frame: the length prefix stays intact so
        // framing survives, but the section CRC must catch it.
        let at = frame.len() / 2;
        frame[at] ^= 0x40;
    }
    SendPlan::Send(frame)
}

struct WorkerLink<'a> {
    addr: String,
    spec: &'a CampaignSpec,
    cfg: &'a WorkerConfig,
    members: usize,
    stream: Option<TcpStream>,
    epoch: u64,
    seq: u64,
    summary: WorkerSummary,
}

impl WorkerLink<'_> {
    fn hello(&self) -> WorkerMsg {
        WorkerMsg::Hello {
            member: self.cfg.member as u32,
            members: self.members as u32,
            epoch: self.epoch,
            fingerprint: spec_fingerprint(self.spec),
            mode: self.spec.mode,
        }
    }

    /// Connect and complete the hello exchange once.
    fn connect_once(&mut self) -> Result<(), FleetError> {
        let mut stream = TcpStream::connect(&self.addr).map_err(ProtoError::from)?;
        write_frame(&mut stream, &self.hello().encode())?;
        match AggregatorMsg::decode(&read_frame(&mut stream)?)? {
            AggregatorMsg::Welcome => {
                self.stream = Some(stream);
                Ok(())
            }
            AggregatorMsg::Reject { reason } => Err(FleetError::Rejected(reason)),
            AggregatorMsg::Ack { .. } => Err(FleetError::Proto(ProtoError::UnknownMessage)),
        }
    }

    /// (Re)establish the connection under the retry policy. A typed
    /// rejection is terminal; transport errors back off and retry.
    fn connect(&mut self) -> Result<(), FleetError> {
        let t0 = Instant::now();
        let first = self.summary.epochs == 0;
        if !first {
            self.epoch += 1;
            self.summary.reconnects += 1;
        }
        self.summary.epochs = self.summary.epochs.max(self.epoch);
        let mut attempt = 1u32;
        loop {
            match self.connect_once() {
                Ok(()) => {
                    if !first {
                        self.summary.recovery += t0.elapsed();
                    }
                    return Ok(());
                }
                Err(e @ FleetError::Rejected(_)) => return Err(e),
                Err(e) => {
                    if !self.cfg.retry.should_retry(attempt) {
                        return Err(e);
                    }
                    std::thread::sleep(self.cfg.retry.delay(attempt, self.cfg.member as u64));
                    attempt += 1;
                }
            }
        }
    }

    /// Send one message (fault gates applied) and consume the reply.
    /// Transport failures reconnect under the retry policy and report
    /// `Ok(false)` so the caller may re-send under a fresh epoch.
    fn send(&mut self, msg: &WorkerMsg, faults: &FaultState) -> Result<bool, FleetError> {
        let Some(stream) = self.stream.as_mut() else {
            self.connect()?;
            return Ok(false);
        };
        match plan_send(msg, faults) {
            SendPlan::Drop => Ok(true),
            SendPlan::Disconnect => {
                self.stream = None;
                self.connect()?;
                Ok(false)
            }
            SendPlan::Send(frame) => {
                let sent = write_frame(stream, &frame)
                    .and_then(|()| read_frame(stream))
                    .and_then(|reply| AggregatorMsg::decode(&reply));
                match sent {
                    Ok(AggregatorMsg::Ack { accepted, .. }) => {
                        if !accepted {
                            self.summary.rejected += 1;
                        }
                        Ok(true)
                    }
                    Ok(AggregatorMsg::Reject { .. }) => {
                        self.summary.rejected += 1;
                        Ok(true)
                    }
                    Ok(AggregatorMsg::Welcome) => Ok(true),
                    Err(_) => {
                        self.stream = None;
                        self.connect()?;
                        Ok(false)
                    }
                }
            }
        }
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }
}

/// Run one fleet member as a worker process: execute its shard
/// campaign, stream partial checkpoint frames and heartbeats to the
/// aggregator at `addr`, survive transport faults by reconnecting
/// under the retry policy, and deliver the final member state.
///
/// # Errors
///
/// [`FleetError::Spec`] for specs that cannot run distributed;
/// [`FleetError::Rejected`] when the aggregator refuses the worker;
/// [`FleetError::Proto`] when the transport fails beyond the retry
/// budget; [`FleetError::WorkerPanicked`] when the campaign dies.
pub fn run_worker(
    addr: impl ToSocketAddrs + core::fmt::Display,
    spec: &CampaignSpec,
    cfg: &WorkerConfig,
) -> Result<WorkerSummary, FleetError> {
    let members = distributed_members(spec)?;
    if cfg.member >= members {
        return Err(FleetError::Spec(format!(
            "member {} out of range (fleet of {members})",
            cfg.member
        )));
    }
    let faults = cfg.faults.armed();
    let mut link = WorkerLink {
        addr: addr.to_string(),
        spec,
        cfg,
        members,
        stream: None,
        epoch: 1,
        seq: 0,
        summary: WorkerSummary::default(),
    };
    link.connect()?;

    // The campaign runs on its own thread; the network loop owns the
    // socket and tails the checkpoint file for partials.
    let ckpt_path = cfg.workdir.join("shard-000.ckpt");
    let campaign_spec = spec.clone();
    let campaign_member = cfg.member;
    let campaign_dir = cfg.workdir.clone();
    let handle = std::thread::spawn(move || {
        member_state(&campaign_spec, campaign_member, Some(&campaign_dir))
    });

    let mut last_partial: Vec<u8> = Vec::new();
    let mut last_heartbeat = Instant::now();
    loop {
        if handle.is_finished() {
            break;
        }
        if let Ok(bytes) = std::fs::read(&ckpt_path) {
            // Only ship frames that changed and decode cleanly — a
            // torn read (impossible under the atomic rename, but
            // cheap to guard) must never hit the wire.
            if bytes != last_partial && decode_frame(&bytes).is_ok() {
                let msg = WorkerMsg::Partial {
                    member: cfg.member as u32,
                    epoch: link.epoch,
                    seq: link.next_seq(),
                    frame: bytes.clone(),
                };
                let mut delivered = link.send(&msg, &faults)?;
                while !delivered {
                    // Reconnected: re-send under the fresh epoch
                    // (at-least-once; the dedup gate absorbs it).
                    let msg = WorkerMsg::Partial {
                        member: cfg.member as u32,
                        epoch: link.epoch,
                        seq: link.next_seq(),
                        frame: bytes.clone(),
                    };
                    delivered = link.send(&msg, &faults)?;
                }
                link.summary.partials_sent += 1;
                last_partial = bytes;
            }
        }
        if last_heartbeat.elapsed() >= cfg.heartbeat_interval {
            let msg = WorkerMsg::Heartbeat { member: cfg.member as u32, epoch: link.epoch };
            link.send(&msg, &faults)?;
            last_heartbeat = Instant::now();
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    let state = match handle.join() {
        Ok(Ok(state)) => state,
        Ok(Err(e)) => return Err(e),
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "campaign panicked".to_owned());
            return Err(FleetError::WorkerPanicked(msg));
        }
    };
    loop {
        let rejected_before = link.summary.rejected;
        let msg = WorkerMsg::Done {
            member: cfg.member as u32,
            epoch: link.epoch,
            seq: link.next_seq(),
            state: state.clone(),
        };
        // Delivered and not refused (a corrupt-fault hit comes back as
        // a counted rejection) — anything else re-sends under a fresh
        // stamp. A benign duplicate-Done refusal also re-sends once
        // more, which the gate then refuses again harmlessly, but the
        // first acceptance has already landed by then.
        if link.send(&msg, &faults)? && link.summary.rejected == rejected_before {
            break;
        }
    }
    Ok(link.summary)
}

// ---------------------------------------------------------------------------
// Aggregator
// ---------------------------------------------------------------------------

/// Aggregator deadlines.
#[derive(Debug, Clone, Copy)]
pub struct AggregatorConfig {
    /// A connected member that stays silent this long is demoted to
    /// [`ShardHealth::Failed`].
    pub heartbeat_timeout: Duration,
    /// A member that never says hello within this window is demoted.
    pub join_timeout: Duration,
    /// Once the first member finishes, the rest must finish within
    /// this window or be demoted.
    pub straggler_timeout: Duration,
}

impl Default for AggregatorConfig {
    /// 5 s heartbeat deadline, 30 s join window, 60 s straggler
    /// timeout — generous for local process fleets, bounded for CI.
    fn default() -> Self {
        Self {
            heartbeat_timeout: Duration::from_secs(5),
            join_timeout: Duration::from_secs(30),
            straggler_timeout: Duration::from_secs(60),
        }
    }
}

/// Aggregate transport statistics for the final summary and the fleet
/// bench.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AggregateStats {
    /// Partial snapshots admitted by the dedup gate.
    pub partials_accepted: u64,
    /// Stamps the dedup gate refused (duplicates/stale).
    pub partials_rejected: u64,
    /// Frames that failed CRC/decode and were refused.
    pub corrupt_frames: u64,
    /// Transport reconnects observed (epochs beyond each member's
    /// first).
    pub reconnects: u64,
}

#[derive(Debug, Default)]
struct MemberSlot {
    gate: DedupGate,
    max_epoch: u64,
    last_seen: Option<Instant>,
    partials: u64,
    done: Option<MemberFinal>,
    failed: Option<String>,
}

impl MemberSlot {
    fn terminal(&self) -> bool {
        self.done.is_some() || self.failed.is_some()
    }
}

struct Shared {
    fingerprint: u64,
    members: usize,
    mode: AnalysisMode,
    slots: Mutex<Vec<MemberSlot>>,
    partials_accepted: AtomicU64,
    partials_rejected: AtomicU64,
    corrupt_frames: AtomicU64,
    done: AtomicBool,
}

impl Shared {
    /// Apply one decoded worker message, returning the reply.
    fn apply(&self, msg: &WorkerMsg) -> AggregatorMsg {
        let member = match msg {
            WorkerMsg::Hello { member, .. }
            | WorkerMsg::Partial { member, .. }
            | WorkerMsg::Heartbeat { member, .. }
            | WorkerMsg::Done { member, .. } => *member as usize,
        };
        if member >= self.members {
            return AggregatorMsg::Reject {
                reason: format!("member {member} out of range (fleet of {})", self.members),
            };
        }
        let mut slots = self.slots.lock().expect("fleet slots lock");
        let slot = &mut slots[member];
        slot.last_seen = Some(Instant::now());
        match msg {
            WorkerMsg::Hello { members, epoch, fingerprint, mode, .. } => {
                if *members as usize != self.members {
                    return AggregatorMsg::Reject {
                        reason: format!(
                            "worker believes in {members} member(s), aggregator in {}",
                            self.members
                        ),
                    };
                }
                if *fingerprint != self.fingerprint {
                    return AggregatorMsg::Reject {
                        reason: "spec fingerprint mismatch — workers and aggregator must run \
                                 the same campaign.cfg"
                            .into(),
                    };
                }
                if *mode != self.mode {
                    return AggregatorMsg::Reject { reason: "analysis mode mismatch".into() };
                }
                slot.max_epoch = slot.max_epoch.max(*epoch);
                AggregatorMsg::Welcome
            }
            WorkerMsg::Partial { epoch, seq, frame, .. } => {
                if decode_frame(frame).is_err() {
                    self.corrupt_frames.fetch_add(1, Ordering::Relaxed);
                    self.partials_rejected.fetch_add(1, Ordering::Relaxed);
                    return AggregatorMsg::Reject {
                        reason: "partial checkpoint frame failed CRC/decode".into(),
                    };
                }
                slot.max_epoch = slot.max_epoch.max(*epoch);
                if slot.gate.admit(*epoch, *seq) {
                    slot.partials += 1;
                    self.partials_accepted.fetch_add(1, Ordering::Relaxed);
                    AggregatorMsg::Ack { epoch: *epoch, seq: *seq, accepted: true }
                } else {
                    self.partials_rejected.fetch_add(1, Ordering::Relaxed);
                    AggregatorMsg::Ack { epoch: *epoch, seq: *seq, accepted: false }
                }
            }
            WorkerMsg::Heartbeat { epoch, .. } => {
                slot.max_epoch = slot.max_epoch.max(*epoch);
                AggregatorMsg::Ack { epoch: *epoch, seq: 0, accepted: true }
            }
            WorkerMsg::Done { epoch, seq, state, .. } => {
                slot.max_epoch = slot.max_epoch.max(*epoch);
                let admitted = slot.gate.admit(*epoch, *seq);
                if admitted && slot.done.is_none() {
                    slot.done = Some(state.clone());
                    // A delivered final state supersedes any failure
                    // verdict a deadline race may have written.
                    slot.failed = None;
                }
                // Done is idempotent under at-least-once delivery:
                // re-delivery after a lost ack reports success, so the
                // worker stops re-sending.
                AggregatorMsg::Ack { epoch: *epoch, seq: *seq, accepted: slot.done.is_some() }
            }
        }
    }
}

fn handle_worker(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(HANDLER_POLL));
    loop {
        if shared.done.load(Ordering::Relaxed) {
            return;
        }
        let frame = match read_frame(&mut stream) {
            Ok(frame) => frame,
            Err(ProtoError::Timeout) => continue,
            Err(_) => return,
        };
        let reply = match WorkerMsg::decode(&frame) {
            Ok(msg) => shared.apply(&msg),
            Err(_) => {
                shared.corrupt_frames.fetch_add(1, Ordering::Relaxed);
                shared.partials_rejected.fetch_add(1, Ordering::Relaxed);
                AggregatorMsg::Reject { reason: "frame failed CRC/decode".into() }
            }
        };
        if write_frame(&mut stream, &reply.encode()).is_err() {
            return;
        }
    }
}

/// The aggregator's complete result.
#[derive(Debug)]
pub struct FleetOutcome {
    /// The merged report (text, analysis bytes, health).
    pub merged: MergedFleet,
    /// Transport statistics.
    pub stats: AggregateStats,
}

/// The `psc aggregate` half: listens for worker connections, enforces
/// the liveness deadlines, and merges the survivors.
pub struct Aggregator {
    listener: TcpListener,
    spec: CampaignSpec,
    cfg: AggregatorConfig,
    members: usize,
}

impl Aggregator {
    /// Bind the listener and validate the spec.
    ///
    /// # Errors
    ///
    /// [`FleetError::Spec`] for specs that cannot run distributed;
    /// [`FleetError::Proto`] when the bind fails.
    pub fn bind(
        addr: impl ToSocketAddrs,
        spec: CampaignSpec,
        cfg: AggregatorConfig,
    ) -> Result<Self, FleetError> {
        let members = distributed_members(&spec)?;
        let listener = TcpListener::bind(addr).map_err(ProtoError::from)?;
        Ok(Self { listener, spec, cfg, members })
    }

    /// The bound address (for port-0 binds in tests).
    ///
    /// # Errors
    ///
    /// [`FleetError::Proto`] if the socket address cannot be read.
    pub fn local_addr(&self) -> Result<SocketAddr, FleetError> {
        Ok(self.listener.local_addr().map_err(ProtoError::from)?)
    }

    /// Accept workers until every member is terminal (done or
    /// demoted), then merge the survivors.
    ///
    /// # Errors
    ///
    /// [`FleetError::NoSurvivors`] when every member failed;
    /// [`FleetError::Checkpoint`] when a survivor's state fails to
    /// decode. Transport faults from workers never error this side —
    /// they are counted and refused per frame.
    ///
    /// # Panics
    ///
    /// Panics if the listener cannot be switched to non-blocking
    /// accept (an OS-level failure).
    pub fn run(self) -> Result<FleetOutcome, FleetError> {
        self.listener.set_nonblocking(true).expect("nonblocking listener");
        let shared = Arc::new(Shared {
            fingerprint: spec_fingerprint(&self.spec),
            members: self.members,
            mode: self.spec.mode,
            slots: Mutex::new((0..self.members).map(|_| MemberSlot::default()).collect()),
            partials_accepted: AtomicU64::new(0),
            partials_rejected: AtomicU64::new(0),
            corrupt_frames: AtomicU64::new(0),
            done: AtomicBool::new(false),
        });
        let start = Instant::now();
        let mut first_done: Option<Instant> = None;
        let mut handlers = Vec::new();
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(&shared);
                    handlers.push(std::thread::spawn(move || handle_worker(stream, &shared)));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(_) => {}
            }
            {
                let mut slots = shared.slots.lock().expect("fleet slots lock");
                if first_done.is_none() && slots.iter().any(|s| s.done.is_some()) {
                    first_done = Some(Instant::now());
                }
                for slot in slots.iter_mut().filter(|s| !s.terminal()) {
                    match slot.last_seen {
                        None if start.elapsed() > self.cfg.join_timeout => {
                            slot.failed = Some("never connected within the join deadline".into());
                        }
                        Some(seen) if seen.elapsed() > self.cfg.heartbeat_timeout => {
                            slot.failed = Some(format!(
                                "missed the {:?} heartbeat deadline ({} partial snapshot(s) \
                                 received before the silence)",
                                self.cfg.heartbeat_timeout, slot.partials
                            ));
                        }
                        _ => {
                            if let Some(done_at) = first_done {
                                if done_at.elapsed() > self.cfg.straggler_timeout {
                                    slot.failed = Some(format!(
                                        "straggled past the {:?} timeout",
                                        self.cfg.straggler_timeout
                                    ));
                                }
                            }
                        }
                    }
                }
                if slots.iter().all(MemberSlot::terminal) {
                    break;
                }
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        shared.done.store(true, Ordering::Relaxed);
        for handler in handlers {
            let _ = handler.join();
        }

        let slots = std::mem::take(&mut *shared.slots.lock().expect("fleet slots lock"));
        let reconnects: u64 = slots.iter().map(|s| s.max_epoch.saturating_sub(1)).sum();
        let outcomes: Vec<MemberOutcome> = slots
            .into_iter()
            .map(|slot| match slot.done {
                Some(state) => {
                    MemberOutcome::Completed { state, reconnects: slot.max_epoch.saturating_sub(1) }
                }
                None => MemberOutcome::Failed {
                    reason: slot.failed.unwrap_or_else(|| "no final state delivered".into()),
                },
            })
            .collect();
        let merged = merge_survivors(&self.spec, &outcomes)?;
        Ok(FleetOutcome {
            merged,
            stats: AggregateStats {
                partials_accepted: shared.partials_accepted.load(Ordering::Relaxed),
                partials_rejected: shared.partials_rejected.load(Ordering::Relaxed),
                corrupt_frames: shared.corrupt_frames.load(Ordering::Relaxed),
                reconnects,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_core::rig::Device;

    fn spec(mode: AnalysisMode) -> CampaignSpec {
        CampaignSpec {
            mode,
            device: Device::MacMiniM1,
            kernel: false,
            fleet: true,
            traces: 24,
            shards: 2,
            seed: 0x00D5_C0DE,
            key: *b"fleet-integratio",
            every: 4,
            tune: Default::default(),
            mitigation: None,
            record: None,
            monitor: None,
        }
    }

    #[test]
    fn worker_messages_round_trip() {
        let state = MemberFinal {
            analysis: vec![1, 2, 3],
            monitor: vec![4, 5],
            bus: ChannelStats { accepted: 7, dropped: 1, delivered: 7, high_water: 3 },
            io_errors: 2,
            io_retries: 5,
            health: ShardHealth::Degraded { reason: "lost a batch".into() },
        };
        let msgs = [
            WorkerMsg::Hello {
                member: 1,
                members: 2,
                epoch: 3,
                fingerprint: 0xDEAD_BEEF,
                mode: AnalysisMode::Cpa,
            },
            WorkerMsg::Partial { member: 0, epoch: 1, seq: 9, frame: vec![8; 64] },
            WorkerMsg::Heartbeat { member: 1, epoch: 2 },
            WorkerMsg::Done { member: 0, epoch: 2, seq: 44, state },
        ];
        for msg in msgs {
            assert_eq!(WorkerMsg::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn aggregator_messages_round_trip() {
        let msgs = [
            AggregatorMsg::Welcome,
            AggregatorMsg::Ack { epoch: 2, seq: 17, accepted: false },
            AggregatorMsg::Reject { reason: "spec fingerprint mismatch".into() },
        ];
        for msg in msgs {
            assert_eq!(AggregatorMsg::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn dedup_gate_admits_strictly_increasing_stamps() {
        let mut gate = DedupGate::default();
        assert!(gate.admit(1, 1));
        assert!(!gate.admit(1, 1), "exact duplicate refused");
        assert!(gate.admit(1, 2));
        assert!(!gate.admit(1, 1), "stale refused");
        assert!(gate.admit(2, 1), "epoch bump outranks any seq");
        assert!(!gate.admit(1, 99), "old epoch refused regardless of seq");
        assert_eq!(gate.last(), Some((2, 1)));
    }

    #[test]
    fn fingerprint_tracks_spec_content() {
        let a = spec(AnalysisMode::Tvla);
        let mut b = a.clone();
        assert_eq!(spec_fingerprint(&a), spec_fingerprint(&b));
        b.seed ^= 1;
        assert_ne!(spec_fingerprint(&a), spec_fingerprint(&b));
    }

    #[test]
    fn distributed_members_refuses_non_fleet_and_adaptive() {
        let mut s = spec(AnalysisMode::Tvla);
        assert_eq!(distributed_members(&s).unwrap(), 2);
        s.fleet = false;
        assert!(matches!(distributed_members(&s), Err(FleetError::Spec(_))));
        let s = spec(AnalysisMode::Adaptive);
        assert!(matches!(distributed_members(&s), Err(FleetError::Spec(_))));
    }

    #[test]
    fn merge_survivors_refuses_an_all_failed_fleet() {
        let s = spec(AnalysisMode::Tvla);
        let outcomes = vec![
            MemberOutcome::Failed { reason: "killed".into() },
            MemberOutcome::Failed { reason: "killed".into() },
        ];
        assert!(matches!(merge_survivors(&s, &outcomes), Err(FleetError::NoSurvivors)));
    }
}
