//! Property-based tests for the analysis toolkit.

use proptest::prelude::*;
use psc_sca::cpa::Cpa;
use psc_sca::model::{paper_models, Rd0Hw};
use psc_sca::rank::{guessing_entropy, log_checkpoints};
use psc_sca::stats::{pearson, welch_t, Correlation, RunningMoments};
use psc_sca::trace::{Trace, TraceSet};
use psc_sca::tvla::{TvlaMatrix, TvlaOutcome};

proptest! {
    #[test]
    fn welford_matches_two_pass(xs in proptest::collection::vec(-1.0e6f64..1.0e6, 2..200)) {
        let mut m = RunningMoments::new();
        m.extend(xs.iter().copied());
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((m.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        prop_assert!((m.variance() - var).abs() < 1e-5 * var.max(1.0));
    }

    #[test]
    fn merge_is_associative_enough(
        a in proptest::collection::vec(-100.0f64..100.0, 1..50),
        b in proptest::collection::vec(-100.0f64..100.0, 1..50),
        c in proptest::collection::vec(-100.0f64..100.0, 1..50),
    ) {
        let m = |xs: &Vec<f64>| {
            let mut m = RunningMoments::new();
            m.extend(xs.iter().copied());
            m
        };
        let left = m(&a).merged(m(&b)).merged(m(&c));
        let right = m(&a).merged(m(&b).merged(m(&c)));
        prop_assert_eq!(left.count(), right.count());
        prop_assert!((left.mean() - right.mean()).abs() < 1e-9);
        prop_assert!((left.variance() - right.variance()).abs() < 1e-7);
    }

    #[test]
    fn welch_t_scale_invariant(
        xs in proptest::collection::vec(-10.0f64..10.0, 4..60),
        ys in proptest::collection::vec(-10.0f64..10.0, 4..60),
        scale in 0.001f64..1000.0,
    ) {
        let t_of = |s: f64| {
            let mut a = RunningMoments::new();
            let mut b = RunningMoments::new();
            a.extend(xs.iter().map(|x| x * s));
            b.extend(ys.iter().map(|y| y * s));
            welch_t(&a, &b)
        };
        let t1 = t_of(1.0);
        let t2 = t_of(scale);
        prop_assert!((t1 - t2).abs() < 1e-6 * t1.abs().max(1.0), "{t1} vs {t2}");
    }

    #[test]
    fn pearson_bounded_and_symmetric(
        pairs in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 2..100),
    ) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let r = pearson(&xs, &ys);
        prop_assert!((-1.0..=1.0).contains(&r));
        prop_assert!((pearson(&ys, &xs) - r).abs() < 1e-12);
    }

    #[test]
    fn correlation_affine_invariance(
        pairs in proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 3..60),
        a in 0.1f64..10.0,
        b in -5.0f64..5.0,
    ) {
        let mut base = Correlation::new();
        let mut scaled = Correlation::new();
        for (h, t) in &pairs {
            base.push(*h, *t);
            scaled.push(*h, a * t + b);
        }
        prop_assert!((base.r() - scaled.r()).abs() < 1e-6);
    }

    #[test]
    fn hypotheses_depend_only_on_input_byte(
        pt in any::<[u8; 16]>(),
        ct in any::<[u8; 16]>(),
        byte_index in 0usize..16,
        guess in any::<u8>(),
    ) {
        for model in paper_models() {
            let direct = model.hypothesis(&pt, &ct, byte_index, guess);
            let via_input =
                model.hypothesis_value(model.input_byte(&pt, &ct, byte_index), guess);
            prop_assert_eq!(direct, via_input, "{}", model.name());
        }
    }

    #[test]
    fn cpa_ranks_always_valid(
        traces in proptest::collection::vec((any::<[u8; 16]>(), any::<[u8; 16]>(), -5.0f64..5.0), 2..80),
        key in any::<[u8; 16]>(),
    ) {
        let set: TraceSet = traces
            .iter()
            .map(|(pt, ct, v)| Trace { value: *v, plaintext: *pt, ciphertext: *ct })
            .collect();
        let mut cpa = Cpa::new(Box::new(Rd0Hw));
        cpa.add_set(&set);
        let ranks = cpa.ranks(&key);
        for r in ranks {
            prop_assert!((1..=256).contains(&r));
        }
        let ge = guessing_entropy(&ranks);
        prop_assert!((0.0..=128.0).contains(&ge));
    }

    #[test]
    fn ranked_guesses_is_permutation(
        traces in proptest::collection::vec((any::<[u8; 16]>(), -5.0f64..5.0), 2..40),
    ) {
        let set: TraceSet = traces
            .iter()
            .map(|(pt, v)| Trace { value: *v, plaintext: *pt, ciphertext: [0; 16] })
            .collect();
        let mut cpa = Cpa::new(Box::new(Rd0Hw));
        cpa.add_set(&set);
        let mut guesses = cpa.ranked_guesses(0);
        guesses.sort_unstable();
        let expected: Vec<u8> = (0..=255).collect();
        prop_assert_eq!(guesses, expected);
    }

    #[test]
    fn tvla_same_distribution_rarely_distinguishable(
        seed in any::<u32>(),
    ) {
        // Deterministic LCG samples from ONE distribution for all six sets.
        let mut state = u64::from(seed) | 1;
        let mut sample = |n: usize| -> Vec<f64> {
            (0..n)
                .map(|_| {
                    state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                    ((state >> 33) as f64 / f64::from(1u32 << 30)) - 4.0
                })
                .collect()
        };
        let first = [sample(800), sample(800), sample(800)];
        let second = [sample(800), sample(800), sample(800)];
        let m = TvlaMatrix::compute("null", &first, &second);
        // With no real effect, true positives are impossible by construction
        // of the ground truth, and false positives should be rare. Allow a
        // couple to avoid flakiness, but the diagonal of a same-distribution
        // channel must never produce 9/9 distinguishable cells.
        let counts = m.outcome_counts();
        prop_assert!(counts.false_positive + counts.true_positive < 9);
        prop_assert_eq!(counts.true_positive + counts.false_negative, 6, "6 off-diagonal cells");
    }

    #[test]
    fn tvla_outcome_classification_consistent(t in -50.0f64..50.0, diff in any::<bool>()) {
        let outcome = TvlaOutcome::classify(t, diff);
        let distinguishable = t.abs() >= 4.5;
        prop_assert_eq!(
            matches!(outcome, TvlaOutcome::TruePositive | TvlaOutcome::FalsePositive),
            distinguishable
        );
        prop_assert_eq!(
            matches!(outcome, TvlaOutcome::TruePositive | TvlaOutcome::FalseNegative),
            diff
        );
    }

    #[test]
    fn log_checkpoints_strictly_increasing(
        min in 1usize..1000,
        span in 2usize..1000,
        per_decade in 1usize..10,
    ) {
        let cps = log_checkpoints(min, min + span, per_decade);
        for w in cps.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        prop_assert_eq!(*cps.first().unwrap(), min);
        prop_assert_eq!(*cps.last().unwrap(), min + span);
    }

    #[test]
    fn trace_set_prefix_is_prefix(
        values in proptest::collection::vec(-10.0f64..10.0, 0..50),
        n in 0usize..60,
    ) {
        let set: TraceSet = values
            .iter()
            .map(|&v| Trace { value: v, plaintext: [0; 16], ciphertext: [0; 16] })
            .collect();
        let p = set.prefix(n);
        prop_assert_eq!(p.len(), n.min(set.len()));
        let p_values = p.values();
        let set_values = set.values();
        prop_assert_eq!(&p_values[..], &set_values[..p.len()]);
    }
}

mod simd_props {
    use proptest::prelude::*;
    use psc_sca::cpa::Cpa;
    use psc_sca::model::Rd0Hw;
    use psc_sca::stats::{welch_t, welch_t_x4, welch_t_x4_scalar, MomentsQuad, RunningMoments};
    use psc_sca::trace::Trace;
    use psc_sca::tvla::welch_t_matrix;

    proptest! {
        // Kernel 1 (CPA correlation sweep): the runtime-dispatched vector
        // path must be bit-identical to the scalar backend for arbitrary
        // accumulator states at every unroll width — including the
        // degenerate guards (no traces → n < 2; constant values →
        // var_t <= 0, where the sweep must zero the output).
        #[test]
        fn cpa_correlations_simd_matches_scalar_bitwise(
            traces in proptest::collection::vec((any::<[u8; 16]>(), -5.0f64..5.0), 0..60),
            constant in any::<bool>(),
            unroll_idx in 0usize..3,
        ) {
            let mut cpa = Cpa::new(Box::new(Rd0Hw));
            for (pt, v) in &traces {
                let value = if constant { 1.25 } else { *v };
                cpa.add_trace(&Trace { value, plaintext: *pt, ciphertext: [0; 16] });
            }
            cpa.set_unroll(Cpa::UNROLL_WIDTHS[unroll_idx]);
            let mut simd = [[0.0f64; 256]; 16];
            let mut scalar = [[1.0f64; 256]; 16];
            cpa.correlations_all_into(&mut simd);
            cpa.correlations_all_into_scalar(&mut scalar);
            for (simd_row, scalar_row) in simd.iter().zip(&scalar) {
                for (a, b) in simd_row.iter().zip(scalar_row) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            // The per-byte entry point runs the same chains.
            let mut one = [0.0f64; 256];
            cpa.correlations_into(0, &mut one);
            for (a, b) in one.iter().zip(&simd[0]) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        // Kernel 2a (TVLA column ingestion): the masked 4-lane Welford
        // update must be bit-identical to four independent scalar
        // accumulators for arbitrary present/denied (None) patterns.
        #[test]
        fn moments_quad_simd_matches_scalar_bitwise(
            rows in proptest::collection::vec(
                (any::<u8>(), (-100.0f64..100.0), (-100.0f64..100.0)),
                0..80,
            ),
        ) {
            // Lane i of row r is present iff mask bit i is set; denied
            // reads are None.
            let cell = |r: &(u8, f64, f64), i: usize| {
                (r.0 & (1 << i) != 0).then_some(r.1 + r.2 * i as f64)
            };
            let cols: [Vec<Option<f64>>; 4] =
                core::array::from_fn(|i| rows.iter().map(|r| cell(r, i)).collect());
            let col_refs: [&[Option<f64>]; 4] = core::array::from_fn(|i| cols[i].as_slice());
            let fresh = || core::array::from_fn(|_| RunningMoments::new());
            let mut simd = MomentsQuad::load(fresh());
            simd.extend_columns(col_refs);
            let mut scalar = MomentsQuad::load(fresh());
            scalar.extend_columns_scalar(col_refs);
            let mut independent: [RunningMoments; 4] = fresh();
            for (lane, col) in independent.iter_mut().zip(&cols) {
                lane.extend(col.iter().copied().flatten());
            }
            for ((a, b), c) in simd.store().iter().zip(&scalar.store()).zip(&independent) {
                prop_assert_eq!(a.raw().0, c.raw().0);
                prop_assert_eq!(a.raw().1.to_bits(), c.raw().1.to_bits());
                prop_assert_eq!(a.raw().2.to_bits(), c.raw().2.to_bits());
                prop_assert_eq!(a.raw().0, b.raw().0);
                prop_assert_eq!(a.raw().1.to_bits(), b.raw().1.to_bits());
                prop_assert_eq!(a.raw().2.to_bits(), b.raw().2.to_bits());
            }
        }

        // Kernel 2b (Welch-t column sweep): the 4-lane t statistic must
        // match the scalar formula bit for bit on finite accumulators,
        // degenerate lanes included (n = 0, n = 1, zero variance → 0.0).
        #[test]
        fn welch_t_x4_simd_matches_scalar_bitwise(
            lanes in proptest::collection::vec(
                (0usize..6, 0usize..6, -10.0f64..10.0, any::<bool>()),
                4,
            ),
        ) {
            let moments = |n: usize, base: f64, constant: bool| {
                let mut m = RunningMoments::new();
                for i in 0..n {
                    m.push(if constant { base } else { base + i as f64 * 0.37 });
                }
                m
            };
            let a: [RunningMoments; 4] =
                core::array::from_fn(|i| moments(lanes[i].0, lanes[i].2, lanes[i].3));
            let b: [RunningMoments; 4] =
                core::array::from_fn(|i| moments(lanes[i].1, -lanes[i].2, lanes[i].3));
            let vector = welch_t_x4(&a, &b);
            let scalar = welch_t_x4_scalar(&a, &b);
            for lane in 0..4 {
                prop_assert_eq!(vector[lane].to_bits(), scalar[lane].to_bits());
                prop_assert_eq!(vector[lane].to_bits(), welch_t(&a[lane], &b[lane]).to_bits());
            }
        }

        // Kernel 2c (3×3 matrix sweep): the fully vectorized nine-cell sweep
        // — three x4 evaluations, the last broadcasting the ninth cell — is
        // bit-identical to nine scalar `welch_t` calls, degenerate
        // accumulators included.
        #[test]
        fn welch_t_matrix_matches_nine_scalar_calls_bitwise(
            cells in proptest::collection::vec(
                (0usize..6, -10.0f64..10.0, any::<bool>()),
                6,
            ),
        ) {
            let moments = |n: usize, base: f64, constant: bool| {
                let mut m = RunningMoments::new();
                for i in 0..n {
                    m.push(if constant { base } else { base + i as f64 * 0.37 });
                }
                m
            };
            let second: [RunningMoments; 3] =
                core::array::from_fn(|i| moments(cells[i].0, cells[i].1, cells[i].2));
            let first: [RunningMoments; 3] =
                core::array::from_fn(|i| moments(cells[i + 3].0, cells[i + 3].1, cells[i + 3].2));
            let swept = welch_t_matrix(&second, &first);
            for (cell, t) in swept.iter().enumerate() {
                let scalar = welch_t(&second[cell / 3], &first[cell % 3]);
                prop_assert_eq!(t.to_bits(), scalar.to_bits());
            }
        }
    }
}

mod checkpoint_props {
    use proptest::prelude::*;
    use psc_sca::checkpoint::{
        decode_frame, encode_frame, get_cpa_state, get_tracker, get_tvla_accumulator,
        put_cpa_state, put_tracker, put_tvla_accumulator, PayloadReader, PayloadWriter, Section,
        CPA_BINS,
    };
    use psc_sca::cpa::CpaState;
    use psc_sca::tvla::{PlaintextClass, TvlaAccumulator, TvlaTracker};

    fn arb_sections() -> impl Strategy<Value = Vec<Section>> {
        proptest::collection::vec(
            (any::<u16>(), proptest::collection::vec(any::<u8>(), 0..96))
                .prop_map(|(tag, payload)| Section { tag, payload }),
            0..6,
        )
    }

    proptest! {
        #[test]
        fn frame_round_trips_bit_identically(sections in arb_sections()) {
            let bytes = encode_frame(&sections);
            prop_assert_eq!(decode_frame(&bytes).unwrap(), sections);
        }

        #[test]
        fn truncation_never_panics_and_always_errs(sections in arb_sections(), frac in 0.0f64..1.0) {
            let bytes = encode_frame(&sections);
            let cut = ((bytes.len() as f64) * frac) as usize;
            prop_assert!(decode_frame(&bytes[..cut.min(bytes.len() - 1)]).is_err());
        }

        #[test]
        fn byte_flips_never_panic_and_always_err(
            sections in arb_sections(),
            idx in any::<usize>(),
            bit in 0u8..8,
        ) {
            let mut bytes = encode_frame(&sections);
            let i = idx % bytes.len();
            bytes[i] ^= 1 << bit;
            prop_assert!(decode_frame(&bytes).is_err());
        }

        #[test]
        fn arbitrary_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = decode_frame(&bytes);
        }

        #[test]
        fn tvla_accumulator_round_trips_bit_identically(
            samples in proptest::collection::vec((0usize..2, 0usize..3, -50.0f64..50.0), 0..120),
        ) {
            let mut acc = TvlaAccumulator::new();
            for &(pass, class, v) in &samples {
                acc.push(pass, PlaintextClass::ALL[class], v);
            }
            let mut w = PayloadWriter::new();
            put_tvla_accumulator(&mut w, &acc);
            let section = w.into_section(3);
            let mut r = PayloadReader::new(&section.payload);
            let back = get_tvla_accumulator(&mut r).unwrap();
            r.finish().unwrap();
            let ours = acc.raw();
            let theirs = back.raw();
            for (a, b) in ours.iter().flatten().zip(theirs.iter().flatten()) {
                let (an, am, a2) = a.raw();
                let (bn, bm, b2) = b.raw();
                prop_assert_eq!(an, bn);
                prop_assert_eq!(am.to_bits(), bm.to_bits());
                prop_assert_eq!(a2.to_bits(), b2.to_bits());
            }
        }

        #[test]
        fn tracker_round_trips_bit_identically(
            xs in proptest::collection::vec(-10.0f64..10.0, 0..40),
            ys in proptest::collection::vec(-10.0f64..10.0, 0..40),
        ) {
            let mut tracker = TvlaTracker::new();
            for &x in &xs { tracker.push_a(x); }
            for &y in &ys { tracker.push_b(y); }
            let mut w = PayloadWriter::new();
            put_tracker(&mut w, &tracker);
            let section = w.into_section(4);
            let mut r = PayloadReader::new(&section.payload);
            let back = get_tracker(&mut r).unwrap();
            r.finish().unwrap();
            let (a1, b1) = tracker.raw();
            let (a2, b2) = back.raw();
            prop_assert_eq!(a1.raw().0, a2.raw().0);
            prop_assert_eq!(a1.raw().1.to_bits(), a2.raw().1.to_bits());
            prop_assert_eq!(b1.raw().2.to_bits(), b2.raw().2.to_bits());
        }

        #[test]
        fn cpa_state_round_trips_and_rejects_truncation(
            seed in any::<u64>(),
            n in 0u64..10_000,
        ) {
            let mut x = seed | 1;
            let mut next = move || {
                // xorshift64* — cheap deterministic bin filler.
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                x.wrapping_mul(0x2545_F491_4F6C_DD1D)
            };
            let state = CpaState {
                model_name: "Rd10-HD".into(),
                bins: (0..CPA_BINS)
                    .map(|_| (next() % 1024, (next() % 2048) as f64 / 7.0 - 100.0))
                    .collect(),
                n,
                sum_t: (next() % 4096) as f64 / 3.0,
                sum_tt: (next() % 4096) as f64 * 11.0,
            };
            let mut w = PayloadWriter::new();
            put_cpa_state(&mut w, &state);
            let section = w.into_section(5);
            let mut r = PayloadReader::new(&section.payload);
            let back = get_cpa_state(&mut r).unwrap();
            r.finish().unwrap();
            prop_assert_eq!(back, state);
            // Any truncated prefix must decode to a clean error.
            let cut = section.payload.len() / 2;
            let mut r = PayloadReader::new(&section.payload[..cut]);
            prop_assert!(get_cpa_state(&mut r).is_err());
        }
    }
}
