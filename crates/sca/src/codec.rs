//! Compact binary persistence for trace sets.
//!
//! Million-trace campaigns are expensive to collect; attackers (and
//! evaluators) store them and re-analyze offline. This is a small,
//! versioned, dependency-light binary format:
//!
//! ```text
//! magic "PSCT" | version u16 | label len u16 | label bytes
//! | trace count u64 | per trace: value f64 | pt [16] | ct [16]
//! ```
//!
//! All integers little-endian. Readers reject bad magic, unknown versions
//! and truncated payloads.

use crate::trace::{Trace, TraceSet};
use bytes::{Buf, BufMut, BytesMut};
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"PSCT";
const VERSION: u16 = 1;

/// Errors from [`read_trace_set`].
#[derive(Debug)]
pub enum CodecError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Magic bytes did not match.
    BadMagic,
    /// Unsupported format version.
    UnsupportedVersion(u16),
    /// The payload ended early or contained invalid lengths.
    Truncated,
    /// Label bytes were not UTF-8.
    BadLabel,
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "i/o error: {e}"),
            CodecError::BadMagic => write!(f, "not a PSCT trace file"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported trace format version {v}"),
            CodecError::Truncated => write!(f, "truncated trace payload"),
            CodecError::BadLabel => write!(f, "label is not valid UTF-8"),
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> Self {
        CodecError::Io(e)
    }
}

/// Serialize a trace set to a writer (pass `&mut file` for files).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_trace_set<W: Write>(set: &TraceSet, mut writer: W) -> Result<(), CodecError> {
    let label = set.label.as_bytes();
    let mut header = BytesMut::with_capacity(4 + 2 + 2 + label.len() + 8);
    header.put_slice(MAGIC);
    header.put_u16_le(VERSION);
    header.put_u16_le(label.len().min(u16::MAX as usize) as u16);
    header.put_slice(&label[..label.len().min(u16::MAX as usize)]);
    header.put_u64_le(set.len() as u64);
    writer.write_all(&header)?;

    let mut buf = BytesMut::with_capacity(40 * 1024);
    for t in set.iter() {
        buf.put_f64_le(t.value);
        buf.put_slice(&t.plaintext);
        buf.put_slice(&t.ciphertext);
        if buf.len() >= 32 * 1024 {
            writer.write_all(&buf)?;
            buf.clear();
        }
    }
    writer.write_all(&buf)?;
    Ok(())
}

/// Deserialize a trace set from a reader.
///
/// # Errors
///
/// See [`CodecError`] for the failure modes.
pub fn read_trace_set<R: Read>(mut reader: R) -> Result<TraceSet, CodecError> {
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw)?;
    let mut buf = &raw[..];

    if buf.remaining() < 8 {
        return Err(CodecError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let label_len = buf.get_u16_le() as usize;
    if buf.remaining() < label_len + 8 {
        return Err(CodecError::Truncated);
    }
    let label =
        core::str::from_utf8(&buf[..label_len]).map_err(|_| CodecError::BadLabel)?.to_owned();
    buf.advance(label_len);
    let count = buf.get_u64_le() as usize;
    if buf.remaining() != count * 40 {
        return Err(CodecError::Truncated);
    }

    let mut set = TraceSet::with_capacity(label, count);
    for _ in 0..count {
        let value = buf.get_f64_le();
        let mut plaintext = [0u8; 16];
        buf.copy_to_slice(&mut plaintext);
        let mut ciphertext = [0u8; 16];
        buf.copy_to_slice(&mut ciphertext);
        set.push(Trace { value, plaintext, ciphertext });
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set(n: usize) -> TraceSet {
        let mut set = TraceSet::new("PHPC");
        for i in 0..n {
            set.push(Trace {
                value: i as f64 * 0.125 - 3.0,
                plaintext: core::array::from_fn(|b| (i + b) as u8),
                ciphertext: core::array::from_fn(|b| (i * 7 + b) as u8),
            });
        }
        set
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let set = sample_set(257);
        let mut bytes = Vec::new();
        write_trace_set(&set, &mut bytes).unwrap();
        let back = read_trace_set(&bytes[..]).unwrap();
        assert_eq!(back, set);
        assert_eq!(back.label, "PHPC");
    }

    #[test]
    fn empty_set_roundtrips() {
        let set = TraceSet::new("empty");
        let mut bytes = Vec::new();
        write_trace_set(&set, &mut bytes).unwrap();
        let back = read_trace_set(&bytes[..]).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.label, "empty");
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = Vec::new();
        write_trace_set(&sample_set(3), &mut bytes).unwrap();
        bytes[0] = b'X';
        assert!(matches!(read_trace_set(&bytes[..]), Err(CodecError::BadMagic)));
    }

    #[test]
    fn rejects_unknown_version() {
        let mut bytes = Vec::new();
        write_trace_set(&sample_set(3), &mut bytes).unwrap();
        bytes[4] = 99;
        assert!(matches!(read_trace_set(&bytes[..]), Err(CodecError::UnsupportedVersion(99))));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let mut bytes = Vec::new();
        write_trace_set(&sample_set(5), &mut bytes).unwrap();
        for cut in [1usize, 7, 9, bytes.len() - 1] {
            let r = read_trace_set(&bytes[..cut]);
            assert!(
                matches!(r, Err(CodecError::Truncated) | Err(CodecError::BadMagic)),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = Vec::new();
        write_trace_set(&sample_set(2), &mut bytes).unwrap();
        bytes.extend_from_slice(&[0u8; 8]);
        assert!(matches!(read_trace_set(&bytes[..]), Err(CodecError::Truncated)));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("psc_codec_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("traces.psct");
        let set = sample_set(100);
        write_trace_set(&set, std::fs::File::create(&path).unwrap()).unwrap();
        let back = read_trace_set(std::fs::File::open(&path).unwrap()).unwrap();
        assert_eq!(back, set);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn error_display() {
        assert!(CodecError::BadMagic.to_string().contains("PSCT"));
        assert!(CodecError::UnsupportedVersion(7).to_string().contains('7'));
    }
}
