//! Compact binary persistence for trace sets.
//!
//! Million-trace campaigns are expensive to collect; attackers (and
//! evaluators) store them and re-analyze offline. This is a small,
//! versioned, dependency-light binary format:
//!
//! ```text
//! magic "PSCT" | version u16 | label len u16 | label bytes
//! | trace count u64 | per trace: value f64 | pt [16] | ct [16]
//! ```
//!
//! Version 2 appends two label bytes per trace — the TVLA pass and the
//! plaintext class (`0xFF` = unclassed, i.e. a known-plaintext CPA
//! window) — so recorded campaigns replay with their full TVLA structure
//! intact. All integers little-endian. Readers accept both versions
//! ([`read_trace_set`] drops the labels, [`read_recording`] keeps them)
//! and reject bad magic, unknown versions and truncated payloads.

use crate::trace::{Trace, TraceSet};
use crate::tvla::PlaintextClass;
use bytes::{Buf, BufMut, BytesMut};
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"PSCT";
const VERSION: u16 = 1;
const VERSION_LABELED: u16 = 2;
/// Per-trace byte width of the two formats.
const V1_TRACE_BYTES: usize = 40;
const V2_TRACE_BYTES: usize = 42;
/// Wire value of a `None` class byte.
const CLASS_NONE: u8 = 0xFF;

/// Errors from [`read_trace_set`].
#[derive(Debug)]
pub enum CodecError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Magic bytes did not match.
    BadMagic,
    /// Unsupported format version.
    UnsupportedVersion(u16),
    /// The payload ended early or contained invalid lengths.
    Truncated,
    /// Label bytes were not UTF-8.
    BadLabel,
    /// A version-2 class byte was not a valid [`PlaintextClass`] code.
    BadClass(u8),
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "i/o error: {e}"),
            CodecError::BadMagic => write!(f, "not a PSCT trace file"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported trace format version {v}"),
            CodecError::Truncated => write!(f, "truncated trace payload"),
            CodecError::BadLabel => write!(f, "label is not valid UTF-8"),
            CodecError::BadClass(c) => write!(f, "invalid plaintext-class byte {c:#04x}"),
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> Self {
        CodecError::Io(e)
    }
}

/// Serialize a trace set to a writer (pass `&mut file` for files).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_trace_set<W: Write>(set: &TraceSet, mut writer: W) -> Result<(), CodecError> {
    let label = set.label.as_bytes();
    let mut header = BytesMut::with_capacity(4 + 2 + 2 + label.len() + 8);
    header.put_slice(MAGIC);
    header.put_u16_le(VERSION);
    header.put_u16_le(label.len().min(u16::MAX as usize) as u16);
    header.put_slice(&label[..label.len().min(u16::MAX as usize)]);
    header.put_u64_le(set.len() as u64);
    writer.write_all(&header)?;

    let mut buf = BytesMut::with_capacity(40 * 1024);
    for t in set.iter() {
        buf.put_f64_le(t.value);
        buf.put_slice(&t.plaintext);
        buf.put_slice(&t.ciphertext);
        if buf.len() >= 32 * 1024 {
            writer.write_all(&buf)?;
            buf.clear();
        }
    }
    writer.write_all(&buf)?;
    Ok(())
}

/// One recorded trace with its TVLA labels (version-2 payload unit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabeledTrace {
    /// The observation itself.
    pub trace: Trace,
    /// TVLA pass (0 = unprimed, 1 = primed; 0 for CPA collection).
    pub pass: u8,
    /// TVLA plaintext class; `None` for known-plaintext CPA windows.
    pub class: Option<PlaintextClass>,
}

/// A labelled, fully replayable recording of one channel's campaign
/// slice — what [`read_recording`] returns.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Recording {
    /// Channel label (e.g. the SMC key name, or `PCPU`).
    pub label: String,
    /// Traces in collection order, with their TVLA labels.
    pub traces: Vec<LabeledTrace>,
}

impl Recording {
    /// Drop the labels, keeping the plain trace set (offline CPA shape).
    #[must_use]
    pub fn into_trace_set(self) -> TraceSet {
        let mut set = TraceSet::with_capacity(self.label, self.traces.len());
        for t in self.traces {
            set.push(t.trace);
        }
        set
    }
}

/// Serialize a labeled recording (version-2 format: per-trace TVLA pass
/// and plaintext class survive the round trip, so replayed campaigns
/// rebuild identical TVLA matrices).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_recording<W: Write>(
    label: &str,
    traces: &[LabeledTrace],
    mut writer: W,
) -> Result<(), CodecError> {
    let label = label.as_bytes();
    let mut header = BytesMut::with_capacity(4 + 2 + 2 + label.len() + 8);
    header.put_slice(MAGIC);
    header.put_u16_le(VERSION_LABELED);
    header.put_u16_le(label.len().min(u16::MAX as usize) as u16);
    header.put_slice(&label[..label.len().min(u16::MAX as usize)]);
    header.put_u64_le(traces.len() as u64);
    writer.write_all(&header)?;

    let mut buf = BytesMut::with_capacity(V2_TRACE_BYTES * 1024);
    for t in traces {
        buf.put_f64_le(t.trace.value);
        buf.put_slice(&t.trace.plaintext);
        buf.put_slice(&t.trace.ciphertext);
        buf.put_u8(t.pass);
        buf.put_u8(t.class.map_or(CLASS_NONE, |c| c.index() as u8));
        if buf.len() >= 32 * 1024 {
            writer.write_all(&buf)?;
            buf.clear();
        }
    }
    writer.write_all(&buf)?;
    Ok(())
}

/// Parsed header: label plus trace count, with `buf` advanced to the
/// first trace record.
fn read_header(buf: &mut &[u8]) -> Result<(String, usize, u16), CodecError> {
    if buf.remaining() < 8 {
        return Err(CodecError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = buf.get_u16_le();
    if version != VERSION && version != VERSION_LABELED {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let label_len = buf.get_u16_le() as usize;
    if buf.remaining() < label_len + 8 {
        return Err(CodecError::Truncated);
    }
    let label =
        core::str::from_utf8(&buf[..label_len]).map_err(|_| CodecError::BadLabel)?.to_owned();
    buf.advance(label_len);
    let count = buf.get_u64_le() as usize;
    let trace_bytes = if version == VERSION { V1_TRACE_BYTES } else { V2_TRACE_BYTES };
    if buf.remaining() != count * trace_bytes {
        return Err(CodecError::Truncated);
    }
    Ok((label, count, version))
}

fn read_one(buf: &mut &[u8], version: u16) -> Result<LabeledTrace, CodecError> {
    let value = buf.get_f64_le();
    let mut plaintext = [0u8; 16];
    buf.copy_to_slice(&mut plaintext);
    let mut ciphertext = [0u8; 16];
    buf.copy_to_slice(&mut ciphertext);
    let (pass, class) = if version == VERSION_LABELED {
        let pass = buf.get_u8();
        let class = match buf.get_u8() {
            CLASS_NONE => None,
            idx => Some(*PlaintextClass::ALL.get(idx as usize).ok_or(CodecError::BadClass(idx))?),
        };
        (pass, class)
    } else {
        (0, None)
    };
    Ok(LabeledTrace { trace: Trace { value, plaintext, ciphertext }, pass, class })
}

/// Deserialize a trace set from a reader. Accepts both format versions;
/// version-2 TVLA labels are dropped (use [`read_recording`] to keep
/// them).
///
/// # Errors
///
/// See [`CodecError`] for the failure modes.
pub fn read_trace_set<R: Read>(mut reader: R) -> Result<TraceSet, CodecError> {
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw)?;
    let mut buf = &raw[..];
    let (label, count, version) = read_header(&mut buf)?;
    let mut set = TraceSet::with_capacity(label, count);
    for _ in 0..count {
        set.push(read_one(&mut buf, version)?.trace);
    }
    Ok(set)
}

/// Read only the channel label from a trace-file header (the cheap probe
/// replay front ends use to discover which channels a directory of
/// recordings holds — no payload is read).
///
/// # Errors
///
/// See [`CodecError`] for the failure modes.
pub fn read_label<R: Read>(mut reader: R) -> Result<String, CodecError> {
    let eof_is_truncation = |e: std::io::Error| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            CodecError::Truncated
        } else {
            CodecError::Io(e)
        }
    };
    let mut head = [0u8; 8];
    reader.read_exact(&mut head).map_err(eof_is_truncation)?;
    if &head[..4] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = u16::from_le_bytes([head[4], head[5]]);
    if version != VERSION && version != VERSION_LABELED {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let mut label = vec![0u8; u16::from_le_bytes([head[6], head[7]]) as usize];
    reader.read_exact(&mut label).map_err(eof_is_truncation)?;
    String::from_utf8(label).map_err(|_| CodecError::BadLabel)
}

/// Deserialize a recording, keeping the per-trace TVLA labels. Version-1
/// files read back with `pass = 0`, `class = None`.
///
/// # Errors
///
/// See [`CodecError`] for the failure modes.
pub fn read_recording<R: Read>(mut reader: R) -> Result<Recording, CodecError> {
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw)?;
    let mut buf = &raw[..];
    let (label, count, version) = read_header(&mut buf)?;
    let mut traces = Vec::with_capacity(count);
    for _ in 0..count {
        traces.push(read_one(&mut buf, version)?);
    }
    Ok(Recording { label, traces })
}

/// Incremental reader over one recording: the header is parsed eagerly,
/// then traces stream out in caller-sized chunks — memory stays
/// O(chunk), not O(file), so a single worker can replay million-trace
/// shard files. Accepts both format versions like [`read_recording`],
/// applies the same validation (bad magic/version/label/class bytes,
/// truncation, trailing garbage), and yields the exact same
/// [`LabeledTrace`] sequence.
#[derive(Debug)]
pub struct RecordingReader<R: Read> {
    reader: R,
    label: String,
    version: u16,
    remaining: u64,
    end_checked: bool,
    buf: Vec<u8>,
}

impl<R: Read> RecordingReader<R> {
    /// Parse the header, leaving the reader at the first trace record.
    ///
    /// # Errors
    ///
    /// See [`CodecError`] for the failure modes.
    pub fn new(mut reader: R) -> Result<Self, CodecError> {
        let eof_is_truncation = |e: std::io::Error| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                CodecError::Truncated
            } else {
                CodecError::Io(e)
            }
        };
        let mut head = [0u8; 8];
        reader.read_exact(&mut head).map_err(eof_is_truncation)?;
        if &head[..4] != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = u16::from_le_bytes([head[4], head[5]]);
        if version != VERSION && version != VERSION_LABELED {
            return Err(CodecError::UnsupportedVersion(version));
        }
        let mut label = vec![0u8; u16::from_le_bytes([head[6], head[7]]) as usize];
        reader.read_exact(&mut label).map_err(eof_is_truncation)?;
        let label = String::from_utf8(label).map_err(|_| CodecError::BadLabel)?;
        let mut count = [0u8; 8];
        reader.read_exact(&mut count).map_err(eof_is_truncation)?;
        let remaining = u64::from_le_bytes(count);
        Ok(Self { reader, label, version, remaining, end_checked: false, buf: Vec::new() })
    }

    /// The recording's channel label.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Traces not yet read.
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Read up to `max` traces into `out` (cleared first). Returns the
    /// number read; `0` means the recording is exhausted. The final call
    /// also verifies the payload ends exactly at the declared count
    /// (trailing bytes are [`CodecError::Truncated`], matching the
    /// whole-file readers).
    ///
    /// # Errors
    ///
    /// See [`CodecError`] for the failure modes.
    pub fn read_chunk(
        &mut self,
        max: usize,
        out: &mut Vec<LabeledTrace>,
    ) -> Result<usize, CodecError> {
        out.clear();
        let take = usize::try_from(self.remaining).unwrap_or(usize::MAX).min(max.max(1));
        if self.remaining == 0 {
            if !self.end_checked {
                self.end_checked = true;
                if self.reader.read(&mut [0u8; 1])? != 0 {
                    return Err(CodecError::Truncated);
                }
            }
            return Ok(0);
        }
        let trace_bytes = if self.version == VERSION { V1_TRACE_BYTES } else { V2_TRACE_BYTES };
        self.buf.resize(take * trace_bytes, 0);
        self.reader.read_exact(&mut self.buf).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                CodecError::Truncated
            } else {
                CodecError::Io(e)
            }
        })?;
        let mut slice = &self.buf[..];
        out.reserve(take);
        for _ in 0..take {
            out.push(read_one(&mut slice, self.version)?);
        }
        self.remaining -= take as u64;
        Ok(take)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set(n: usize) -> TraceSet {
        let mut set = TraceSet::new("PHPC");
        for i in 0..n {
            set.push(Trace {
                value: i as f64 * 0.125 - 3.0,
                plaintext: core::array::from_fn(|b| (i + b) as u8),
                ciphertext: core::array::from_fn(|b| (i * 7 + b) as u8),
            });
        }
        set
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let set = sample_set(257);
        let mut bytes = Vec::new();
        write_trace_set(&set, &mut bytes).unwrap();
        let back = read_trace_set(&bytes[..]).unwrap();
        assert_eq!(back, set);
        assert_eq!(back.label, "PHPC");
    }

    #[test]
    fn empty_set_roundtrips() {
        let set = TraceSet::new("empty");
        let mut bytes = Vec::new();
        write_trace_set(&set, &mut bytes).unwrap();
        let back = read_trace_set(&bytes[..]).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.label, "empty");
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = Vec::new();
        write_trace_set(&sample_set(3), &mut bytes).unwrap();
        bytes[0] = b'X';
        assert!(matches!(read_trace_set(&bytes[..]), Err(CodecError::BadMagic)));
    }

    #[test]
    fn rejects_unknown_version() {
        let mut bytes = Vec::new();
        write_trace_set(&sample_set(3), &mut bytes).unwrap();
        bytes[4] = 99;
        assert!(matches!(read_trace_set(&bytes[..]), Err(CodecError::UnsupportedVersion(99))));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let mut bytes = Vec::new();
        write_trace_set(&sample_set(5), &mut bytes).unwrap();
        for cut in [1usize, 7, 9, bytes.len() - 1] {
            let r = read_trace_set(&bytes[..cut]);
            assert!(
                matches!(r, Err(CodecError::Truncated) | Err(CodecError::BadMagic)),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = Vec::new();
        write_trace_set(&sample_set(2), &mut bytes).unwrap();
        bytes.extend_from_slice(&[0u8; 8]);
        assert!(matches!(read_trace_set(&bytes[..]), Err(CodecError::Truncated)));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("psc_codec_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("traces.psct");
        let set = sample_set(100);
        write_trace_set(&set, std::fs::File::create(&path).unwrap()).unwrap();
        let back = read_trace_set(std::fs::File::open(&path).unwrap()).unwrap();
        assert_eq!(back, set);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn error_display() {
        assert!(CodecError::BadMagic.to_string().contains("PSCT"));
        assert!(CodecError::UnsupportedVersion(7).to_string().contains('7'));
        assert!(CodecError::BadClass(9).to_string().contains("0x09"));
    }

    fn sample_recording(n: usize) -> Vec<LabeledTrace> {
        (0..n)
            .map(|i| LabeledTrace {
                trace: Trace {
                    value: i as f64 * 0.5 - 1.0,
                    plaintext: core::array::from_fn(|b| (i + b) as u8),
                    ciphertext: core::array::from_fn(|b| (i * 5 + b) as u8),
                },
                pass: (i % 2) as u8,
                class: match i % 4 {
                    0 => Some(PlaintextClass::AllZeros),
                    1 => Some(PlaintextClass::AllOnes),
                    2 => Some(PlaintextClass::Random),
                    _ => None,
                },
            })
            .collect()
    }

    #[test]
    fn labeled_roundtrip_preserves_labels() {
        let traces = sample_recording(101);
        let mut bytes = Vec::new();
        write_recording("PHPC", &traces, &mut bytes).unwrap();
        let back = read_recording(&bytes[..]).unwrap();
        assert_eq!(back.label, "PHPC");
        assert_eq!(back.traces, traces);
    }

    #[test]
    fn labeled_files_read_as_plain_trace_sets() {
        let traces = sample_recording(9);
        let mut bytes = Vec::new();
        write_recording("PHPC", &traces, &mut bytes).unwrap();
        let set = read_trace_set(&bytes[..]).unwrap();
        assert_eq!(set.len(), 9);
        for (plain, labeled) in set.iter().zip(&traces) {
            assert_eq!(*plain, labeled.trace);
        }
    }

    #[test]
    fn v1_files_read_as_unlabeled_recordings() {
        let set = sample_set(7);
        let mut bytes = Vec::new();
        write_trace_set(&set, &mut bytes).unwrap();
        let recording = read_recording(&bytes[..]).unwrap();
        assert_eq!(recording.traces.len(), 7);
        assert!(recording.traces.iter().all(|t| t.pass == 0 && t.class.is_none()));
        assert_eq!(recording.into_trace_set(), set);
    }

    #[test]
    fn labeled_rejects_bad_class_byte() {
        let traces = sample_recording(1);
        let mut bytes = Vec::new();
        write_recording("PHPC", &traces, &mut bytes).unwrap();
        let last = bytes.len() - 1;
        bytes[last] = 7;
        assert!(matches!(read_recording(&bytes[..]), Err(CodecError::BadClass(7))));
    }

    #[test]
    fn read_label_probes_header_only() {
        let mut bytes = Vec::new();
        write_recording("PHPC", &sample_recording(3), &mut bytes).unwrap();
        assert_eq!(read_label(&bytes[..]).unwrap(), "PHPC");
        // v1 files probe the same way.
        let mut v1 = Vec::new();
        write_trace_set(&sample_set(2), &mut v1).unwrap();
        assert_eq!(read_label(&v1[..]).unwrap(), "PHPC");
        assert!(matches!(read_label(&bytes[..6]), Err(CodecError::Truncated)));
        assert!(matches!(read_label(&b"XXXXXXXXXX"[..]), Err(CodecError::BadMagic)));
    }

    #[test]
    fn windowed_reader_matches_whole_file_reader() {
        let traces = sample_recording(101);
        let mut bytes = Vec::new();
        write_recording("PHPC", &traces, &mut bytes).unwrap();
        let whole = read_recording(&bytes[..]).unwrap();
        let mut reader = RecordingReader::new(&bytes[..]).unwrap();
        assert_eq!(reader.label(), "PHPC");
        assert_eq!(reader.remaining(), 101);
        let mut streamed = Vec::new();
        let mut chunk = Vec::new();
        while reader.read_chunk(17, &mut chunk).unwrap() > 0 {
            assert!(chunk.len() <= 17, "chunks bound memory");
            streamed.extend_from_slice(&chunk);
        }
        assert_eq!(streamed, whole.traces);
        assert_eq!(reader.remaining(), 0);
        // Exhausted readers keep returning 0.
        assert_eq!(reader.read_chunk(17, &mut chunk).unwrap(), 0);
    }

    #[test]
    fn windowed_reader_reads_v1_files() {
        let set = sample_set(9);
        let mut bytes = Vec::new();
        write_trace_set(&set, &mut bytes).unwrap();
        let mut reader = RecordingReader::new(&bytes[..]).unwrap();
        let mut chunk = Vec::new();
        let mut n = 0;
        while reader.read_chunk(4, &mut chunk).unwrap() > 0 {
            assert!(chunk.iter().all(|t| t.pass == 0 && t.class.is_none()));
            n += chunk.len();
        }
        assert_eq!(n, 9);
    }

    #[test]
    fn windowed_reader_rejects_truncation_and_garbage() {
        let traces = sample_recording(8);
        let mut bytes = Vec::new();
        write_recording("PHPC", &traces, &mut bytes).unwrap();

        let mut reader = RecordingReader::new(&bytes[..bytes.len() - 1]).unwrap();
        let mut chunk = Vec::new();
        let mut result = Ok(1);
        while matches!(result, Ok(n) if n > 0) {
            result = reader.read_chunk(3, &mut chunk);
        }
        assert!(matches!(result, Err(CodecError::Truncated)), "{result:?}");

        let mut garbage = bytes.clone();
        garbage.extend_from_slice(&[0u8; 4]);
        let mut reader = RecordingReader::new(&garbage[..]).unwrap();
        let mut result = Ok(1);
        while matches!(result, Ok(n) if n > 0) {
            result = reader.read_chunk(64, &mut chunk);
        }
        assert!(matches!(result, Err(CodecError::Truncated)), "{result:?}");

        assert!(matches!(RecordingReader::new(&b"XXXXXXXXXX"[..]), Err(CodecError::BadMagic)));
        assert!(matches!(RecordingReader::new(&bytes[..6]), Err(CodecError::Truncated)));
    }

    #[test]
    fn labeled_rejects_truncation() {
        let traces = sample_recording(4);
        let mut bytes = Vec::new();
        write_recording("PHPC", &traces, &mut bytes).unwrap();
        assert!(matches!(read_recording(&bytes[..bytes.len() - 1]), Err(CodecError::Truncated)));
    }
}
