//! Codec v3: the checkpoint container for campaign analysis state.
//!
//! Versions 1/2 of the `PSCT` format ([`crate::codec`]) persist *traces*;
//! version 3 persists *accumulated analysis state* so a long campaign can
//! checkpoint → crash → resume bit-identically. A checkpoint frame is a
//! small tagged container:
//!
//! ```text
//! magic "PSCT" | version u16 = 3 | section count u16
//! | per section: tag u16 | payload len u32 | payload bytes
//! | crc32 u32 (IEEE, over everything before the trailer)
//! ```
//!
//! All integers little-endian; `f64` fields travel as their exact IEEE-754
//! bit patterns ([`f64::to_bits`]), so restored Welford/CPA accumulators
//! continue their streams **bit-identically**. Decoding is strict and
//! panic-free: bad magic, unknown versions, truncated payloads, trailing
//! bytes and CRC mismatches all come back as [`CheckpointError`], and no
//! allocation ever exceeds the input length (a corrupt length field cannot
//! OOM the reader).
//!
//! This module owns the *framing* and the payload codecs for `psc-sca`'s
//! own accumulator types ([`RunningMoments`], [`TvlaAccumulator`],
//! [`TvlaTracker`], [`CpaState`]); the telemetry and session layers
//! compose them into per-shard campaign snapshots.

use crate::cpa::CpaState;
use crate::stats::RunningMoments;
use crate::tvla::TvlaAccumulator;
use crate::tvla::TvlaTracker;

const MAGIC: &[u8; 4] = b"PSCT";
/// The checkpoint container format version.
pub const CHECKPOINT_VERSION: u16 = 3;
/// Fixed bin count of a serialized [`CpaState`] (16 key bytes × 256
/// input-byte values).
pub const CPA_BINS: usize = 16 * 256;

/// Errors from checkpoint decoding (encoding is infallible in memory).
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure (from callers layering file reads on top).
    Io(std::io::Error),
    /// Magic bytes did not match.
    BadMagic,
    /// Unsupported container version.
    UnsupportedVersion(u16),
    /// The payload ended early or a declared length overran the input.
    Truncated,
    /// The CRC trailer did not match the frame contents.
    BadCrc {
        /// CRC recorded in the trailer.
        expected: u32,
        /// CRC computed over the received frame.
        actual: u32,
    },
    /// Structurally invalid contents (bad field values, trailing bytes).
    Corrupt(&'static str),
}

impl core::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "i/o error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a PSCT checkpoint"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v}")
            }
            CheckpointError::Truncated => write!(f, "truncated checkpoint payload"),
            CheckpointError::BadCrc { expected, actual } => {
                write!(f, "checkpoint CRC mismatch: trailer {expected:#010x}, frame {actual:#010x}")
            }
            CheckpointError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

const fn crc32_table() -> [u32; 256] {
    // IEEE 802.3 reflected polynomial, the ubiquitous `crc32` everyone
    // (zlib, PNG, ethernet) means by "CRC-32".
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes` — the checkpoint trailer checksum.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// One tagged section of a checkpoint frame. Tags are assigned by the
/// layer that composes the frame (the session driver); this module treats
/// them as opaque.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Section tag.
    pub tag: u16,
    /// Raw payload bytes (build with [`PayloadWriter`], read with
    /// [`PayloadReader`]).
    pub payload: Vec<u8>,
}

/// Serialize sections into one framed, CRC-trailed checkpoint blob.
///
/// # Panics
///
/// Panics if there are more than `u16::MAX` sections or a payload exceeds
/// `u32::MAX` bytes — both far beyond any real checkpoint.
#[must_use]
pub fn encode_frame(sections: &[Section]) -> Vec<u8> {
    let body: usize = sections.iter().map(|s| 6 + s.payload.len()).sum();
    let mut out = Vec::with_capacity(4 + 2 + 2 + body + 4);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    let count = u16::try_from(sections.len()).expect("checkpoint section count fits u16");
    out.extend_from_slice(&count.to_le_bytes());
    for s in sections {
        out.extend_from_slice(&s.tag.to_le_bytes());
        let len = u32::try_from(s.payload.len()).expect("checkpoint section fits u32");
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&s.payload);
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Parse and verify a checkpoint frame produced by [`encode_frame`].
///
/// Strict: the magic, version, every declared length, the section count
/// and the CRC trailer must all check out, and the frame must end exactly
/// after the trailer. No allocation exceeds the input length, so corrupt
/// length fields cannot cause OOM.
///
/// # Errors
///
/// See [`CheckpointError`] for the failure modes.
pub fn decode_frame(bytes: &[u8]) -> Result<Vec<Section>, CheckpointError> {
    if bytes.len() < 4 {
        return Err(CheckpointError::Truncated);
    }
    if &bytes[..4] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    if bytes.len() < 8 {
        return Err(CheckpointError::Truncated);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    if bytes.len() < 12 {
        return Err(CheckpointError::Truncated);
    }
    let (frame, trailer) = bytes.split_at(bytes.len() - 4);
    let expected = u32::from_le_bytes(trailer.try_into().expect("split gave 4 bytes"));
    let actual = crc32(frame);
    if expected != actual {
        return Err(CheckpointError::BadCrc { expected, actual });
    }
    let count = u16::from_le_bytes([bytes[6], bytes[7]]) as usize;
    let mut pos = 8usize;
    let mut sections = Vec::with_capacity(count.min(frame.len() / 6 + 1));
    for _ in 0..count {
        if frame.len() - pos < 6 {
            return Err(CheckpointError::Truncated);
        }
        let tag = u16::from_le_bytes([frame[pos], frame[pos + 1]]);
        let len =
            u32::from_le_bytes([frame[pos + 2], frame[pos + 3], frame[pos + 4], frame[pos + 5]])
                as usize;
        pos += 6;
        if frame.len() - pos < len {
            return Err(CheckpointError::Truncated);
        }
        sections.push(Section { tag, payload: frame[pos..pos + len].to_vec() });
        pos += len;
    }
    if pos != frame.len() {
        return Err(CheckpointError::Corrupt("trailing bytes after last section"));
    }
    Ok(sections)
}

/// Little-endian payload builder for one [`Section`].
#[derive(Debug, Default)]
pub struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    /// Empty payload.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its exact IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append raw bytes with no length prefix (fixed-width fields whose
    /// length both sides know statically).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append a `u16`-length-prefixed UTF-8 string.
    ///
    /// # Panics
    ///
    /// Panics if `s` exceeds `u16::MAX` bytes.
    pub fn put_str(&mut self, s: &str) {
        let len = u16::try_from(s.len()).expect("checkpoint string fits u16");
        self.put_u16(len);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Finish the payload as a tagged [`Section`].
    #[must_use]
    pub fn into_section(self, tag: u16) -> Section {
        Section { tag, payload: self.buf }
    }

    /// Finish as raw payload bytes (a section body without its tag), for
    /// callers that nest one encoded payload inside another section.
    #[must_use]
    pub fn into_payload(self) -> Vec<u8> {
        self.buf
    }
}

/// Strict bounds-checked reader over one section payload.
#[derive(Debug)]
pub struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    /// Read from the start of `payload`.
    #[must_use]
    pub fn new(payload: &'a [u8]) -> Self {
        Self { buf: payload, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.remaining() < n {
            return Err(CheckpointError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Truncated`] when the payload is exhausted.
    pub fn get_u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Truncated`] when the payload is exhausted.
    pub fn get_u16(&mut self) -> Result<u16, CheckpointError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("take gave 2 bytes")))
    }

    /// Read a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Truncated`] when the payload is exhausted.
    pub fn get_u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("take gave 4 bytes")))
    }

    /// Read a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Truncated`] when the payload is exhausted.
    pub fn get_u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("take gave 8 bytes")))
    }

    /// Read an `f64` bit pattern written by [`PayloadWriter::put_f64`].
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Truncated`] when the payload is exhausted.
    pub fn get_f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a fixed-width byte array written by
    /// [`PayloadWriter::put_bytes`].
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Truncated`] when the payload is exhausted.
    pub fn get_bytes<const N: usize>(&mut self) -> Result<[u8; N], CheckpointError> {
        Ok(self.take(N)?.try_into().expect("take gave N bytes"))
    }

    /// Read a `u16`-length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Truncated`] on exhaustion,
    /// [`CheckpointError::Corrupt`] on invalid UTF-8.
    pub fn get_str(&mut self) -> Result<String, CheckpointError> {
        let len = self.get_u16()? as usize;
        let bytes = self.take(len)?;
        core::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| CheckpointError::Corrupt("string is not valid UTF-8"))
    }

    /// Assert the payload was fully consumed — trailing bytes mean the
    /// writer and reader disagree about the schema.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Corrupt`] when bytes remain.
    pub fn finish(&self) -> Result<(), CheckpointError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CheckpointError::Corrupt("trailing bytes in section"))
        }
    }
}

/// Serialize one Welford accumulator (24 bytes).
pub fn put_moments(w: &mut PayloadWriter, m: &RunningMoments) {
    let (n, mean, m2) = m.raw();
    w.put_u64(n);
    w.put_f64(mean);
    w.put_f64(m2);
}

/// Deserialize one Welford accumulator written by [`put_moments`].
///
/// # Errors
///
/// [`CheckpointError::Truncated`] when the payload is exhausted.
pub fn get_moments(r: &mut PayloadReader<'_>) -> Result<RunningMoments, CheckpointError> {
    let n = r.get_u64()?;
    let mean = r.get_f64()?;
    let m2 = r.get_f64()?;
    Ok(RunningMoments::from_raw(n, mean, m2))
}

/// Serialize a full TVLA accumulator: the six `[pass][class]` moment
/// accumulators in order (144 bytes).
pub fn put_tvla_accumulator(w: &mut PayloadWriter, acc: &TvlaAccumulator) {
    for pass in &acc.raw() {
        for m in pass {
            put_moments(w, m);
        }
    }
}

/// Deserialize a TVLA accumulator written by [`put_tvla_accumulator`].
///
/// # Errors
///
/// [`CheckpointError::Truncated`] when the payload is exhausted.
pub fn get_tvla_accumulator(r: &mut PayloadReader<'_>) -> Result<TvlaAccumulator, CheckpointError> {
    let mut moments = [[RunningMoments::new(); 3]; 2];
    for pass in &mut moments {
        for m in pass.iter_mut() {
            *m = get_moments(r)?;
        }
    }
    Ok(TvlaAccumulator::from_raw(moments))
}

/// Serialize a two-dataset TVLA tracker (48 bytes).
pub fn put_tracker(w: &mut PayloadWriter, tracker: &TvlaTracker) {
    let (a, b) = tracker.raw();
    put_moments(w, &a);
    put_moments(w, &b);
}

/// Deserialize a tracker written by [`put_tracker`].
///
/// # Errors
///
/// [`CheckpointError::Truncated`] when the payload is exhausted.
pub fn get_tracker(r: &mut PayloadReader<'_>) -> Result<TvlaTracker, CheckpointError> {
    let a = get_moments(r)?;
    let b = get_moments(r)?;
    Ok(TvlaTracker::from_raw(a, b))
}

/// Serialize a raw CPA accumulator state: model name, trace moments and
/// all 16 × 256 bins (~64 KB).
///
/// # Panics
///
/// Panics if `state.bins` does not hold exactly [`CPA_BINS`] entries.
pub fn put_cpa_state(w: &mut PayloadWriter, state: &CpaState) {
    assert_eq!(state.bins.len(), CPA_BINS, "CpaState must carry 16x256 bins");
    w.put_str(&state.model_name);
    w.put_u64(state.n);
    w.put_f64(state.sum_t);
    w.put_f64(state.sum_tt);
    for &(count, sum_t) in &state.bins {
        w.put_u64(count);
        w.put_f64(sum_t);
    }
}

/// Deserialize a CPA state written by [`put_cpa_state`]. The bin count is
/// fixed, so a corrupt length cannot over-allocate.
///
/// # Errors
///
/// See [`CheckpointError`] for the failure modes.
pub fn get_cpa_state(r: &mut PayloadReader<'_>) -> Result<CpaState, CheckpointError> {
    let model_name = r.get_str()?;
    let n = r.get_u64()?;
    let sum_t = r.get_f64()?;
    let sum_tt = r.get_f64()?;
    if r.remaining() < CPA_BINS * 16 {
        return Err(CheckpointError::Truncated);
    }
    let mut bins = Vec::with_capacity(CPA_BINS);
    for _ in 0..CPA_BINS {
        let count = r.get_u64()?;
        let s = r.get_f64()?;
        bins.push((count, s));
    }
    Ok(CpaState { model_name, bins, n, sum_t, sum_tt })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic zlib/PNG check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn sample_sections() -> Vec<Section> {
        let mut a = PayloadWriter::new();
        a.put_u64(42);
        a.put_str("PHPC");
        let mut b = PayloadWriter::new();
        b.put_f64(-0.0);
        b.put_f64(f64::NAN);
        vec![a.into_section(1), b.into_section(7), Section { tag: 9, payload: Vec::new() }]
    }

    #[test]
    fn frame_round_trips() {
        let sections = sample_sections();
        let bytes = encode_frame(&sections);
        let back = decode_frame(&bytes).unwrap();
        assert_eq!(back, sections);
    }

    #[test]
    fn empty_frame_round_trips() {
        let bytes = encode_frame(&[]);
        assert_eq!(decode_frame(&bytes).unwrap(), Vec::<Section>::new());
    }

    #[test]
    fn truncation_at_every_offset_is_a_clean_error() {
        let bytes = encode_frame(&sample_sections());
        for cut in 0..bytes.len() {
            assert!(decode_frame(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn any_flipped_byte_is_rejected() {
        let bytes = encode_frame(&sample_sections());
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            assert!(decode_frame(&corrupt).is_err(), "flip at {i} must fail");
        }
    }

    #[test]
    fn wrong_version_and_magic_are_rejected() {
        let mut bytes = encode_frame(&sample_sections());
        bytes[4] = 9;
        assert!(matches!(decode_frame(&bytes), Err(CheckpointError::UnsupportedVersion(9))));
        let mut bytes = encode_frame(&[]);
        bytes[0] = b'X';
        assert!(matches!(decode_frame(&bytes), Err(CheckpointError::BadMagic)));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode_frame(&sample_sections());
        bytes.extend_from_slice(&[0u8; 5]);
        assert!(decode_frame(&bytes).is_err());
    }

    #[test]
    fn moments_round_trip_bit_identically() {
        let mut m = RunningMoments::new();
        m.extend([1.5, -2.25, 1e300, 0.1]);
        let mut w = PayloadWriter::new();
        put_moments(&mut w, &m);
        let section = w.into_section(0);
        let mut r = PayloadReader::new(&section.payload);
        let back = get_moments(&mut r).unwrap();
        r.finish().unwrap();
        let (n, mean, m2) = m.raw();
        let (bn, bmean, bm2) = back.raw();
        assert_eq!(n, bn);
        assert_eq!(mean.to_bits(), bmean.to_bits());
        assert_eq!(m2.to_bits(), bm2.to_bits());
    }

    #[test]
    fn cpa_state_round_trips() {
        let state = CpaState {
            model_name: "Rd0-HW".into(),
            bins: (0..CPA_BINS).map(|i| (i as u64, i as f64 * 0.5 - 7.0)).collect(),
            n: 1234,
            sum_t: 99.5,
            sum_tt: 1e9,
        };
        let mut w = PayloadWriter::new();
        put_cpa_state(&mut w, &state);
        let section = w.into_section(0);
        let mut r = PayloadReader::new(&section.payload);
        let back = get_cpa_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, state);
    }

    #[test]
    fn reader_rejects_exhaustion_and_bad_utf8() {
        let mut r = PayloadReader::new(&[1, 2]);
        assert!(matches!(r.get_u32(), Err(CheckpointError::Truncated)));
        // Length prefix claims 2 bytes of invalid UTF-8.
        let mut w = PayloadWriter::new();
        w.put_u16(2);
        let mut section = w.into_section(0);
        section.payload.extend_from_slice(&[0xFF, 0xFE]);
        let mut r = PayloadReader::new(&section.payload);
        assert!(matches!(r.get_str(), Err(CheckpointError::Corrupt(_))));
    }
}
