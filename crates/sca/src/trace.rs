//! Side-channel trace containers.
//!
//! One *trace* in this attack is a single scalar — the SMC key value (or
//! timing) observed for one measurement window — together with the
//! known-plaintext record the attacker keeps (§3.4: "the attacker records
//! the plaintext, the generated ciphertext, and the corresponding SMC key
//! values right after the encryption").

use serde::{Deserialize, Serialize};

/// One observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// The side-channel value (watts for power keys, seconds for timing).
    pub value: f64,
    /// The plaintext the attacker submitted.
    pub plaintext: [u8; 16],
    /// The ciphertext the victim returned.
    pub ciphertext: [u8; 16],
}

/// A labelled collection of traces.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceSet {
    /// Human-readable label (e.g. the SMC key name).
    pub label: String,
    traces: Vec<Trace>,
}

impl TraceSet {
    /// Empty set with a label.
    #[must_use]
    pub fn new(label: impl Into<String>) -> Self {
        Self { label: label.into(), traces: Vec::new() }
    }

    /// Empty set with pre-allocated capacity.
    #[must_use]
    pub fn with_capacity(label: impl Into<String>, capacity: usize) -> Self {
        Self { label: label.into(), traces: Vec::with_capacity(capacity) }
    }

    /// Append one trace.
    pub fn push(&mut self, trace: Trace) {
        self.traces.push(trace);
    }

    /// Number of traces.
    #[must_use]
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// All traces.
    #[must_use]
    pub fn traces(&self) -> &[Trace] {
        &self.traces
    }

    /// Iterate over traces.
    pub fn iter(&self) -> core::slice::Iter<'_, Trace> {
        self.traces.iter()
    }

    /// The side-channel values only.
    #[must_use]
    pub fn values(&self) -> Vec<f64> {
        self.traces.iter().map(|t| t.value).collect()
    }

    /// A new set containing the first `n` traces (prefix subsampling, used
    /// for GE-vs-trace-count curves).
    #[must_use]
    pub fn prefix(&self, n: usize) -> TraceSet {
        TraceSet {
            label: self.label.clone(),
            traces: self.traces[..n.min(self.traces.len())].to_vec(),
        }
    }
}

impl Extend<Trace> for TraceSet {
    fn extend<I: IntoIterator<Item = Trace>>(&mut self, iter: I) {
        self.traces.extend(iter);
    }
}

impl FromIterator<Trace> for TraceSet {
    fn from_iter<I: IntoIterator<Item = Trace>>(iter: I) -> Self {
        Self { label: String::new(), traces: iter.into_iter().collect() }
    }
}

impl<'a> IntoIterator for &'a TraceSet {
    type Item = &'a Trace;
    type IntoIter = core::slice::Iter<'a, Trace>;

    fn into_iter(self) -> Self::IntoIter {
        self.traces.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(v: f64) -> Trace {
        Trace { value: v, plaintext: [1; 16], ciphertext: [2; 16] }
    }

    #[test]
    fn push_and_len() {
        let mut set = TraceSet::new("PHPC");
        assert!(set.is_empty());
        set.push(trace(1.0));
        set.push(trace(2.0));
        assert_eq!(set.len(), 2);
        assert_eq!(set.label, "PHPC");
        assert_eq!(set.values(), vec![1.0, 2.0]);
    }

    #[test]
    fn prefix_subsamples() {
        let mut set = TraceSet::new("x");
        set.extend((0..10).map(|i| trace(f64::from(i))));
        let p = set.prefix(4);
        assert_eq!(p.len(), 4);
        assert_eq!(p.values(), vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(set.prefix(99).len(), 10, "prefix clamps");
    }

    #[test]
    fn collect_from_iterator() {
        let set: TraceSet = (0..5).map(|i| trace(f64::from(i))).collect();
        assert_eq!(set.len(), 5);
    }

    #[test]
    fn borrowed_iteration() {
        let mut set = TraceSet::new("x");
        set.extend([trace(1.0), trace(2.0)]);
        let sum: f64 = (&set).into_iter().map(|t| t.value).sum();
        assert_eq!(sum, 3.0);
    }

    #[test]
    fn clone_preserves_contents() {
        let mut set = TraceSet::new("PHPC");
        set.push(Trace { value: 2.25, plaintext: [3; 16], ciphertext: [9; 16] });
        let cloned = set.clone();
        assert_eq!(cloned, set);
        assert_eq!(cloned.traces()[0].plaintext, [3; 16]);
    }
}
