//! Bounded full-key enumeration from per-byte CPA rankings.
//!
//! Table 4 shows the practical endgame the paper implies: once CPA ranks
//! every correct byte *near* the top (rank ≤ 10), the attacker does not
//! need rank 1 everywhere — they enumerate full-key candidates in order of
//! plausibility and verify each against one known plaintext/ciphertext
//! pair from the victim's service. This module implements that step with a
//! best-first search over the per-byte rank lattice: candidates are
//! produced in non-decreasing order of the *sum of per-byte rank indices*
//! (a standard, monotone plausibility proxy).

use crate::cpa::Cpa;
use psc_aes::Aes;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// A bounded enumerator over full-key candidates.
#[derive(Debug, Clone)]
pub struct KeyEnumerator {
    /// Per byte, guesses in descending plausibility (rank order).
    ranked: Vec<Vec<u8>>,
}

impl KeyEnumerator {
    /// Build from explicit per-byte rankings.
    ///
    /// # Panics
    ///
    /// Panics unless exactly 16 rankings of 256 distinct guesses are given.
    #[must_use]
    pub fn new(ranked: Vec<Vec<u8>>) -> Self {
        assert_eq!(ranked.len(), 16, "one ranking per key byte");
        for r in &ranked {
            assert_eq!(r.len(), 256, "each ranking must cover all guesses");
        }
        Self { ranked }
    }

    /// Build from a populated CPA accumulator.
    #[must_use]
    pub fn from_cpa(cpa: &Cpa) -> Self {
        Self::new((0..16).map(|b| cpa.ranked_guesses(b)).collect())
    }

    /// The most plausible candidate (all bytes at rank 1).
    #[must_use]
    pub fn top_candidate(&self) -> [u8; 16] {
        core::array::from_fn(|b| self.ranked[b][0])
    }

    /// Enumerate up to `budget` candidates in non-decreasing rank-sum
    /// order, returning the first for which `verify` is true.
    pub fn search<F>(&self, budget: usize, mut verify: F) -> Option<([u8; 16], usize)>
    where
        F: FnMut(&[u8; 16]) -> bool,
    {
        // Best-first search over index vectors; cost = Σ indices.
        let mut heap: BinaryHeap<Reverse<(u32, [u8; 16])>> = BinaryHeap::new();
        let mut seen: HashSet<[u8; 16]> = HashSet::new();
        let start = [0u8; 16];
        heap.push(Reverse((0, start)));
        seen.insert(start);
        let mut tried = 0usize;

        while let Some(Reverse((cost, indices))) = heap.pop() {
            let candidate: [u8; 16] = core::array::from_fn(|b| self.ranked[b][indices[b] as usize]);
            tried += 1;
            if verify(&candidate) {
                return Some((candidate, tried));
            }
            if tried >= budget {
                return None;
            }
            for b in 0..16 {
                if indices[b] < 255 {
                    let mut next = indices;
                    next[b] += 1;
                    if u32::from(next[b]) + cost <= 64 && seen.insert(next) {
                        heap.push(Reverse((cost + 1, next)));
                    }
                }
            }
        }
        None
    }
}

/// Verify a key candidate against one known plaintext/ciphertext pair from
/// the victim's encryption service.
#[must_use]
pub fn verify_with_pair(candidate: &[u8; 16], plaintext: &[u8; 16], ciphertext: &[u8; 16]) -> bool {
    Aes::new(candidate).map(|aes| aes.encrypt_block(plaintext) == *ciphertext).unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A ranking where the true byte sits at a chosen rank per byte.
    fn ranking_with_true_at(true_key: &[u8; 16], ranks: &[usize; 16]) -> KeyEnumerator {
        let ranked = (0..16)
            .map(|b| {
                let mut order: Vec<u8> = (0..=255).filter(|&g| g != true_key[b]).collect();
                order.insert(ranks[b] - 1, true_key[b]);
                order
            })
            .collect();
        KeyEnumerator::new(ranked)
    }

    #[test]
    fn all_rank_one_found_immediately() {
        let key = [0x42u8; 16];
        let e = ranking_with_true_at(&key, &[1; 16]);
        assert_eq!(e.top_candidate(), key);
        let pt = [7u8; 16];
        let ct = Aes::new(&key).unwrap().encrypt_block(&pt);
        let (found, tried) = e.search(10, |c| verify_with_pair(c, &pt, &ct)).unwrap();
        assert_eq!(found, key);
        assert_eq!(tried, 1);
    }

    #[test]
    fn near_recovery_found_within_budget() {
        // Paper-like shape: some bytes at rank 1, others nearly recovered.
        let key: [u8; 16] = core::array::from_fn(|i| (i * 11 + 3) as u8);
        let ranks = [1, 1, 2, 1, 3, 1, 1, 2, 1, 1, 1, 1, 2, 1, 1, 1];
        let e = ranking_with_true_at(&key, &ranks);
        let pt = [0xA0u8; 16];
        let ct = Aes::new(&key).unwrap().encrypt_block(&pt);
        let (found, tried) =
            e.search(100_000, |c| verify_with_pair(c, &pt, &ct)).expect("within budget");
        assert_eq!(found, key);
        // Rank-sum of the true key is 5 extra steps; the search must find
        // it long before exhausting the budget.
        assert!(tried < 50_000, "tried {tried}");
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        let key = [9u8; 16];
        let ranks = [200usize; 16]; // hopeless ranking
        let e = ranking_with_true_at(&key, &ranks);
        let pt = [1u8; 16];
        let ct = Aes::new(&key).unwrap().encrypt_block(&pt);
        assert!(e.search(1_000, |c| verify_with_pair(c, &pt, &ct)).is_none());
    }

    #[test]
    fn candidates_enumerate_in_nondecreasing_cost() {
        let key = [0u8; 16];
        let e = ranking_with_true_at(&key, &[1; 16]);
        let mut costs = Vec::new();
        let _ = e.search(200, |c| {
            // Recover the implied cost: sum over bytes of the index where
            // this candidate's byte sits in the ranking.
            let cost: usize = (0..16)
                .map(|b| e.ranked[b].iter().position(|&g| g == c[b]).expect("present"))
                .sum();
            costs.push(cost);
            false
        });
        for w in costs.windows(2) {
            assert!(w[0] <= w[1], "costs not monotone: {costs:?}");
        }
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let key = [5u8; 16];
        let pt = [3u8; 16];
        let ct = Aes::new(&key).unwrap().encrypt_block(&pt);
        assert!(verify_with_pair(&key, &pt, &ct));
        let mut wrong = key;
        wrong[0] ^= 1;
        assert!(!verify_with_pair(&wrong, &pt, &ct));
    }

    #[test]
    #[should_panic(expected = "one ranking per key byte")]
    fn wrong_shape_panics() {
        let _ = KeyEnumerator::new(vec![vec![0u8; 256]; 15]);
    }
}
