//! Correlation Power Analysis over single-value traces.
//!
//! §3.4 of the paper: for each of the 16 key bytes, correlate the observed
//! SMC key values against the hypothesis model for all 256 guesses, rank
//! guesses by (absolute) correlation, and read off the rank of the true
//! byte.
//!
//! ## Implementation note — class binning
//!
//! All of the paper's models depend on attacker data only through one byte
//! ([`PowerModel::input_byte`]). The accumulator therefore keeps, per key
//! byte, 256 bins of `(count, Σ value)` keyed by that input byte — adding a
//! trace is O(16), not O(16 × 256) — and reconstructs every guess's Pearson
//! correlation exactly from the bins:
//!
//! ```text
//! Σh   = Σ_v count(v)·H(v,g)        Σh²  = Σ_v count(v)·H(v,g)²
//! Σh·t = Σ_v sum_t(v)·H(v,g)
//! ```

use crate::model::PowerModel;
use crate::trace::{Trace, TraceSet};
use pulp::{F64x2, F64x4, Simd, WithSimd};
use std::sync::Arc;

#[derive(Debug, Clone, Copy, Default)]
struct Bin {
    count: u64,
    sum_t: f64,
}

/// Precomputed hypothesis table for one power model, in **guess-major**
/// layout: `row(g)[v]` is the hypothetical leakage of input byte `v` under
/// guess `g`.
///
/// The table is 256 × 256 f64 (512 KB) — expensive to rebuild and identical
/// for every [`Cpa`] instance of the same model, so build it once per model
/// ([`HypTable::for_model`]) and share it via `Arc` across channels and
/// shards ([`Cpa::with_table`]). Guess-major rows also make
/// [`Cpa::correlations`] walk memory with unit stride (the inner loop runs
/// over `v` for a fixed `g`), instead of the 2 KB strides a value-major
/// `hyp[v][g]` layout forces.
pub struct HypTable {
    model_name: &'static str,
    /// `rows[g][v]`.
    rows: Vec<[f64; 256]>,
}

impl HypTable {
    /// Build the table for `model`.
    #[must_use]
    pub fn for_model(model: &dyn PowerModel) -> Self {
        let mut rows = vec![[0.0f64; 256]; 256];
        for (g, row) in rows.iter_mut().enumerate() {
            for (v, cell) in row.iter_mut().enumerate() {
                *cell = model.hypothesis_value(v as u8, g as u8);
            }
        }
        Self { model_name: model.name(), rows }
    }

    /// Name of the model this table was built for.
    #[must_use]
    pub fn model_name(&self) -> &'static str {
        self.model_name
    }

    /// The 256 hypothesis values of `guess`, indexed by input byte.
    #[must_use]
    pub fn row(&self, guess: u8) -> &[f64; 256] {
        &self.rows[guess as usize]
    }
}

impl core::fmt::Debug for HypTable {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("HypTable").field("model_name", &self.model_name).finish_non_exhaustive()
    }
}

/// Attempted to merge CPA accumulators built for different power models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpaMergeError {
    /// Model of the accumulator being merged into.
    pub ours: &'static str,
    /// Model of the accumulator being merged from.
    pub theirs: &'static str,
}

impl core::fmt::Display for CpaMergeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "cannot merge CPA accumulators: model {} vs {}", self.ours, self.theirs)
    }
}

impl std::error::Error for CpaMergeError {}

/// Attempted to restore checkpointed CPA state captured under a different
/// power model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpaRestoreError {
    /// Model of the live accumulator.
    pub ours: &'static str,
    /// Model recorded in the checkpointed state.
    pub theirs: String,
}

impl core::fmt::Display for CpaRestoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "cannot restore CPA state: live model {} vs checkpoint {}",
            self.ours, self.theirs
        )
    }
}

impl std::error::Error for CpaRestoreError {}

/// Raw accumulator state of a [`Cpa`] — everything a checkpoint must
/// persist to resume the accumulator bit-identically (the model itself and
/// the hypothesis table are code, rebuilt at restore time and validated by
/// name).
#[derive(Debug, Clone, PartialEq)]
pub struct CpaState {
    /// Name of the power model the state was captured under.
    pub model_name: String,
    /// The 16 × 256 `(count, Σ value)` bins, flattened key-byte-major.
    pub bins: Vec<(u64, f64)>,
    /// Traces accumulated.
    pub n: u64,
    /// Σ value over all traces.
    pub sum_t: f64,
    /// Σ value² over all traces.
    pub sum_tt: f64,
}

/// Streaming CPA accumulator for one channel and one power model.
#[derive(Debug)]
pub struct Cpa {
    model: Box<dyn PowerModel>,
    /// Shared guess-major hypothesis table (see [`HypTable`]).
    table: Arc<HypTable>,
    /// Per key byte, per input-byte value.
    bins: Vec<[Bin; 256]>,
    n: u64,
    sum_t: f64,
    sum_tt: f64,
    /// Guesses swept per correlation block; see [`Self::set_unroll`].
    unroll: usize,
}

/// One key byte's correlation sweep, generic over the SIMD backend.
///
/// **Lane-per-guess layout:** each vector lane owns one guess's private
/// `Σh / Σh² / Σh·t` dependency chain, so per-guess addition order — and
/// therefore the result bits — is identical under every backend and every
/// unroll width. The unroll width only changes how guesses are *grouped*
/// into blocks, never the order of any single guess's accumulations.
struct CorrSweep<'a> {
    /// Guess-major hypothesis rows (`rows[g][v]`).
    rows: &'a [[f64; 256]],
    /// Dense per-value bin counts, as f64.
    cnt: &'a [f64; 256],
    /// Dense per-value bin Σ value.
    st: &'a [f64; 256],
    sum_t: f64,
    n: f64,
    var_t: f64,
    unroll: usize,
    out: &'a mut [f64; 256],
}

impl WithSimd for CorrSweep<'_> {
    type Output = ();

    #[inline(always)]
    fn with_simd<S: Simd>(self) {
        match self.unroll {
            2 => self.sweep2::<S>(),
            8 => self.sweep8::<S>(),
            _ => self.sweep4::<S>(),
        }
    }
}

/// The scalar epilogue of one guess: covariance, variance, the guarded
/// normalized correlation. Identical under every backend (operates on
/// lane-extracted scalars).
#[inline(always)]
fn finish_guess(sum_t: f64, n: f64, var_t: f64, sum_h: f64, sum_hh: f64, sum_ht: f64) -> f64 {
    let cov = sum_ht - sum_h * sum_t / n;
    let var_h = sum_hh - sum_h * sum_h / n;
    if var_h <= 0.0 {
        0.0
    } else {
        (cov / (var_h * var_t).sqrt()).clamp(-1.0, 1.0)
    }
}

impl CorrSweep<'_> {
    #[inline(always)]
    fn sweep2<S: Simd>(self) {
        let Self { rows, cnt, st, sum_t, n, var_t, out, .. } = self;
        for (block, out2) in out.chunks_exact_mut(2).enumerate() {
            let g = block * 2;
            let (r0, r1) = (&rows[g], &rows[g + 1]);
            let mut sum_h = S::f64x2::splat(0.0);
            let mut sum_hh = S::f64x2::splat(0.0);
            let mut sum_ht = S::f64x2::splat(0.0);
            for v in 0..256 {
                let h = S::f64x2::new(r0[v], r1[v]);
                let c = S::f64x2::splat(cnt[v]);
                let s = S::f64x2::splat(st[v]);
                let ch = c * h;
                sum_h += ch;
                sum_hh += ch * h;
                sum_ht += s * h;
            }
            let (h, hh, ht) = (sum_h.to_array(), sum_hh.to_array(), sum_ht.to_array());
            for k in 0..2 {
                out2[k] = finish_guess(sum_t, n, var_t, h[k], hh[k], ht[k]);
            }
        }
    }

    #[inline(always)]
    fn sweep4<S: Simd>(self) {
        let Self { rows, cnt, st, sum_t, n, var_t, out, .. } = self;
        for (block, out4) in out.chunks_exact_mut(4).enumerate() {
            let g = block * 4;
            let rows: [&[f64; 256]; 4] = [&rows[g], &rows[g + 1], &rows[g + 2], &rows[g + 3]];
            let mut sum_h = S::f64x4::splat(0.0);
            let mut sum_hh = S::f64x4::splat(0.0);
            let mut sum_ht = S::f64x4::splat(0.0);
            for v in 0..256 {
                let h = S::f64x4::new(rows[0][v], rows[1][v], rows[2][v], rows[3][v]);
                let c = S::f64x4::splat(cnt[v]);
                let s = S::f64x4::splat(st[v]);
                let ch = c * h;
                sum_h += ch;
                sum_hh += ch * h;
                sum_ht += s * h;
            }
            let (h, hh, ht) = (sum_h.to_array(), sum_hh.to_array(), sum_ht.to_array());
            for k in 0..4 {
                out4[k] = finish_guess(sum_t, n, var_t, h[k], hh[k], ht[k]);
            }
        }
    }

    #[inline(always)]
    fn sweep8<S: Simd>(self) {
        let Self { rows, cnt, st, sum_t, n, var_t, out, .. } = self;
        for (block, out8) in out.chunks_exact_mut(8).enumerate() {
            let g = block * 8;
            let ra: [&[f64; 256]; 4] = [&rows[g], &rows[g + 1], &rows[g + 2], &rows[g + 3]];
            let rb: [&[f64; 256]; 4] = [&rows[g + 4], &rows[g + 5], &rows[g + 6], &rows[g + 7]];
            let mut sum_h_a = S::f64x4::splat(0.0);
            let mut sum_hh_a = S::f64x4::splat(0.0);
            let mut sum_ht_a = S::f64x4::splat(0.0);
            let mut sum_h_b = S::f64x4::splat(0.0);
            let mut sum_hh_b = S::f64x4::splat(0.0);
            let mut sum_ht_b = S::f64x4::splat(0.0);
            for v in 0..256 {
                let c = S::f64x4::splat(cnt[v]);
                let s = S::f64x4::splat(st[v]);
                let ha = S::f64x4::new(ra[0][v], ra[1][v], ra[2][v], ra[3][v]);
                let hb = S::f64x4::new(rb[0][v], rb[1][v], rb[2][v], rb[3][v]);
                let cha = c * ha;
                let chb = c * hb;
                sum_h_a += cha;
                sum_hh_a += cha * ha;
                sum_ht_a += s * ha;
                sum_h_b += chb;
                sum_hh_b += chb * hb;
                sum_ht_b += s * hb;
            }
            let (ha, hha, hta) = (sum_h_a.to_array(), sum_hh_a.to_array(), sum_ht_a.to_array());
            let (hb, hhb, htb) = (sum_h_b.to_array(), sum_hh_b.to_array(), sum_ht_b.to_array());
            for k in 0..4 {
                out8[k] = finish_guess(sum_t, n, var_t, ha[k], hha[k], hta[k]);
                out8[k + 4] = finish_guess(sum_t, n, var_t, hb[k], hhb[k], htb[k]);
            }
        }
    }
}

/// All 16 key bytes' sweeps under one dispatch: the `#[target_feature]`
/// frame and the backend resolution amortize over the whole rank sweep.
struct CorrSweepAll<'a> {
    rows: &'a [[f64; 256]],
    cnt: &'a [[f64; 256]; 16],
    st: &'a [[f64; 256]; 16],
    sum_t: f64,
    n: f64,
    var_t: f64,
    unroll: usize,
    out: &'a mut [[f64; 256]; 16],
}

impl WithSimd for CorrSweepAll<'_> {
    type Output = ();

    #[inline(always)]
    fn with_simd<S: Simd>(self) {
        for ((cnt, st), out) in self.cnt.iter().zip(self.st).zip(self.out.iter_mut()) {
            CorrSweep {
                rows: self.rows,
                cnt,
                st,
                sum_t: self.sum_t,
                n: self.n,
                var_t: self.var_t,
                unroll: self.unroll,
                out,
            }
            .with_simd::<S>();
        }
    }
}

impl Cpa {
    /// New accumulator for `model`, building a private hypothesis table.
    /// When many accumulators share one model (per-channel, per-shard),
    /// prefer [`Self::with_table`] with one [`HypTable`] built up front.
    #[must_use]
    pub fn new(model: Box<dyn PowerModel>) -> Self {
        let table = Arc::new(HypTable::for_model(model.as_ref()));
        Self::with_table(model, table)
    }

    /// New accumulator reusing a prebuilt hypothesis table, skipping the
    /// 512 KB table construction of [`Self::new`].
    ///
    /// # Panics
    ///
    /// Panics if `table` was built for a different model than `model` —
    /// correlating against a foreign table would silently produce garbage.
    #[must_use]
    pub fn with_table(model: Box<dyn PowerModel>, table: Arc<HypTable>) -> Self {
        assert_eq!(
            model.name(),
            table.model_name(),
            "hypothesis table model mismatch: accumulator model vs table model"
        );
        Self {
            model,
            table,
            bins: vec![[Bin::default(); 256]; 16],
            n: 0,
            sum_t: 0.0,
            sum_tt: 0.0,
            unroll: Self::DEFAULT_UNROLL,
        }
    }

    /// Default correlation sweep unroll width (guesses per block).
    pub const DEFAULT_UNROLL: usize = 4;

    /// The unroll widths [`Self::set_unroll`] accepts — the autotuner's
    /// sweep domain.
    pub const UNROLL_WIDTHS: [usize; 3] = [2, 4, 8];

    /// Set the correlation sweep unroll width: how many guesses (= lane
    /// chains) each sweep block carries. Pure throughput knob — every
    /// guess keeps its private accumulator chain regardless of grouping,
    /// so results are bit-identical across widths (and the autotuner may
    /// pick whichever is fastest on the host).
    ///
    /// # Panics
    ///
    /// Panics unless `unroll` is one of [`Self::UNROLL_WIDTHS`].
    pub fn set_unroll(&mut self, unroll: usize) {
        assert!(
            Self::UNROLL_WIDTHS.contains(&unroll),
            "unsupported CPA unroll width {unroll}; expected one of {:?}",
            Self::UNROLL_WIDTHS
        );
        self.unroll = unroll;
    }

    /// The active correlation sweep unroll width.
    #[must_use]
    pub fn unroll(&self) -> usize {
        self.unroll
    }

    /// The hypothesis table, shareable with further accumulators of the
    /// same model (clone the `Arc`, not the table).
    #[must_use]
    pub fn shared_table(&self) -> &Arc<HypTable> {
        &self.table
    }

    /// The model in use.
    #[must_use]
    pub fn model(&self) -> &dyn PowerModel {
        self.model.as_ref()
    }

    /// Number of traces accumulated.
    #[must_use]
    pub fn trace_count(&self) -> u64 {
        self.n
    }

    /// Add one trace.
    pub fn add_trace(&mut self, trace: &Trace) {
        self.n += 1;
        self.sum_t += trace.value;
        self.sum_tt += trace.value * trace.value;
        for (byte_index, bins) in self.bins.iter_mut().enumerate() {
            let v = self.model.input_byte(&trace.plaintext, &trace.ciphertext, byte_index);
            let bin = &mut bins[v as usize];
            bin.count += 1;
            bin.sum_t += trace.value;
        }
    }

    /// Add a whole set.
    pub fn add_set(&mut self, set: &TraceSet) {
        for t in set.iter() {
            self.add_trace(t);
        }
    }

    /// Add one columnar block of observations: `values[i]` was observed
    /// for `(plaintexts[i], ciphertexts[i])`. **Bit-identical** to calling
    /// [`Self::add_trace`] once per row in order — every accumulator (the
    /// trace moments and each bin) receives the same terms in the same
    /// order — but evaluated column-major: one sweep over the value column
    /// accumulates the moments, then each key byte bins the whole
    /// plaintext/ciphertext column in its own tight loop. This is the
    /// block fast path behind `psc-telemetry`'s streaming CPA processor.
    ///
    /// # Panics
    ///
    /// Panics if the three slices differ in length.
    pub fn add_block(&mut self, plaintexts: &[[u8; 16]], ciphertexts: &[[u8; 16]], values: &[f64]) {
        assert_eq!(plaintexts.len(), values.len(), "one plaintext per value");
        assert_eq!(ciphertexts.len(), values.len(), "one ciphertext per value");
        self.n += values.len() as u64;
        for &t in values {
            self.sum_t += t;
            self.sum_tt += t * t;
        }
        for (byte_index, bins) in self.bins.iter_mut().enumerate() {
            for ((pt, ct), &t) in plaintexts.iter().zip(ciphertexts).zip(values) {
                let v = self.model.input_byte(pt, ct, byte_index);
                let bin = &mut bins[v as usize];
                bin.count += 1;
                bin.sum_t += t;
            }
        }
    }

    /// Merge another accumulator collected under the *same* power model
    /// (parallel collection shards). Exact up to floating-point
    /// reassociation: bin counts and moment sums simply add.
    ///
    /// # Errors
    ///
    /// Returns [`CpaMergeError`] when the two accumulators were built for
    /// different power models; merging their bins would correlate against
    /// the wrong hypothesis table.
    pub fn merge(&mut self, other: &Self) -> Result<(), CpaMergeError> {
        if self.model.name() != other.model.name() {
            return Err(CpaMergeError { ours: self.model.name(), theirs: other.model.name() });
        }
        self.n += other.n;
        self.sum_t += other.sum_t;
        self.sum_tt += other.sum_tt;
        for (bins, other_bins) in self.bins.iter_mut().zip(&other.bins) {
            for (bin, other_bin) in bins.iter_mut().zip(other_bins.iter()) {
                bin.count += other_bin.count;
                bin.sum_t += other_bin.sum_t;
            }
        }
        Ok(())
    }

    /// Capture the raw accumulator state for checkpointing; see
    /// [`CpaState`]. [`Self::restore_raw`] inverts this exactly.
    #[must_use]
    pub fn raw_state(&self) -> CpaState {
        CpaState {
            model_name: self.model.name().to_owned(),
            bins: self.bins.iter().flatten().map(|b| (b.count, b.sum_t)).collect(),
            n: self.n,
            sum_t: self.sum_t,
            sum_tt: self.sum_tt,
        }
    }

    /// Overwrite this accumulator with checkpointed state captured by
    /// [`Self::raw_state`] on an accumulator of the same model. The
    /// restored accumulator continues the stream bit-identically.
    ///
    /// # Errors
    ///
    /// Returns [`CpaRestoreError`] when `state` was captured under a
    /// different power model.
    ///
    /// # Panics
    ///
    /// Panics if `state.bins` does not hold exactly 16 × 256 entries —
    /// decoded checkpoints validate the length before constructing a
    /// [`CpaState`], so this only fires on hand-built state.
    pub fn restore_raw(&mut self, state: &CpaState) -> Result<(), CpaRestoreError> {
        if self.model.name() != state.model_name {
            return Err(CpaRestoreError {
                ours: self.model.name(),
                theirs: state.model_name.clone(),
            });
        }
        assert_eq!(state.bins.len(), 16 * 256, "CpaState must carry 16x256 bins");
        for (bin, &(count, sum_t)) in self.bins.iter_mut().flatten().zip(&state.bins) {
            *bin = Bin { count, sum_t };
        }
        self.n = state.n;
        self.sum_t = state.sum_t;
        self.sum_tt = state.sum_tt;
        Ok(())
    }

    /// Pearson correlation for (`byte_index`, `guess`).
    ///
    /// # Panics
    ///
    /// Panics if `byte_index >= 16`.
    #[must_use]
    pub fn correlation(&self, byte_index: usize, guess: u8) -> f64 {
        let mut corr = [0.0f64; 256];
        self.correlations_into(byte_index, &mut corr);
        corr[guess as usize]
    }

    /// Correlations for all 256 guesses of one key byte.
    ///
    /// # Panics
    ///
    /// Panics if `byte_index >= 16`.
    #[must_use]
    pub fn correlations(&self, byte_index: usize) -> [f64; 256] {
        let mut out = [0.0f64; 256];
        self.correlations_into(byte_index, &mut out);
        out
    }

    /// As [`Self::correlations`], writing into a caller-owned buffer —
    /// the rank trackers and adaptive early-stop loops call this per key
    /// byte, and the in-place form spares them a 2 KB return copy each.
    ///
    /// The sweep is branch-free and vectorized: the per-value bins are
    /// flattened once into two dense `f64` arrays (count, Σ value), then
    /// `CorrSweep` runs the three Σ reductions per guess as unit-stride
    /// multiply-adds on the runtime-dispatched SIMD backend (AVX2 / NEON /
    /// scalar — see the crate docs' *SIMD dispatch & autotuning* section).
    /// Lanes map one-to-one onto guesses, so per-guess addition order is
    /// untouched and the result is **bit-identical** across backends and
    /// unroll widths (and to the historical scalar skip-empty loop: empty
    /// bins contribute exact `±0.0` terms, which never perturb a partial
    /// sum that starts at `+0.0`).
    ///
    /// # Panics
    ///
    /// Panics if `byte_index >= 16`.
    pub fn correlations_into(&self, byte_index: usize, out: &mut [f64; 256]) {
        self.correlations_into_impl(byte_index, out, false);
    }

    /// As [`Self::correlations_into`], pinned to the scalar fallback
    /// backend regardless of host capabilities or `PSC_SIMD`. This is the
    /// reference side of the simd == scalar bit-identity proptests and the
    /// baseline leg of the kernel benchmarks; analysis code should call
    /// [`Self::correlations_into`].
    ///
    /// # Panics
    ///
    /// Panics if `byte_index >= 16`.
    pub fn correlations_into_scalar(&self, byte_index: usize, out: &mut [f64; 256]) {
        self.correlations_into_impl(byte_index, out, true);
    }

    fn correlations_into_impl(&self, byte_index: usize, out: &mut [f64; 256], force_scalar: bool) {
        let bins = &self.bins[byte_index];
        out.fill(0.0);
        let Some((n, var_t)) = self.moment_guards() else { return };
        let mut cnt = [0.0f64; 256];
        let mut st = [0.0f64; 256];
        Self::flatten_bins(bins, &mut cnt, &mut st);
        let sweep = CorrSweep {
            rows: &self.table.rows,
            cnt: &cnt,
            st: &st,
            sum_t: self.sum_t,
            n,
            var_t,
            unroll: self.unroll,
            out,
        };
        if force_scalar {
            pulp::dispatch_scalar(sweep);
        } else {
            pulp::dispatch(sweep);
        }
    }

    /// The degenerate-input guards shared by every sweep entry point:
    /// `None` when no correlation is defined (fewer than 2 traces, or a
    /// constant value column), else `(n, var_t)`.
    fn moment_guards(&self) -> Option<(f64, f64)> {
        if self.n < 2 {
            return None;
        }
        let n = self.n as f64;
        let var_t = self.sum_tt - self.sum_t * self.sum_t / n;
        if var_t <= 0.0 {
            return None;
        }
        Some((n, var_t))
    }

    fn flatten_bins(bins: &[Bin; 256], cnt: &mut [f64; 256], st: &mut [f64; 256]) {
        for (bin, (c, s)) in bins.iter().zip(cnt.iter_mut().zip(st.iter_mut())) {
            *c = bin.count as f64;
            *s = bin.sum_t;
        }
    }

    /// Correlations for all 256 guesses of **all 16 key bytes** in one
    /// call: the degenerate-input guards, the bin flattening, and the SIMD
    /// dispatch frame are paid once instead of 16 times, which is what the
    /// rank sweeps ([`Self::ranks`], [`Self::best_guesses`]) want. Each
    /// byte's 256 correlations are bit-identical to a per-byte
    /// [`Self::correlations_into`] call.
    pub fn correlations_all_into(&self, out: &mut [[f64; 256]; 16]) {
        self.correlations_all_into_impl(out, false);
    }

    /// As [`Self::correlations_all_into`], pinned to the scalar fallback —
    /// the reference side of bit-identity tests and benches.
    pub fn correlations_all_into_scalar(&self, out: &mut [[f64; 256]; 16]) {
        self.correlations_all_into_impl(out, true);
    }

    fn correlations_all_into_impl(&self, out: &mut [[f64; 256]; 16], force_scalar: bool) {
        for o in out.iter_mut() {
            o.fill(0.0);
        }
        let Some((n, var_t)) = self.moment_guards() else { return };
        let mut cnt = [[0.0f64; 256]; 16];
        let mut st = [[0.0f64; 256]; 16];
        for ((bins, c), s) in self.bins.iter().zip(cnt.iter_mut()).zip(st.iter_mut()) {
            Self::flatten_bins(bins, c, s);
        }
        let sweep = CorrSweepAll {
            rows: &self.table.rows,
            cnt: &cnt,
            st: &st,
            sum_t: self.sum_t,
            n,
            var_t,
            unroll: self.unroll,
            out,
        };
        if force_scalar {
            pulp::dispatch_scalar(sweep);
        } else {
            pulp::dispatch(sweep);
        }
    }

    /// Guesses of one byte ranked by descending (signed) correlation — the
    /// paper's ranking rule. Signed ranking matters: under an HW model the
    /// complement guess correlates at exactly −r, so ranking by |r| would
    /// create a permanent tie at the top.
    #[must_use]
    pub fn ranked_guesses(&self, byte_index: usize) -> Vec<u8> {
        let mut corr = [0.0f64; 256];
        self.correlations_into(byte_index, &mut corr);
        let mut order: Vec<u8> = (0..=255).collect();
        order.sort_by(|&a, &b| corr[b as usize].total_cmp(&corr[a as usize]).then(a.cmp(&b)));
        order
    }

    /// 1-based rank of `true_byte` among all guesses for `byte_index`.
    ///
    /// Counts the guesses ordered strictly ahead of `true_byte` under the
    /// [`Self::ranked_guesses`] ordering (descending signed correlation,
    /// ties broken by ascending guess) — no 256-entry sort or allocation.
    #[must_use]
    pub fn rank_of(&self, byte_index: usize, true_byte: u8) -> usize {
        let mut corr = [0.0f64; 256];
        self.correlations_into(byte_index, &mut corr);
        Self::rank_in(&corr, true_byte)
    }

    fn rank_in(corr: &[f64; 256], true_byte: u8) -> usize {
        let target = corr[true_byte as usize];
        let mut rank = 1;
        for (g, c) in corr.iter().enumerate() {
            match c.total_cmp(&target) {
                core::cmp::Ordering::Greater => rank += 1,
                core::cmp::Ordering::Equal if (g as u8) < true_byte => rank += 1,
                _ => {}
            }
        }
        rank
    }

    /// Ranks of all 16 bytes of `true_round_key` (the round key matching
    /// [`PowerModel::recovered_round`]). One
    /// [`Self::correlations_all_into`] sweep serves all 16 bytes, so the
    /// guard checks, bin flatten and dispatch frame amortize across the
    /// whole rank vector.
    #[must_use]
    pub fn ranks(&self, true_round_key: &[u8; 16]) -> [usize; 16] {
        let mut corr = [[0.0f64; 256]; 16];
        self.correlations_all_into(&mut corr);
        core::array::from_fn(|b| Self::rank_in(&corr[b], true_round_key[b]))
    }

    /// The best guess and its correlation for every key byte — a whole-key
    /// [`Self::best_guess`] sweep amortized through
    /// [`Self::correlations_all_into`].
    #[must_use]
    pub fn best_guesses(&self) -> [(u8, f64); 16] {
        let mut corr = [[0.0f64; 256]; 16];
        self.correlations_all_into(&mut corr);
        core::array::from_fn(|b| Self::best_in(&corr[b]))
    }

    /// The best guess and its correlation for one byte. Single
    /// [`Self::correlations`] evaluation, scanned with the
    /// [`Self::ranked_guesses`] ordering (first on ties).
    #[must_use]
    pub fn best_guess(&self, byte_index: usize) -> (u8, f64) {
        let mut corr = [0.0f64; 256];
        self.correlations_into(byte_index, &mut corr);
        Self::best_in(&corr)
    }

    fn best_in(corr: &[f64; 256]) -> (u8, f64) {
        let mut best = 0usize;
        for (g, c) in corr.iter().enumerate().skip(1) {
            if c.total_cmp(&corr[best]) == core::cmp::Ordering::Greater {
                best = g;
            }
        }
        (best as u8, corr[best])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{PowerModel, Rd0Hw, Rd10Hw};
    use psc_aes::Aes;

    /// A noiseless synthetic channel: value = HW(pt ⊕ key) summed over all
    /// 16 bytes. Rd0-HW CPA must recover every byte at rank 1.
    fn synthetic_rd0_traces(key: &[u8; 16], n: usize) -> TraceSet {
        let aes = Aes::new(key).unwrap();
        let mut set = TraceSet::new("synthetic");
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        for _ in 0..n {
            let mut pt = [0u8; 16];
            for b in pt.iter_mut() {
                // xorshift64 PRNG, dependency-free.
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                *b = (state >> 32) as u8;
            }
            let trace = aes.encrypt_traced(&pt);
            let value: u32 = trace.round0_addkey().iter().map(|&x| x.count_ones()).sum();
            set.push(Trace {
                value: f64::from(value),
                plaintext: pt,
                ciphertext: trace.ciphertext,
            });
        }
        set
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn noiseless_rd0_recovers_whole_key() {
        let key: [u8; 16] = core::array::from_fn(|i| (i * 19 + 41) as u8);
        let set = synthetic_rd0_traces(&key, 4000);
        let mut cpa = Cpa::new(Box::new(Rd0Hw));
        cpa.add_set(&set);
        let ranks = cpa.ranks(&key);
        assert_eq!(ranks, [1usize; 16], "ranks {ranks:?}");
        for b in 0..16 {
            let (guess, r) = cpa.best_guess(b);
            assert_eq!(guess, key[b]);
            assert!(r > 0.2, "byte {b} correlation {r}");
        }
    }

    #[test]
    fn rd10_model_recovers_round10_key_from_its_own_leakage() {
        // Channel leaks HW of the last-round input: Rd10-HW must find k10.
        let key: [u8; 16] = core::array::from_fn(|i| (i * 7 + 99) as u8);
        let aes = Aes::new(&key).unwrap();
        let k10 = *aes.schedule().round_key(10);
        let mut set = TraceSet::new("synthetic-rd10");
        let mut state = 0xDEAD_BEEF_CAFE_F00Du64;
        for _ in 0..4000 {
            let mut pt = [0u8; 16];
            for b in pt.iter_mut() {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                *b = (state >> 24) as u8;
            }
            let trace = aes.encrypt_traced(&pt);
            let value: u32 = trace.last_round_input().iter().map(|&x| x.count_ones()).sum();
            set.push(Trace {
                value: f64::from(value),
                plaintext: pt,
                ciphertext: trace.ciphertext,
            });
        }
        let mut cpa = Cpa::new(Box::new(Rd10Hw));
        cpa.add_set(&set);
        let ranks = cpa.ranks(&k10);
        assert_eq!(ranks, [1usize; 16], "ranks {ranks:?}");
    }

    #[test]
    fn pure_noise_gives_random_ranks() {
        let key = [0x42u8; 16];
        let aes = Aes::new(&key).unwrap();
        let mut set = TraceSet::new("noise");
        let mut state = 0x0BAD_5EED_0BAD_5EEDu64;
        for i in 0..4000 {
            let mut pt = [0u8; 16];
            for b in pt.iter_mut() {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                *b = (state >> 16) as u8;
            }
            let ct = aes.encrypt_block(&pt);
            // Value unrelated to the data.
            set.push(Trace { value: f64::from(i % 97), plaintext: pt, ciphertext: ct });
        }
        let mut cpa = Cpa::new(Box::new(Rd0Hw));
        cpa.add_set(&set);
        let ranks = cpa.ranks(&key);
        let mean_rank = ranks.iter().sum::<usize>() as f64 / 16.0;
        // Uniform ranks average ≈128.5; allow a very wide band.
        assert!(mean_rank > 40.0, "noise should not recover the key: {ranks:?}");
    }

    #[test]
    fn binned_correlation_matches_direct_pearson() {
        let key = [7u8; 16];
        let set = synthetic_rd0_traces(&key, 500);
        let mut cpa = Cpa::new(Box::new(Rd0Hw));
        cpa.add_set(&set);
        // Direct computation for a few (byte, guess) pairs.
        for &(b, g) in &[(0usize, 0u8), (3, 0x42), (15, 0xFF), (7, key[7])] {
            let hyp: Vec<f64> =
                set.iter().map(|t| Rd0Hw.hypothesis(&t.plaintext, &t.ciphertext, b, g)).collect();
            let vals: Vec<f64> = set.iter().map(|t| t.value).collect();
            let direct = crate::stats::pearson(&hyp, &vals);
            let binned = cpa.correlation(b, g);
            assert!((direct - binned).abs() < 1e-9, "b={b} g={g}: {direct} vs {binned}");
        }
    }

    #[test]
    fn empty_accumulator_is_neutral() {
        let cpa = Cpa::new(Box::new(Rd0Hw));
        assert_eq!(cpa.trace_count(), 0);
        assert_eq!(cpa.correlation(0, 0), 0.0);
        let ranked = cpa.ranked_guesses(0);
        assert_eq!(ranked.len(), 256);
        // Deterministic tie-break: ascending guess order.
        assert_eq!(ranked[0], 0);
        assert_eq!(ranked[255], 255);
    }

    #[test]
    fn ranks_are_one_based_permutation_positions() {
        let key = [1u8; 16];
        let set = synthetic_rd0_traces(&key, 300);
        let mut cpa = Cpa::new(Box::new(Rd0Hw));
        cpa.add_set(&set);
        for b in 0..16 {
            for probe in [0u8, 17, 255] {
                let rank = cpa.rank_of(b, probe);
                assert!((1..=256).contains(&rank));
            }
        }
    }

    #[test]
    fn shared_table_matches_private_table_exactly() {
        let key = [0x6Bu8; 16];
        let set = synthetic_rd0_traces(&key, 600);
        let mut private = Cpa::new(Box::new(Rd0Hw));
        private.add_set(&set);
        let table = std::sync::Arc::clone(private.shared_table());
        let mut shared = Cpa::with_table(Box::new(Rd0Hw), table);
        shared.add_set(&set);
        for b in 0..16 {
            let pc = private.correlations(b);
            let sc = shared.correlations(b);
            for g in 0..256 {
                assert_eq!(pc[g].to_bits(), sc[g].to_bits(), "byte {b} guess {g}");
            }
        }
        assert_eq!(private.ranks(&key), shared.ranks(&key));
    }

    #[test]
    #[should_panic(expected = "hypothesis table model mismatch")]
    fn foreign_table_is_rejected() {
        let table = std::sync::Arc::new(HypTable::for_model(&Rd0Hw));
        let _ = Cpa::with_table(Box::new(Rd10Hw), table);
    }

    #[test]
    fn rank_of_matches_sorted_position() {
        let key = [0x21u8; 16];
        let set = synthetic_rd0_traces(&key, 400);
        let mut cpa = Cpa::new(Box::new(Rd0Hw));
        cpa.add_set(&set);
        for b in [0usize, 5, 15] {
            let order = cpa.ranked_guesses(b);
            for probe in [0u8, 0x21, 0x80, 255] {
                let sorted_rank = order.iter().position(|&g| g == probe).unwrap() + 1;
                assert_eq!(cpa.rank_of(b, probe), sorted_rank, "byte {b} probe {probe}");
            }
        }
    }

    #[test]
    fn best_guess_matches_top_ranked() {
        let key = [0x99u8; 16];
        let set = synthetic_rd0_traces(&key, 400);
        let mut cpa = Cpa::new(Box::new(Rd0Hw));
        cpa.add_set(&set);
        for b in 0..16 {
            let (g, r) = cpa.best_guess(b);
            assert_eq!(g, cpa.ranked_guesses(b)[0]);
            assert_eq!(r, cpa.correlation(b, g));
        }
        // Tie behaviour (empty accumulator → all-zero correlations): the
        // lowest guess wins, matching ranked_guesses' tie-break.
        let empty = Cpa::new(Box::new(Rd0Hw));
        assert_eq!(empty.best_guess(3).0, 0);
        assert_eq!(empty.rank_of(3, 0), 1);
        assert_eq!(empty.rank_of(3, 255), 256);
    }

    #[test]
    fn add_block_matches_sequential_add_trace_bitwise() {
        let key = [0x5Du8; 16];
        let set = synthetic_rd0_traces(&key, 777);
        let mut sequential = Cpa::new(Box::new(Rd0Hw));
        sequential.add_set(&set);
        let table = std::sync::Arc::clone(sequential.shared_table());
        let mut blocked = Cpa::with_table(Box::new(Rd0Hw), table);
        let pts: Vec<[u8; 16]> = set.iter().map(|t| t.plaintext).collect();
        let cts: Vec<[u8; 16]> = set.iter().map(|t| t.ciphertext).collect();
        let vals: Vec<f64> = set.iter().map(|t| t.value).collect();
        // Uneven chunks, including an empty one.
        let mut offset = 0;
        for chunk in [300usize, 0, 256, 221] {
            blocked.add_block(
                &pts[offset..offset + chunk],
                &cts[offset..offset + chunk],
                &vals[offset..offset + chunk],
            );
            offset += chunk;
        }
        assert_eq!(blocked.trace_count(), sequential.trace_count());
        for b in 0..16 {
            let sc = sequential.correlations(b);
            let bc = blocked.correlations(b);
            for g in 0..256 {
                assert_eq!(sc[g].to_bits(), bc[g].to_bits(), "byte {b} guess {g}");
            }
        }
        assert_eq!(blocked.ranks(&key), sequential.ranks(&key));
    }

    #[test]
    fn correlations_into_matches_correlations_bitwise() {
        let key = [0xC3u8; 16];
        let set = synthetic_rd0_traces(&key, 450);
        let mut cpa = Cpa::new(Box::new(Rd0Hw));
        cpa.add_set(&set);
        let mut buf = [f64::NAN; 256];
        for b in 0..16 {
            let owned = cpa.correlations(b);
            cpa.correlations_into(b, &mut buf);
            for g in 0..256 {
                assert_eq!(owned[g].to_bits(), buf[g].to_bits(), "byte {b} guess {g}");
            }
        }
        // The degenerate early returns must also clear the buffer.
        let empty = Cpa::new(Box::new(Rd0Hw));
        let mut buf = [f64::NAN; 256];
        empty.correlations_into(0, &mut buf);
        assert_eq!(buf, [0.0f64; 256]);
    }

    #[test]
    fn simd_dispatch_matches_scalar_bitwise_across_unrolls() {
        let key = [0xA7u8; 16];
        let set = synthetic_rd0_traces(&key, 333);
        let mut cpa = Cpa::new(Box::new(Rd0Hw));
        cpa.add_set(&set);
        let mut reference = [f64::NAN; 256];
        let mut got = [f64::NAN; 256];
        for unroll in Cpa::UNROLL_WIDTHS {
            cpa.set_unroll(unroll);
            for b in 0..16 {
                cpa.correlations_into_scalar(b, &mut reference);
                cpa.correlations_into(b, &mut got);
                for g in 0..256 {
                    assert_eq!(
                        reference[g].to_bits(),
                        got[g].to_bits(),
                        "unroll {unroll} byte {b} guess {g}"
                    );
                }
            }
        }
        // Unroll width must not change bits either: compare widths pairwise
        // at the scalar backend (per-guess chains are private to a lane).
        cpa.set_unroll(4);
        cpa.correlations_into_scalar(0, &mut reference);
        for unroll in [2usize, 8] {
            cpa.set_unroll(unroll);
            cpa.correlations_into_scalar(0, &mut got);
            for g in 0..256 {
                assert_eq!(reference[g].to_bits(), got[g].to_bits(), "unroll {unroll} guess {g}");
            }
        }
    }

    #[test]
    fn correlations_all_into_matches_per_byte_bitwise() {
        let key = [0x3Eu8; 16];
        let set = synthetic_rd0_traces(&key, 400);
        let mut cpa = Cpa::new(Box::new(Rd0Hw));
        cpa.add_set(&set);
        let mut all = [[f64::NAN; 256]; 16];
        cpa.correlations_all_into(&mut all);
        let mut single = [f64::NAN; 256];
        for (b, all_b) in all.iter().enumerate() {
            cpa.correlations_into(b, &mut single);
            for g in 0..256 {
                assert_eq!(all_b[g].to_bits(), single[g].to_bits(), "byte {b} guess {g}");
            }
        }
        // Degenerate accumulators must clear the whole buffer.
        let empty = Cpa::new(Box::new(Rd0Hw));
        let mut all = [[f64::NAN; 256]; 16];
        empty.correlations_all_into(&mut all);
        assert_eq!(all, [[0.0f64; 256]; 16]);
        // best_guesses is the amortized best_guess sweep.
        assert_eq!(cpa.best_guesses(), core::array::from_fn(|b| cpa.best_guess(b)));
    }

    #[test]
    #[should_panic(expected = "unsupported CPA unroll width")]
    fn unroll_width_is_validated() {
        let mut cpa = Cpa::new(Box::new(Rd0Hw));
        cpa.set_unroll(3);
    }

    #[test]
    fn correlations_all_bounded() {
        let key = [9u8; 16];
        let set = synthetic_rd0_traces(&key, 200);
        let mut cpa = Cpa::new(Box::new(Rd0Hw));
        cpa.add_set(&set);
        for b in 0..16 {
            for r in cpa.correlations(b) {
                assert!((-1.0..=1.0).contains(&r));
            }
        }
    }
}
