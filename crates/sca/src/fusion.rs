//! Multi-channel trace fusion.
//!
//! The paper's attacker logs *all* the selected SMC keys on every window
//! (§3.3: "Values of all the selected SMC keys are measured and logged"),
//! but analyzes each channel independently. Since every power key carries
//! the same underlying signal with independent measurement noise, fusing
//! them improves SNR: z-score each channel (so different gains and noise
//! floors become comparable) and average. With `k` channels of comparable
//! quality the fused correlation improves by up to √k.

use crate::stats::RunningMoments;
use crate::trace::{Trace, TraceSet};

/// Errors from [`fuse_z`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FusionError {
    /// No input channels given.
    Empty,
    /// Channels have different trace counts.
    LengthMismatch,
    /// Channels disagree on the plaintext/ciphertext at some index — they
    /// were not collected in the same campaign.
    RecordMismatch {
        /// The first disagreeing trace index.
        index: usize,
    },
    /// A channel has zero variance (cannot be z-scored).
    DegenerateChannel {
        /// The offending channel's label.
        label: String,
    },
}

impl core::fmt::Display for FusionError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FusionError::Empty => write!(f, "no channels to fuse"),
            FusionError::LengthMismatch => write!(f, "channels have different trace counts"),
            FusionError::RecordMismatch { index } => {
                write!(f, "channels disagree on plaintext/ciphertext at trace {index}")
            }
            FusionError::DegenerateChannel { label } => {
                write!(f, "channel {label} has zero variance")
            }
        }
    }
}

impl std::error::Error for FusionError {}

/// Fuse channels by per-channel z-scoring and averaging. All channels must
/// come from the same campaign (same plaintext/ciphertext sequence).
///
/// # Errors
///
/// See [`FusionError`].
pub fn fuse_z(channels: &[&TraceSet]) -> Result<TraceSet, FusionError> {
    let first = channels.first().ok_or(FusionError::Empty)?;
    let n = first.len();
    for set in channels {
        if set.len() != n {
            return Err(FusionError::LengthMismatch);
        }
    }
    for i in 0..n {
        let reference = &first.traces()[i];
        for set in &channels[1..] {
            let t = &set.traces()[i];
            if t.plaintext != reference.plaintext || t.ciphertext != reference.ciphertext {
                return Err(FusionError::RecordMismatch { index: i });
            }
        }
    }

    // Per-channel standardization parameters.
    let mut params = Vec::with_capacity(channels.len());
    for set in channels {
        let mut m = RunningMoments::new();
        m.extend(set.iter().map(|t| t.value));
        let sd = m.std_dev();
        if sd <= 0.0 {
            return Err(FusionError::DegenerateChannel { label: set.label.clone() });
        }
        params.push((m.mean(), sd));
    }

    let label = {
        let names: Vec<&str> = channels.iter().map(|s| s.label.as_str()).collect();
        format!("fused({})", names.join("+"))
    };
    let mut out = TraceSet::with_capacity(label, n);
    let k = channels.len() as f64;
    for i in 0..n {
        let reference = &first.traces()[i];
        let fused = channels
            .iter()
            .zip(&params)
            .map(|(set, (mean, sd))| (set.traces()[i].value - mean) / sd)
            .sum::<f64>()
            / k;
        out.push(Trace {
            value: fused,
            plaintext: reference.plaintext,
            ciphertext: reference.ciphertext,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel(label: &str, gain: f64, offset: f64, noise_seed: u64, n: usize) -> TraceSet {
        // Shared signal + per-channel pseudo-noise.
        let mut state = noise_seed | 1;
        let mut noise = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 33) as f64 / f64::from(1u32 << 30)) - 4.0
        };
        let mut set = TraceSet::new(label);
        for i in 0..n {
            let signal = f64::from((i % 17) as u32); // shared across channels
            set.push(Trace {
                value: offset + gain * signal + noise(),
                plaintext: [(i % 251) as u8; 16],
                ciphertext: [(i % 241) as u8; 16],
            });
        }
        set
    }

    #[test]
    fn fusion_improves_correlation_for_comparable_channels() {
        // Equal-weight z-fusion is the right tool when channels have
        // comparable SNR (as the paper's power keys roughly do): with k
        // independent-noise channels the correlation improves toward √k.
        let n = 5000;
        let a = channel("A", 0.4, 10.0, 11, n);
        let b = channel("B", 0.4, -5.0, 22, n);
        let c = channel("C", 0.4, 0.0, 33, n);
        let fused = fuse_z(&[&a, &b, &c]).unwrap();
        assert_eq!(fused.len(), n);
        assert_eq!(fused.label, "fused(A+B+C)");

        let signal: Vec<f64> = (0..n).map(|i| f64::from((i % 17) as u32)).collect();
        let corr = |set: &TraceSet| crate::stats::pearson(&set.values(), &signal).abs();
        let fused_r = corr(&fused);
        for set in [&a, &b, &c] {
            assert!(fused_r > corr(set), "fused {fused_r} must beat {} ({})", set.label, corr(set));
        }
    }

    #[test]
    fn fusion_of_unequal_channels_tracks_the_average() {
        // With one strong and two weak channels, equal-weight fusion sits
        // between the best and worst inputs — documented behaviour (use
        // weights for the general case).
        let n = 5000;
        let strong = channel("S", 2.0, 0.0, 44, n);
        let weak1 = channel("w1", 0.2, 0.0, 55, n);
        let weak2 = channel("w2", 0.2, 0.0, 66, n);
        let fused = fuse_z(&[&strong, &weak1, &weak2]).unwrap();
        let signal: Vec<f64> = (0..n).map(|i| f64::from((i % 17) as u32)).collect();
        let corr = |set: &TraceSet| crate::stats::pearson(&set.values(), &signal).abs();
        assert!(corr(&fused) > corr(&weak1));
        assert!(corr(&fused) < corr(&strong));
    }

    #[test]
    fn fused_values_are_standardized() {
        let a = channel("A", 1.0, 100.0, 1, 2000);
        let fused = fuse_z(&[&a]).unwrap();
        let mut m = RunningMoments::new();
        m.extend(fused.iter().map(|t| t.value));
        assert!(m.mean().abs() < 1e-9);
        assert!((m.std_dev() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let a = channel("A", 1.0, 0.0, 1, 100);
        let b = channel("B", 1.0, 0.0, 2, 99);
        assert_eq!(fuse_z(&[&a, &b]), Err(FusionError::LengthMismatch));
    }

    #[test]
    fn mismatched_records_rejected() {
        let a = channel("A", 1.0, 0.0, 1, 50);
        let mut b = channel("B", 1.0, 0.0, 2, 50);
        // Corrupt one plaintext.
        let mut traces: Vec<Trace> = b.traces().to_vec();
        traces[7].plaintext[0] ^= 1;
        b = traces.into_iter().collect();
        assert_eq!(fuse_z(&[&a, &b]), Err(FusionError::RecordMismatch { index: 7 }));
    }

    #[test]
    fn degenerate_channel_rejected() {
        let a = channel("A", 1.0, 0.0, 1, 50);
        let flat: TraceSet = (0..50)
            .map(|i| Trace {
                value: 3.0,
                plaintext: [(i % 251) as u8; 16],
                ciphertext: [(i % 241) as u8; 16],
            })
            .collect();
        let mut flat = flat;
        flat.label = "flat".to_owned();
        assert_eq!(
            fuse_z(&[&a, &flat]),
            Err(FusionError::DegenerateChannel { label: "flat".to_owned() })
        );
    }

    #[test]
    fn empty_input_rejected() {
        assert_eq!(fuse_z(&[]), Err(FusionError::Empty));
    }
}
