//! Key-byte ranks and Guessing Entropy.
//!
//! The paper reports, per key byte, the 1-based rank of the correct value
//! among all 256 guesses (rank 1 = recovered, rank < 10 = "nearly
//! recovered"), and aggregates the 16 ranks into a **Guessing Entropy**:
//!
//! > GE = Σᵢ log₂(rankᵢ)   (bits)
//!
//! This is the log of the estimated full-key enumeration effort; GE = 0
//! means every byte ranked first, i.e. complete key recovery. (Table 4's
//! PHPC column — ranks {7,7,1,11,5,4,4,13,1,37,1,1,1,4,1,26} with
//! GE = 31.0 — confirms this is the paper's aggregation.)

use crate::cpa::Cpa;
use crate::trace::TraceSet;
use serde::{Deserialize, Serialize};

/// Rank threshold the paper highlights red (recovered).
pub const RECOVERED_RANK: usize = 1;
/// Rank threshold the paper highlights yellow (nearly recovered).
pub const NEAR_RECOVERY_RANK: usize = 10;

/// Guessing entropy (bits) of a set of per-byte ranks.
///
/// # Panics
///
/// Panics if any rank is zero (ranks are 1-based).
///
/// # Examples
///
/// ```
/// use psc_sca::rank::guessing_entropy;
/// assert_eq!(guessing_entropy(&[1; 16]), 0.0);
/// assert_eq!(guessing_entropy(&[2; 16]), 16.0);
/// ```
#[must_use]
pub fn guessing_entropy(ranks: &[usize; 16]) -> f64 {
    ranks
        .iter()
        .map(|&r| {
            assert!(r >= 1, "ranks are 1-based");
            (r as f64).log2()
        })
        .sum()
}

/// Number of bytes at rank 1 / rank ≤ 10 (the paper's red/yellow tallies).
#[must_use]
pub fn recovery_tally(ranks: &[usize; 16]) -> (usize, usize) {
    let recovered = ranks.iter().filter(|&&r| r == RECOVERED_RANK).count();
    let near = ranks.iter().filter(|&&r| r > RECOVERED_RANK && r <= NEAR_RECOVERY_RANK).count();
    (recovered, near)
}

/// Success rate across repeated independent attacks: the fraction of
/// repetitions that fully recovered the key (every byte at rank 1).
///
/// # Examples
///
/// ```
/// use psc_sca::rank::full_recovery_rate;
/// let runs = [[1usize; 16], [1; 16], [2; 16]];
/// assert!((full_recovery_rate(&runs) - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn full_recovery_rate(rank_sets: &[[usize; 16]]) -> f64 {
    if rank_sets.is_empty() {
        return 0.0;
    }
    let successes = rank_sets.iter().filter(|r| r.iter().all(|&x| x == 1)).count();
    successes as f64 / rank_sets.len() as f64
}

/// o-th order success rate: fraction of repetitions where *every* byte
/// ranked within `max_rank` (the enumeration-feasibility criterion).
#[must_use]
pub fn bounded_rank_rate(rank_sets: &[[usize; 16]], max_rank: usize) -> f64 {
    if rank_sets.is_empty() {
        return 0.0;
    }
    let successes = rank_sets.iter().filter(|r| r.iter().all(|&x| x <= max_rank)).count();
    successes as f64 / rank_sets.len() as f64
}

/// One point of a GE-vs-trace-count curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GePoint {
    /// Number of traces consumed.
    pub traces: usize,
    /// Guessing entropy at that point, bits.
    pub ge: f64,
}

/// A GE convergence curve for one (channel, model) pair — the content of
/// the paper's Figure 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeCurve {
    /// Channel label (e.g. `PHPC (M2)`).
    pub channel: String,
    /// Model name (e.g. `Rd0-HW`).
    pub model: String,
    /// Curve points, ascending in trace count.
    pub points: Vec<GePoint>,
}

impl GeCurve {
    /// Final GE (last checkpoint), or 128·... the maximum if empty.
    #[must_use]
    pub fn final_ge(&self) -> f64 {
        self.points.last().map_or(16.0 * 8.0, |p| p.ge)
    }

    /// Whether the curve decreased from its first to its last checkpoint by
    /// at least `margin_bits` — the paper's notion of "converging".
    #[must_use]
    pub fn converges_by(&self, margin_bits: f64) -> bool {
        match (self.points.first(), self.points.last()) {
            (Some(first), Some(last)) => first.ge - last.ge >= margin_bits,
            _ => false,
        }
    }
}

/// Run CPA over `traces` with snapshots at `checkpoints` (ascending trace
/// counts), producing the GE curve against `true_round_key`.
///
/// The accumulator is streamed once; checkpoints cost one rank evaluation
/// each.
#[must_use]
pub fn ge_curve(
    mut cpa: Cpa,
    traces: &TraceSet,
    true_round_key: &[u8; 16],
    checkpoints: &[usize],
) -> GeCurve {
    let model = cpa.model().name().to_owned();
    let mut points = Vec::with_capacity(checkpoints.len());
    let mut next_checkpoint = 0usize;
    for (i, trace) in traces.iter().enumerate() {
        cpa.add_trace(trace);
        let n = i + 1;
        while next_checkpoint < checkpoints.len() && checkpoints[next_checkpoint] == n {
            points.push(GePoint { traces: n, ge: guessing_entropy(&cpa.ranks(true_round_key)) });
            next_checkpoint += 1;
        }
    }
    // A trailing checkpoint at the full set size if not already present.
    if points.last().is_none_or(|p| p.traces != traces.len()) && !traces.is_empty() {
        points.push(GePoint {
            traces: traces.len(),
            ge: guessing_entropy(&cpa.ranks(true_round_key)),
        });
    }
    GeCurve { channel: traces.label.clone(), model, points }
}

/// Measurements-to-disclosure: the smallest checkpointed trace count at
/// which the GE curve falls to or below `threshold_bits` (and stays there
/// for the remainder of the curve). `None` if never reached — the metric
/// security evaluators quote alongside GE curves.
///
/// # Examples
///
/// ```
/// use psc_sca::rank::{measurements_to_disclosure, GeCurve, GePoint};
/// let curve = GeCurve {
///     channel: "PHPC".into(),
///     model: "Rd0-HW".into(),
///     points: vec![
///         GePoint { traces: 100, ge: 90.0 },
///         GePoint { traces: 1000, ge: 10.0 },
///         GePoint { traces: 10000, ge: 0.0 },
///     ],
/// };
/// assert_eq!(measurements_to_disclosure(&curve, 16.0), Some(1000));
/// assert_eq!(measurements_to_disclosure(&curve, -1.0), None);
/// ```
#[must_use]
pub fn measurements_to_disclosure(curve: &GeCurve, threshold_bits: f64) -> Option<usize> {
    let mut candidate: Option<usize> = None;
    for p in &curve.points {
        if p.ge <= threshold_bits {
            candidate.get_or_insert(p.traces);
        } else {
            candidate = None; // bounced back above the threshold
        }
    }
    candidate
}

/// Logarithmically spaced checkpoints from `min` to `max` (inclusive),
/// deduplicated — the x-axis of Fig. 1.
#[must_use]
pub fn log_checkpoints(min: usize, max: usize, per_decade: usize) -> Vec<usize> {
    assert!(min >= 1 && max >= min && per_decade >= 1, "invalid checkpoint spec");
    let mut out = Vec::new();
    let lmin = (min as f64).log10();
    let lmax = (max as f64).log10();
    let steps = ((lmax - lmin) * per_decade as f64).ceil() as usize + 1;
    for i in 0..=steps {
        let l = lmin + (lmax - lmin) * i as f64 / steps as f64;
        let n = 10f64.powf(l).round() as usize;
        out.push(n.clamp(min, max));
    }
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpa::Cpa;
    use crate::model::Rd0Hw;
    use crate::trace::Trace;
    use psc_aes::Aes;

    #[test]
    fn ge_matches_paper_table4_phpc_column() {
        let ranks: [usize; 16] = [7, 7, 1, 11, 5, 4, 4, 13, 1, 37, 1, 1, 1, 4, 1, 26];
        let ge = guessing_entropy(&ranks);
        assert!((ge - 31.0).abs() < 0.05, "GE {ge} should reproduce the paper's 31.0");
    }

    #[test]
    fn ge_zero_iff_full_recovery() {
        assert_eq!(guessing_entropy(&[1; 16]), 0.0);
        let mut ranks = [1usize; 16];
        ranks[5] = 2;
        assert!(guessing_entropy(&ranks) > 0.0);
    }

    #[test]
    fn ge_maximum_is_128_bits() {
        assert_eq!(guessing_entropy(&[256; 16]), 128.0);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_rank_panics() {
        let _ = guessing_entropy(&[0; 16]);
    }

    #[test]
    fn tally_counts_red_and_yellow() {
        let ranks: [usize; 16] = [1, 1, 1, 2, 9, 10, 11, 100, 1, 1, 1, 3, 200, 1, 1, 5];
        let (recovered, near) = recovery_tally(&ranks);
        assert_eq!(recovered, 8);
        assert_eq!(near, 5, "ranks 2, 9, 10, 3, 5 fall in the (1, 10] band");
    }

    #[test]
    fn log_checkpoints_ascending_unique() {
        let cps = log_checkpoints(100, 100_000, 4);
        assert!(cps.len() > 8);
        assert_eq!(*cps.first().unwrap(), 100);
        assert_eq!(*cps.last().unwrap(), 100_000);
        for w in cps.windows(2) {
            assert!(w[0] < w[1], "{cps:?}");
        }
    }

    #[test]
    #[should_panic(expected = "invalid checkpoint spec")]
    fn bad_checkpoint_spec_panics() {
        let _ = log_checkpoints(0, 10, 2);
    }

    #[test]
    fn curve_converges_on_clean_synthetic_channel() {
        let key: [u8; 16] = core::array::from_fn(|i| (i * 23 + 5) as u8);
        let aes = Aes::new(&key).unwrap();
        let mut set = TraceSet::new("clean");
        let mut state = 42u64;
        for _ in 0..3000 {
            let mut pt = [0u8; 16];
            for b in pt.iter_mut() {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                *b = (state >> 40) as u8;
            }
            let trace = aes.encrypt_traced(&pt);
            let value: u32 = trace.round0_addkey().iter().map(|&x| x.count_ones()).sum();
            set.push(Trace {
                value: f64::from(value),
                plaintext: pt,
                ciphertext: trace.ciphertext,
            });
        }
        let curve = ge_curve(Cpa::new(Box::new(Rd0Hw)), &set, &key, &[100, 500, 1000, 3000]);
        assert_eq!(curve.model, "Rd0-HW");
        assert_eq!(curve.points.len(), 4);
        assert!(curve.converges_by(10.0), "{:?}", curve.points);
        assert_eq!(curve.final_ge(), 0.0, "noiseless channel fully recovers");
    }

    #[test]
    fn curve_appends_final_checkpoint() {
        let set: TraceSet = (0..10)
            .map(|i| Trace { value: f64::from(i), plaintext: [i as u8; 16], ciphertext: [0; 16] })
            .collect();
        let curve = ge_curve(Cpa::new(Box::new(Rd0Hw)), &set, &[0u8; 16], &[5]);
        assert_eq!(curve.points.len(), 2);
        assert_eq!(curve.points[1].traces, 10);
    }

    #[test]
    fn mtd_requires_staying_below_threshold() {
        let curve = GeCurve {
            channel: "x".into(),
            model: "m".into(),
            points: vec![
                GePoint { traces: 100, ge: 20.0 },
                GePoint { traces: 200, ge: 10.0 }, // dips…
                GePoint { traces: 400, ge: 30.0 }, // …bounces back
                GePoint { traces: 800, ge: 8.0 },
                GePoint { traces: 1600, ge: 2.0 },
            ],
        };
        assert_eq!(measurements_to_disclosure(&curve, 16.0), Some(800));
        assert_eq!(measurements_to_disclosure(&curve, 1.0), None);
        let empty = GeCurve { channel: "x".into(), model: "m".into(), points: vec![] };
        assert_eq!(measurements_to_disclosure(&empty, 16.0), None);
    }

    #[test]
    fn success_rates() {
        let runs = [[1usize; 16], [1; 16], {
            let mut r = [1usize; 16];
            r[3] = 7;
            r
        }];
        assert!((full_recovery_rate(&runs) - 2.0 / 3.0).abs() < 1e-12);
        assert!((bounded_rank_rate(&runs, 10) - 1.0).abs() < 1e-12);
        assert!((bounded_rank_rate(&runs, 3) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(full_recovery_rate(&[]), 0.0);
        assert_eq!(bounded_rank_rate(&[], 5), 0.0);
    }

    #[test]
    fn empty_curve_defaults() {
        let curve = GeCurve { channel: "x".into(), model: "m".into(), points: vec![] };
        assert_eq!(curve.final_ge(), 128.0);
        assert!(!curve.converges_by(1.0));
    }
}
