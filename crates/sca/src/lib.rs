//! # psc-sca — side-channel analysis toolkit
//!
//! The attacker-side mathematics of the paper, independent of where the
//! traces came from (simulated SMC keys here; real hardware in the paper):
//!
//! * [`stats`] — streaming Welford moments, Welch's t, Pearson correlation;
//! * [`trace`] — known-plaintext trace records and sets;
//! * [`tvla`] — Test Vector Leakage Assessment: the fixed-plaintext 3×3
//!   t-score matrices of Tables 3/5/6 with TP/TN/FP/FN classification;
//! * [`model`] — the CPA hypothesis models `Rd0-HW`, `Rd10-HW`, `Rd10-HD`;
//! * [`cpa`] — streaming Correlation Power Analysis with class binning;
//! * [`rank`] — key-byte ranks, Guessing Entropy (Σ log₂ rank), and the
//!   GE-vs-traces curves of Figure 1.
//!
//! ## Example: CPA on a synthetic leaky channel
//!
//! ```
//! use psc_sca::cpa::Cpa;
//! use psc_sca::model::Rd0Hw;
//! use psc_sca::trace::{Trace, TraceSet};
//! use psc_aes::Aes;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let key = [0x2Bu8; 16];
//! let aes = Aes::new(&key)?;
//! let mut traces = TraceSet::new("demo");
//! for i in 0u32..2000 {
//!     let pt: [u8; 16] = core::array::from_fn(|b| (i as u8).wrapping_mul(37).wrapping_add((b as u8).wrapping_mul(29)));
//!     let t = aes.encrypt_traced(&pt);
//!     let hw: u32 = t.round0_addkey().iter().map(|&x| x.count_ones()).sum();
//!     traces.push(Trace { value: hw as f64, plaintext: pt, ciphertext: t.ciphertext });
//! }
//! let mut cpa = Cpa::new(Box::new(Rd0Hw));
//! cpa.add_set(&traces);
//! let ranks = cpa.ranks(&key);
//! assert!(ranks.iter().all(|&r| r <= 256));
//! # Ok(())
//! # }
//! ```
//!
//! ## SIMD dispatch & autotuning
//!
//! The three hot analysis kernels — the CPA correlation sweep
//! ([`Cpa::correlations_into`] / [`Cpa::correlations_all_into`]), the
//! masked 4-lane Welford column ingestion ([`stats::MomentsQuad`]) and
//! the 4-lane Welch-t sweep ([`stats::welch_t_x4`]) — run on the
//! vendored `pulp` portable-SIMD shim: one generic kernel, dispatched at
//! runtime to AVX2 (x86-64), NEON (aarch64) or a scalar fallback with
//! the identical lane layout. Every lane is a private addition chain in
//! row order and no FMA contraction is used, so **results are
//! bit-identical across backends and unroll widths** — pinned by
//! `*_scalar` twin entry points and the `simd_props` proptests. Set
//! `PSC_SIMD=off` to force the scalar backend; the unroll width of the
//! correlation sweep ([`Cpa::set_unroll`]) is chosen per machine by the
//! `psc-core` autotuner.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod codec;
pub mod cpa;
pub mod enumerate;
pub mod filter;
pub mod fusion;
pub mod model;
pub mod rank;
pub mod stats;
pub mod trace;
pub mod tvla;

pub use checkpoint::{CheckpointError, PayloadReader, PayloadWriter, Section, CHECKPOINT_VERSION};
pub use cpa::{Cpa, CpaMergeError, CpaRestoreError, CpaState};
pub use enumerate::{verify_with_pair, KeyEnumerator};
pub use model::{paper_models, PowerModel, Rd0Hw, Rd10Hd, Rd10Hw, RecoveredRound};
pub use rank::{ge_curve, guessing_entropy, GeCurve, GePoint};
pub use stats::{pearson, welch_t, Correlation, RunningMoments};
pub use trace::{Trace, TraceSet};
pub use tvla::{
    PlaintextClass, TvlaAccumulator, TvlaCell, TvlaMatrix, TvlaOutcome, TVLA_THRESHOLD,
};
