//! CPA hypothesis power models (§3.4 of the paper).
//!
//! The attacker posits that the measured power correlates with the Hamming
//! weight/distance of an intermediate AES state reachable from known data
//! (plaintext or ciphertext) and a single unknown key byte:
//!
//! * [`Rd0Hw`] — HW after the first AddRoundKey (`pt ⊕ k₀`), recovering the
//!   initial round key. Converges fastest in the paper (Fig. 1).
//! * [`Rd10Hw`] — HW before the last round's SubBytes
//!   (`InvSBox(ct ⊕ k₁₀)`), recovering the round-10 key. Converges slower.
//! * [`Rd10Hd`] — HD between last-round input and ciphertext. Does not
//!   converge in the paper (nor here: the simulated datapath has no
//!   register-overwrite leakage).

use psc_aes::hamming::hw_u8;
use psc_aes::sbox::inv_sub_byte;

/// A per-byte hypothesis model.
///
/// All of the paper's models share a crucial structure that
/// [`crate::cpa::Cpa`] exploits: the hypothesis for `(byte_index, guess)`
/// depends on attacker-visible data only through a **single byte**
/// ([`Self::input_byte`]). The accumulator can therefore bin traces by that
/// byte value (256 bins) instead of evaluating all 256 guesses per trace.
pub trait PowerModel: Send + Sync + core::fmt::Debug {
    /// Short identifier (used in reports: `Rd0-HW`, `Rd10-HW`, `Rd10-HD`).
    fn name(&self) -> &'static str;

    /// The attacker-visible byte the hypothesis for `byte_index` depends on.
    fn input_byte(&self, plaintext: &[u8; 16], ciphertext: &[u8; 16], byte_index: usize) -> u8;

    /// Hypothetical leakage as a function of that input byte and the guess.
    fn hypothesis_value(&self, input: u8, guess: u8) -> f64;

    /// Hypothetical leakage for `guess` at `byte_index` (derived).
    fn hypothesis(
        &self,
        plaintext: &[u8; 16],
        ciphertext: &[u8; 16],
        byte_index: usize,
        guess: u8,
    ) -> f64 {
        self.hypothesis_value(self.input_byte(plaintext, ciphertext, byte_index), guess)
    }

    /// Which actual key byte a correct guess corresponds to: the round-0
    /// key for plaintext-side models, the round-10 key for
    /// ciphertext-side models.
    fn recovered_round(&self) -> RecoveredRound;
}

/// Which round key a model recovers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecoveredRound {
    /// The initial (round 0) AddRoundKey key — equals the AES-128 key.
    Round0,
    /// The final (round 10) round key.
    Round10,
}

/// Hamming weight after the initial AddRoundKey.
#[derive(Debug, Clone, Copy, Default)]
pub struct Rd0Hw;

impl PowerModel for Rd0Hw {
    fn name(&self) -> &'static str {
        "Rd0-HW"
    }

    fn input_byte(&self, pt: &[u8; 16], _ct: &[u8; 16], byte_index: usize) -> u8 {
        pt[byte_index]
    }

    fn hypothesis_value(&self, input: u8, guess: u8) -> f64 {
        f64::from(hw_u8(input ^ guess))
    }

    fn recovered_round(&self) -> RecoveredRound {
        RecoveredRound::Round0
    }
}

/// Hamming weight of the state entering the final SubBytes.
#[derive(Debug, Clone, Copy, Default)]
pub struct Rd10Hw;

impl PowerModel for Rd10Hw {
    fn name(&self) -> &'static str {
        "Rd10-HW"
    }

    fn input_byte(&self, _pt: &[u8; 16], ct: &[u8; 16], byte_index: usize) -> u8 {
        ct[byte_index]
    }

    fn hypothesis_value(&self, input: u8, guess: u8) -> f64 {
        f64::from(hw_u8(inv_sub_byte(input ^ guess)))
    }

    fn recovered_round(&self) -> RecoveredRound {
        RecoveredRound::Round10
    }
}

/// Hamming distance between last-round input and ciphertext.
#[derive(Debug, Clone, Copy, Default)]
pub struct Rd10Hd;

impl PowerModel for Rd10Hd {
    fn name(&self) -> &'static str {
        "Rd10-HD"
    }

    fn input_byte(&self, _pt: &[u8; 16], ct: &[u8; 16], byte_index: usize) -> u8 {
        ct[byte_index]
    }

    fn hypothesis_value(&self, input: u8, guess: u8) -> f64 {
        let last_round_input = inv_sub_byte(input ^ guess);
        f64::from(hw_u8(last_round_input ^ input))
    }

    fn recovered_round(&self) -> RecoveredRound {
        RecoveredRound::Round10
    }
}

/// The three models of the paper, in its presentation order.
#[must_use]
pub fn paper_models() -> Vec<Box<dyn PowerModel>> {
    vec![Box::new(Rd0Hw), Box::new(Rd10Hw), Box::new(Rd10Hd)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_aes::Aes;

    #[test]
    fn rd0_hypothesis_is_hw_of_xor() {
        let pt = [0xA5u8; 16];
        let ct = [0u8; 16];
        assert_eq!(Rd0Hw.hypothesis(&pt, &ct, 3, 0xA5), 0.0, "guess == pt byte → HW 0");
        assert_eq!(Rd0Hw.hypothesis(&pt, &ct, 3, !0xA5), 8.0);
    }

    #[test]
    fn rd0_correct_guess_matches_true_state() {
        // For the true key, the hypothesis must equal the HW of the actual
        // round-0 state byte.
        let key: [u8; 16] = core::array::from_fn(|i| (i * 17 + 3) as u8);
        let aes = Aes::new(&key).unwrap();
        let pt: [u8; 16] = core::array::from_fn(|i| (i * 31 + 7) as u8);
        let trace = aes.encrypt_traced(&pt);
        let rd0 = trace.round0_addkey();
        for b in 0..16 {
            assert_eq!(
                Rd0Hw.hypothesis(&pt, &trace.ciphertext, b, key[b]),
                f64::from(psc_aes::hamming::hw_u8(rd0[b]))
            );
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn rd10_correct_guess_matches_true_state() {
        // For the true round-10 key byte, the Rd10-HW hypothesis equals the
        // HW of the true last-round-input byte at the matching position.
        let key: [u8; 16] = core::array::from_fn(|i| (i * 13 + 5) as u8);
        let aes = Aes::new(&key).unwrap();
        let pt = [0x5Au8; 16];
        let trace = aes.encrypt_traced(&pt);
        let k10 = aes.schedule().round_key(10);
        let last_in = trace.last_round_input();
        for i in 0..16usize {
            // ct index i = row r, col c; the pre-SubBytes byte sits at
            // j = r + 4*((c + r) % 4) before ShiftRows moved it.
            let (r, c) = (i % 4, i / 4);
            let j = r + 4 * ((c + r) % 4);
            let hyp = Rd10Hw.hypothesis(&pt, &trace.ciphertext, i, k10[i]);
            assert_eq!(hyp, f64::from(psc_aes::hamming::hw_u8(last_in[j])), "byte {i}");
        }
    }

    #[test]
    fn rd10hd_zero_when_states_equal() {
        // If InvSBox(ct ⊕ guess) == ct byte, distance is zero.
        let ct = [0x63u8; 16]; // SBox(0) = 0x63
        let pt = [0u8; 16];
        // guess such that ct ^ guess = 0x63's SBox preimage... directly:
        // InvSbox(0x63 ^ g) == 0x63 → 0x63 ^ g = Sbox(0x63) = 0xFB → g = 0x98.
        assert_eq!(Rd10Hd.hypothesis(&pt, &ct, 0, 0x98), 0.0);
    }

    #[test]
    fn hypotheses_bounded_zero_to_eight() {
        let pt: [u8; 16] = core::array::from_fn(|i| (i * 29) as u8);
        let ct: [u8; 16] = core::array::from_fn(|i| (i * 41 + 11) as u8);
        for model in paper_models() {
            for b in 0..16 {
                for g in 0..=255u8 {
                    let h = model.hypothesis(&pt, &ct, b, g);
                    assert!((0.0..=8.0).contains(&h), "{} b={b} g={g} h={h}", model.name());
                }
            }
        }
    }

    #[test]
    fn model_names_and_rounds() {
        assert_eq!(Rd0Hw.name(), "Rd0-HW");
        assert_eq!(Rd10Hw.name(), "Rd10-HW");
        assert_eq!(Rd10Hd.name(), "Rd10-HD");
        assert_eq!(Rd0Hw.recovered_round(), RecoveredRound::Round0);
        assert_eq!(Rd10Hw.recovered_round(), RecoveredRound::Round10);
        assert_eq!(Rd10Hd.recovered_round(), RecoveredRound::Round10);
        assert_eq!(paper_models().len(), 3);
    }
}
