//! Numerically stable streaming statistics.
//!
//! Everything downstream (TVLA's Welch t-test, CPA's Pearson correlation)
//! runs over up to millions of traces, so all estimators here are one-pass
//! with Welford-style updates.

use pulp::{F64x4, Simd, WithSimd};
use serde::{Deserialize, Serialize};

/// Welford running mean/variance accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RunningMoments {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningMoments {
    /// Empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Add many observations.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, xs: I) {
        for x in xs {
            self.push(x);
        }
    }

    /// Add a dense slice of observations — the telemetry block pipeline's
    /// slice-ingestion path. The Welford state lives in locals for the
    /// whole sweep (no per-sample store/reload of `self`), and every
    /// operation matches [`Self::push`] exactly, so the stream is
    /// **bit-identical** to pushing the values one by one.
    pub fn extend_slice(&mut self, xs: &[f64]) {
        let mut n = self.n;
        let mut mean = self.mean;
        let mut m2 = self.m2;
        for &x in xs {
            n += 1;
            let delta = x - mean;
            mean += delta / n as f64;
            m2 += delta * (x - mean);
        }
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 until two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// The raw Welford state `(n, mean, m2)` — the exact words a
    /// checkpoint must persist for [`Self::from_raw`] to resume the
    /// stream bit-identically.
    #[must_use]
    pub fn raw(&self) -> (u64, f64, f64) {
        (self.n, self.mean, self.m2)
    }

    /// Rebuild an accumulator from raw state captured by [`Self::raw`].
    #[must_use]
    pub fn from_raw(n: u64, mean: f64, m2: f64) -> Self {
        Self { n, mean, m2 }
    }

    /// Merge two accumulators (parallel collection).
    #[must_use]
    pub fn merged(self, other: Self) -> Self {
        if self.n == 0 {
            return other;
        }
        if other.n == 0 {
            return self;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        Self { n, mean, m2 }
    }
}

/// Four independent Welford chains advanced in lockstep — the vector form
/// of four [`RunningMoments`] (e.g. four telemetry channels' TVLA cells
/// ingesting one columnar block together).
///
/// Each lane is a private `(n, mean, m2)` dependency chain; a row advances
/// a lane only where that lane's column holds a sample (denied reads are
/// `None`), via masked select. Per lane, the operations and their order
/// are exactly [`RunningMoments::push`] over the lane's present values, so
/// the result is **bit-identical** to four independent scalar
/// accumulators under every SIMD backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MomentsQuad {
    /// Per-lane counts, kept as exact small integers in f64.
    n: [f64; 4],
    mean: [f64; 4],
    m2: [f64; 4],
}

impl MomentsQuad {
    /// Pack four accumulators into lockstep lanes.
    #[must_use]
    pub fn load(lanes: [RunningMoments; 4]) -> Self {
        Self { n: lanes.map(|m| m.n as f64), mean: lanes.map(|m| m.mean), m2: lanes.map(|m| m.m2) }
    }

    /// Unpack the four lanes back into scalar accumulators.
    #[must_use]
    pub fn store(self) -> [RunningMoments; 4] {
        core::array::from_fn(|i| RunningMoments {
            n: self.n[i] as u64,
            mean: self.mean[i],
            m2: self.m2[i],
        })
    }

    /// Ingest one row per index across four columns: lane `k` pushes
    /// `cols[k][i]` when present and is untouched when the read was denied
    /// (`None`). Runs on the runtime-dispatched SIMD backend.
    ///
    /// # Panics
    ///
    /// Panics if the four columns differ in length.
    pub fn extend_columns(&mut self, cols: [&[Option<f64>]; 4]) {
        pulp::dispatch(ExtendColumns { quad: self, cols });
    }

    /// As [`Self::extend_columns`], pinned to the scalar fallback — the
    /// reference side of the simd == scalar bit-identity proptests.
    ///
    /// # Panics
    ///
    /// Panics if the four columns differ in length.
    pub fn extend_columns_scalar(&mut self, cols: [&[Option<f64>]; 4]) {
        pulp::dispatch_scalar(ExtendColumns { quad: self, cols });
    }
}

/// Masked lockstep Welford over four sample columns.
struct ExtendColumns<'a> {
    quad: &'a mut MomentsQuad,
    cols: [&'a [Option<f64>]; 4],
}

impl WithSimd for ExtendColumns<'_> {
    type Output = ();

    #[inline(always)]
    fn with_simd<S: Simd>(self) {
        let rows = self.cols[0].len();
        for col in &self.cols[1..] {
            assert_eq!(col.len(), rows, "lockstep columns must have equal lengths");
        }
        let zero = S::f64x4::splat(0.0);
        let one = S::f64x4::splat(1.0);
        let mut n = S::f64x4::from_array(self.quad.n);
        let mut mean = S::f64x4::from_array(self.quad.mean);
        let mut m2 = S::f64x4::from_array(self.quad.m2);
        for i in 0..rows {
            let cells = [self.cols[0][i], self.cols[1][i], self.cols[2][i], self.cols[3][i]];
            let x = S::f64x4::from_array(cells.map(|c| c.unwrap_or(0.0)));
            let present = S::f64x4::from_array(cells.map(|c| if c.is_some() { 1.0 } else { 0.0 }));
            let mask = present.gt(zero);
            // Per present lane this is exactly RunningMoments::push; the
            // masked lanes keep their old words (the garbage quotients
            // computed for them are blended away, never trapped on).
            let np = n + S::f64x4::select(mask, one, zero);
            let delta = x - mean;
            let mean_p = S::f64x4::select(mask, mean + delta / np, mean);
            let m2_p = S::f64x4::select(mask, m2 + delta * (x - mean_p), m2);
            n = np;
            mean = mean_p;
            m2 = m2_p;
        }
        self.quad.n = n.to_array();
        self.quad.mean = mean.to_array();
        self.quad.m2 = m2.to_array();
    }
}

/// Four Welch t statistics at once: `t[k] = welch_t(&a[k], &b[k])`, with
/// the degenerate guards (either count < 2, vanishing standard error)
/// applied per lane by masked select. For finite accumulator states the
/// lanes are **bit-identical** to four [`welch_t`] calls — the telemetry
/// TVLA matrix sweeps use this to fold 9 cells into 2 vector evaluations.
#[must_use]
pub fn welch_t_x4(a: &[RunningMoments; 4], b: &[RunningMoments; 4]) -> [f64; 4] {
    pulp::dispatch(WelchTx4 { a: *a, b: *b })
}

/// As [`welch_t_x4`], pinned to the scalar fallback backend.
#[must_use]
pub fn welch_t_x4_scalar(a: &[RunningMoments; 4], b: &[RunningMoments; 4]) -> [f64; 4] {
    pulp::dispatch_scalar(WelchTx4 { a: *a, b: *b })
}

struct WelchTx4 {
    a: [RunningMoments; 4],
    b: [RunningMoments; 4],
}

impl WithSimd for WelchTx4 {
    type Output = [f64; 4];

    #[inline(always)]
    fn with_simd<S: Simd>(self) -> [f64; 4] {
        let zero = S::f64x4::splat(0.0);
        let one = S::f64x4::splat(1.0);
        let two = S::f64x4::splat(2.0);
        let na = S::f64x4::from_array(self.a.map(|m| m.n as f64));
        let nb = S::f64x4::from_array(self.b.map(|m| m.n as f64));
        let ma = S::f64x4::from_array(self.a.map(|m| m.mean));
        let mb = S::f64x4::from_array(self.b.map(|m| m.mean));
        let m2a = S::f64x4::from_array(self.a.map(|m| m.m2));
        let m2b = S::f64x4::from_array(self.b.map(|m| m.m2));
        // variance(): m2 / (n - 1), zero below two observations. The n = 0
        // lanes divide by -1 harmlessly; the select discards them.
        let va = S::f64x4::select(na.ge(two), m2a / (na - one), zero);
        let vb = S::f64x4::select(nb.ge(two), m2b / (nb - one), zero);
        let se2 = va / na + vb / nb;
        let valid = na.ge(two).and(nb.ge(two)).and(se2.gt(zero));
        S::f64x4::select(valid, (ma - mb) / se2.sqrt(), zero).to_array()
    }
}

/// Welch's two-sample t statistic between accumulated samples `a` and `b`.
///
/// This is the statistic TVLA thresholds at |t| ≥ 4.5. Returns 0 when
/// either sample has fewer than 2 observations or both variances vanish.
///
/// # Examples
///
/// ```
/// use psc_sca::stats::{RunningMoments, welch_t};
/// let mut a = RunningMoments::new();
/// let mut b = RunningMoments::new();
/// a.extend([1.0, 2.0, 3.0]);
/// b.extend([1.0, 2.0, 3.0]);
/// assert_eq!(welch_t(&a, &b), 0.0);
/// ```
#[must_use]
pub fn welch_t(a: &RunningMoments, b: &RunningMoments) -> f64 {
    if a.count() < 2 || b.count() < 2 {
        return 0.0;
    }
    let se2 = a.variance() / a.count() as f64 + b.variance() / b.count() as f64;
    if se2 <= 0.0 {
        return 0.0;
    }
    (a.mean() - b.mean()) / se2.sqrt()
}

/// Welch–Satterthwaite degrees of freedom (reported alongside t-scores for
/// completeness; TVLA's 4.5 threshold assumes large samples).
#[must_use]
pub fn welch_df(a: &RunningMoments, b: &RunningMoments) -> f64 {
    if a.count() < 2 || b.count() < 2 {
        return 0.0;
    }
    let va = a.variance() / a.count() as f64;
    let vb = b.variance() / b.count() as f64;
    let denom = va * va / (a.count() - 1) as f64 + vb * vb / (b.count() - 1) as f64;
    if denom <= 0.0 {
        return 0.0;
    }
    (va + vb).powi(2) / denom
}

/// One-pass Pearson correlation accumulator between a hypothesis stream
/// `h` and a trace stream `t`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Correlation {
    n: u64,
    sum_h: f64,
    sum_t: f64,
    sum_hh: f64,
    sum_tt: f64,
    sum_ht: f64,
}

impl Correlation {
    /// Empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one (hypothesis, trace) pair.
    pub fn push(&mut self, h: f64, t: f64) {
        self.n += 1;
        self.sum_h += h;
        self.sum_t += t;
        self.sum_hh += h * h;
        self.sum_tt += t * t;
        self.sum_ht += h * t;
    }

    /// Number of pairs.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Merge two accumulators (parallel collection shards). Exact: the
    /// moment sums simply add, so `merge(a, b)` equals accumulating both
    /// streams into one accumulator up to floating-point reassociation.
    #[must_use]
    pub fn merged(self, other: Self) -> Self {
        Self {
            n: self.n + other.n,
            sum_h: self.sum_h + other.sum_h,
            sum_t: self.sum_t + other.sum_t,
            sum_hh: self.sum_hh + other.sum_hh,
            sum_tt: self.sum_tt + other.sum_tt,
            sum_ht: self.sum_ht + other.sum_ht,
        }
    }

    /// Pearson r (0 when undefined: fewer than 2 pairs or zero variance).
    #[must_use]
    pub fn r(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let n = self.n as f64;
        let cov = self.sum_ht - self.sum_h * self.sum_t / n;
        let var_h = self.sum_hh - self.sum_h * self.sum_h / n;
        let var_t = self.sum_tt - self.sum_t * self.sum_t / n;
        if var_h <= 0.0 || var_t <= 0.0 {
            return 0.0;
        }
        (cov / (var_h * var_t).sqrt()).clamp(-1.0, 1.0)
    }
}

/// Complementary error function (Abramowitz & Stegun 7.1.26, |ε| ≤ 1.5e-7).
#[must_use]
fn erfc(x: f64) -> f64 {
    let sign_positive = x >= 0.0;
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let result = poly * (-x * x).exp();
    if sign_positive {
        result
    } else {
        2.0 - result
    }
}

/// Two-sided p-value of a t-score under the large-sample normal
/// approximation (TVLA's regime: thousands of traces, so Student-t ≈ N).
/// The 4.5 threshold corresponds to p ≈ 6.8×10⁻⁶ per test — the basis of
/// TVLA's "99.999% confidence" claim the paper quotes.
///
/// # Examples
///
/// ```
/// use psc_sca::stats::p_value_two_sided;
/// assert!(p_value_two_sided(0.0) > 0.99);
/// let p_at_threshold = p_value_two_sided(4.5);
/// assert!(p_at_threshold < 1.0e-5 && p_at_threshold > 1.0e-7);
/// ```
#[must_use]
pub fn p_value_two_sided(t_score: f64) -> f64 {
    erfc(t_score.abs() / core::f64::consts::SQRT_2)
}

/// Fisher-z confidence interval for a Pearson correlation estimated from
/// `n` pairs: `tanh(atanh(r) ± z/√(n−3))`. Attackers use this to decide
/// whether a top-ranked guess is significantly separated from the runner-up
/// before spending enumeration effort.
///
/// Returns `(low, high)`; degenerate inputs (`n ≤ 3`, `|r| = 1`) return the
/// widest/narrowest sensible interval.
///
/// # Examples
///
/// ```
/// use psc_sca::stats::fisher_interval;
/// let (lo, hi) = fisher_interval(0.5, 100, 1.96);
/// assert!(lo < 0.5 && 0.5 < hi);
/// assert!(lo > 0.3 && hi < 0.65);
/// ```
#[must_use]
pub fn fisher_interval(r: f64, n: u64, z: f64) -> (f64, f64) {
    if n <= 3 {
        return (-1.0, 1.0);
    }
    let r = r.clamp(-0.999_999, 0.999_999);
    let fz = r.atanh();
    let se = 1.0 / ((n - 3) as f64).sqrt();
    ((fz - z * se).tanh(), (fz + z * se).tanh())
}

/// Batch Pearson correlation of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn pearson(h: &[f64], t: &[f64]) -> f64 {
    assert_eq!(h.len(), t.len(), "pearson requires equal lengths");
    let mut acc = Correlation::new();
    for (&x, &y) in h.iter().zip(t) {
        acc.push(x, y);
    }
    acc.r()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_match_textbook() {
        let mut m = RunningMoments::new();
        m.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(m.count(), 8);
        assert!((m.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic dataset is 32/7.
        assert!((m.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_are_safe() {
        let m = RunningMoments::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.variance(), 0.0);
        let mut one = RunningMoments::new();
        one.push(3.0);
        assert_eq!(one.variance(), 0.0);
    }

    #[test]
    fn extend_slice_matches_push_bitwise() {
        let data: Vec<f64> = (0..257).map(|i| (f64::from(i) * 0.71).sin() * 42.0 + 3.0).collect();
        let mut pushed = RunningMoments::new();
        for &x in &data {
            pushed.push(x);
        }
        let mut sliced = RunningMoments::new();
        sliced.extend_slice(&data[..100]);
        sliced.extend_slice(&[]);
        sliced.extend_slice(&data[100..]);
        assert_eq!(pushed.raw().0, sliced.raw().0);
        assert_eq!(pushed.raw().1.to_bits(), sliced.raw().1.to_bits());
        assert_eq!(pushed.raw().2.to_bits(), sliced.raw().2.to_bits());
    }

    #[test]
    fn moments_quad_matches_independent_lanes_bitwise() {
        // Four columns with different None (denied-read) patterns,
        // including an all-None lane.
        let rows = 113usize;
        let cols: [Vec<Option<f64>>; 4] = core::array::from_fn(|lane| {
            (0..rows)
                .map(|i| match lane {
                    0 => Some((i as f64 * 0.37).cos() * 5.0),
                    1 => (i % 3 != 0).then_some(i as f64 * 0.5 - 7.0),
                    2 => (i % 7 == 0).then(|| (i as f64).sqrt()),
                    _ => None,
                })
                .collect()
        });
        let col_refs: [&[Option<f64>]; 4] = core::array::from_fn(|k| cols[k].as_slice());
        let mut quad = MomentsQuad::load([RunningMoments::new(); 4]);
        quad.extend_columns(col_refs);
        let mut quad_scalar = MomentsQuad::load([RunningMoments::new(); 4]);
        quad_scalar.extend_columns_scalar(col_refs);
        let reference: [RunningMoments; 4] = core::array::from_fn(|k| {
            let mut m = RunningMoments::new();
            m.extend(cols[k].iter().copied().flatten());
            m
        });
        for (got, want) in [quad.store(), quad_scalar.store()].iter().flat_map(|lanes| {
            lanes.iter().copied().zip(reference.iter().copied()).collect::<Vec<_>>()
        }) {
            assert_eq!(got.raw().0, want.raw().0);
            assert_eq!(got.raw().1.to_bits(), want.raw().1.to_bits());
            assert_eq!(got.raw().2.to_bits(), want.raw().2.to_bits());
        }
    }

    #[test]
    fn welch_t_x4_matches_scalar_including_degenerates() {
        let filled = |xs: &[f64]| {
            let mut m = RunningMoments::new();
            m.extend_slice(xs);
            m
        };
        let a = [
            filled(&[1.0, 2.0, 3.5, 0.7, 2.2]),
            filled(&[]),              // n = 0
            filled(&[5.0]),           // n = 1
            filled(&[4.0, 4.0, 4.0]), // zero variance
        ];
        let b = [
            filled(&[0.5, 3.0, 2.5, 1.7, 2.9]),
            filled(&[1.0, 2.0, 3.0]),
            filled(&[1.0, 2.0, 3.0]),
            filled(&[4.0, 4.0]), // zero variance on both sides → se2 = 0
        ];
        let fast = welch_t_x4(&a, &b);
        let slow = welch_t_x4_scalar(&a, &b);
        for k in 0..4 {
            let want = welch_t(&a[k], &b[k]);
            assert_eq!(fast[k].to_bits(), want.to_bits(), "lane {k} dispatch");
            assert_eq!(slow[k].to_bits(), want.to_bits(), "lane {k} scalar");
        }
        assert_eq!(fast[1], 0.0);
        assert_eq!(fast[2], 0.0);
        assert_eq!(fast[3], 0.0);
    }

    #[test]
    fn merged_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningMoments::new();
        whole.extend(data.iter().copied());
        let mut left = RunningMoments::new();
        left.extend(data[..37].iter().copied());
        let mut right = RunningMoments::new();
        right.extend(data[37..].iter().copied());
        let merged = left.merged(right);
        assert_eq!(merged.count(), whole.count());
        assert!((merged.mean() - whole.mean()).abs() < 1e-12);
        assert!((merged.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merged_with_empty_is_identity() {
        let mut m = RunningMoments::new();
        m.extend([1.0, 2.0, 3.0]);
        assert_eq!(m.merged(RunningMoments::new()), m);
        assert_eq!(RunningMoments::new().merged(m), m);
    }

    #[test]
    fn welch_t_zero_for_identical() {
        let mut a = RunningMoments::new();
        let mut b = RunningMoments::new();
        a.extend([1.0, 2.0, 3.0, 4.0]);
        b.extend([4.0, 3.0, 2.0, 1.0]);
        assert_eq!(welch_t(&a, &b), 0.0);
    }

    #[test]
    fn welch_t_antisymmetric() {
        let mut a = RunningMoments::new();
        let mut b = RunningMoments::new();
        a.extend([1.0, 2.0, 3.0, 4.0, 5.0]);
        b.extend([2.0, 3.0, 4.0, 5.0, 7.0]);
        assert!((welch_t(&a, &b) + welch_t(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn welch_t_known_value() {
        // Two samples with known statistics: a = N(0) samples, b shifted.
        let mut a = RunningMoments::new();
        let mut b = RunningMoments::new();
        a.extend([0.0, 1.0, -1.0, 0.5, -0.5]); // mean 0, var 0.625
        b.extend([2.0, 3.0, 1.0, 2.5, 1.5]); // mean 2, var 0.625
        let t = welch_t(&a, &b);
        let expected = (0.0 - 2.0) / (0.625f64 / 5.0 + 0.625 / 5.0).sqrt();
        assert!((t - expected).abs() < 1e-12);
    }

    #[test]
    fn welch_t_translation_invariant() {
        let xs = [1.0, 2.0, 3.5, 0.7, 2.2];
        let ys = [0.5, 3.0, 2.5, 1.7, 2.9];
        let t_of = |shift: f64| {
            let mut a = RunningMoments::new();
            let mut b = RunningMoments::new();
            a.extend(xs.iter().map(|x| x + shift));
            b.extend(ys.iter().map(|y| y + shift));
            welch_t(&a, &b)
        };
        assert!((t_of(0.0) - t_of(1234.5)).abs() < 1e-8);
    }

    #[test]
    fn welch_df_reasonable() {
        let mut a = RunningMoments::new();
        let mut b = RunningMoments::new();
        a.extend((0..50).map(f64::from));
        b.extend((0..50).map(|i| f64::from(i) * 1.1));
        let df = welch_df(&a, &b);
        assert!(df > 40.0 && df < 100.0, "df={df}");
    }

    #[test]
    fn correlation_perfect_positive_negative() {
        let xs: Vec<f64> = (0..64).map(f64::from).collect();
        let pos: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        let neg: Vec<f64> = xs.iter().map(|x| -0.5 * x + 7.0).collect();
        assert!((pearson(&xs, &pos) - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_zero_variance_is_zero() {
        let xs = [1.0, 1.0, 1.0, 1.0];
        let ys = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(pearson(&xs, &ys), 0.0);
    }

    #[test]
    fn correlation_incremental_matches_batch() {
        let h: Vec<f64> = (0..200).map(|i| ((i * 37) % 17) as f64).collect();
        let t: Vec<f64> = (0..200).map(|i| ((i * 53) % 23) as f64 + 0.25).collect();
        let mut acc = Correlation::new();
        for (&x, &y) in h.iter().zip(&t) {
            acc.push(x, y);
        }
        assert!((acc.r() - pearson(&h, &t)).abs() < 1e-12);
        assert_eq!(acc.count(), 200);
    }

    #[test]
    fn correlation_bounded() {
        let h: Vec<f64> = (0..500).map(|i| ((i * 7919) % 104_729) as f64).collect();
        let t: Vec<f64> = (0..500).map(|i| ((i * 104_729) % 7919) as f64).collect();
        let r = pearson(&h, &t);
        assert!((-1.0..=1.0).contains(&r));
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn pearson_length_mismatch_panics() {
        let _ = pearson(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn p_values_match_known_quantiles() {
        // Standard normal two-sided quantiles.
        assert!((p_value_two_sided(1.959_964) - 0.05).abs() < 1e-4);
        assert!((p_value_two_sided(2.575_829) - 0.01).abs() < 1e-4);
        assert!((p_value_two_sided(-1.959_964) - 0.05).abs() < 1e-4, "symmetric in sign");
        // The A&S 7.1.26 approximation carries ~1.5e-7 absolute error.
        assert!((p_value_two_sided(0.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn p_value_monotone_decreasing() {
        let mut prev = 1.1;
        for i in 0..100 {
            let p = p_value_two_sided(f64::from(i) * 0.1);
            assert!(p <= prev + 1e-12);
            prev = p;
        }
    }

    #[test]
    fn tvla_threshold_is_the_papers_confidence() {
        // |t| ≥ 4.5 ⇒ distinguishable with 99.999% confidence (§3.3).
        let p = p_value_two_sided(4.5);
        assert!(p < 1.0e-5, "p at threshold {p}");
    }

    #[test]
    fn fisher_interval_contains_r_and_shrinks_with_n() {
        let (lo_small, hi_small) = fisher_interval(0.3, 20, 1.96);
        let (lo_large, hi_large) = fisher_interval(0.3, 2000, 1.96);
        assert!(lo_small < 0.3 && 0.3 < hi_small);
        assert!(lo_large < 0.3 && 0.3 < hi_large);
        assert!(hi_large - lo_large < hi_small - lo_small, "more data → tighter");
    }

    #[test]
    fn fisher_interval_degenerate_inputs() {
        assert_eq!(fisher_interval(0.5, 2, 1.96), (-1.0, 1.0));
        let (lo, hi) = fisher_interval(1.0, 100, 1.96);
        assert!(lo > 0.99 && hi <= 1.0);
        let (lo, hi) = fisher_interval(-1.0, 100, 1.96);
        assert!(hi < -0.99 && lo >= -1.0);
    }

    #[test]
    fn fisher_interval_symmetric_in_sign() {
        let (lo_p, hi_p) = fisher_interval(0.4, 50, 1.96);
        let (lo_n, hi_n) = fisher_interval(-0.4, 50, 1.96);
        assert!((lo_p + hi_n).abs() < 1e-12);
        assert!((hi_p + lo_n).abs() < 1e-12);
    }
}
