//! Numerically stable streaming statistics.
//!
//! Everything downstream (TVLA's Welch t-test, CPA's Pearson correlation)
//! runs over up to millions of traces, so all estimators here are one-pass
//! with Welford-style updates.

use serde::{Deserialize, Serialize};

/// Welford running mean/variance accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RunningMoments {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningMoments {
    /// Empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Add many observations.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, xs: I) {
        for x in xs {
            self.push(x);
        }
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 until two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// The raw Welford state `(n, mean, m2)` — the exact words a
    /// checkpoint must persist for [`Self::from_raw`] to resume the
    /// stream bit-identically.
    #[must_use]
    pub fn raw(&self) -> (u64, f64, f64) {
        (self.n, self.mean, self.m2)
    }

    /// Rebuild an accumulator from raw state captured by [`Self::raw`].
    #[must_use]
    pub fn from_raw(n: u64, mean: f64, m2: f64) -> Self {
        Self { n, mean, m2 }
    }

    /// Merge two accumulators (parallel collection).
    #[must_use]
    pub fn merged(self, other: Self) -> Self {
        if self.n == 0 {
            return other;
        }
        if other.n == 0 {
            return self;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        Self { n, mean, m2 }
    }
}

/// Welch's two-sample t statistic between accumulated samples `a` and `b`.
///
/// This is the statistic TVLA thresholds at |t| ≥ 4.5. Returns 0 when
/// either sample has fewer than 2 observations or both variances vanish.
///
/// # Examples
///
/// ```
/// use psc_sca::stats::{RunningMoments, welch_t};
/// let mut a = RunningMoments::new();
/// let mut b = RunningMoments::new();
/// a.extend([1.0, 2.0, 3.0]);
/// b.extend([1.0, 2.0, 3.0]);
/// assert_eq!(welch_t(&a, &b), 0.0);
/// ```
#[must_use]
pub fn welch_t(a: &RunningMoments, b: &RunningMoments) -> f64 {
    if a.count() < 2 || b.count() < 2 {
        return 0.0;
    }
    let se2 = a.variance() / a.count() as f64 + b.variance() / b.count() as f64;
    if se2 <= 0.0 {
        return 0.0;
    }
    (a.mean() - b.mean()) / se2.sqrt()
}

/// Welch–Satterthwaite degrees of freedom (reported alongside t-scores for
/// completeness; TVLA's 4.5 threshold assumes large samples).
#[must_use]
pub fn welch_df(a: &RunningMoments, b: &RunningMoments) -> f64 {
    if a.count() < 2 || b.count() < 2 {
        return 0.0;
    }
    let va = a.variance() / a.count() as f64;
    let vb = b.variance() / b.count() as f64;
    let denom = va * va / (a.count() - 1) as f64 + vb * vb / (b.count() - 1) as f64;
    if denom <= 0.0 {
        return 0.0;
    }
    (va + vb).powi(2) / denom
}

/// One-pass Pearson correlation accumulator between a hypothesis stream
/// `h` and a trace stream `t`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Correlation {
    n: u64,
    sum_h: f64,
    sum_t: f64,
    sum_hh: f64,
    sum_tt: f64,
    sum_ht: f64,
}

impl Correlation {
    /// Empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one (hypothesis, trace) pair.
    pub fn push(&mut self, h: f64, t: f64) {
        self.n += 1;
        self.sum_h += h;
        self.sum_t += t;
        self.sum_hh += h * h;
        self.sum_tt += t * t;
        self.sum_ht += h * t;
    }

    /// Number of pairs.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Merge two accumulators (parallel collection shards). Exact: the
    /// moment sums simply add, so `merge(a, b)` equals accumulating both
    /// streams into one accumulator up to floating-point reassociation.
    #[must_use]
    pub fn merged(self, other: Self) -> Self {
        Self {
            n: self.n + other.n,
            sum_h: self.sum_h + other.sum_h,
            sum_t: self.sum_t + other.sum_t,
            sum_hh: self.sum_hh + other.sum_hh,
            sum_tt: self.sum_tt + other.sum_tt,
            sum_ht: self.sum_ht + other.sum_ht,
        }
    }

    /// Pearson r (0 when undefined: fewer than 2 pairs or zero variance).
    #[must_use]
    pub fn r(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let n = self.n as f64;
        let cov = self.sum_ht - self.sum_h * self.sum_t / n;
        let var_h = self.sum_hh - self.sum_h * self.sum_h / n;
        let var_t = self.sum_tt - self.sum_t * self.sum_t / n;
        if var_h <= 0.0 || var_t <= 0.0 {
            return 0.0;
        }
        (cov / (var_h * var_t).sqrt()).clamp(-1.0, 1.0)
    }
}

/// Complementary error function (Abramowitz & Stegun 7.1.26, |ε| ≤ 1.5e-7).
#[must_use]
fn erfc(x: f64) -> f64 {
    let sign_positive = x >= 0.0;
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let result = poly * (-x * x).exp();
    if sign_positive {
        result
    } else {
        2.0 - result
    }
}

/// Two-sided p-value of a t-score under the large-sample normal
/// approximation (TVLA's regime: thousands of traces, so Student-t ≈ N).
/// The 4.5 threshold corresponds to p ≈ 6.8×10⁻⁶ per test — the basis of
/// TVLA's "99.999% confidence" claim the paper quotes.
///
/// # Examples
///
/// ```
/// use psc_sca::stats::p_value_two_sided;
/// assert!(p_value_two_sided(0.0) > 0.99);
/// let p_at_threshold = p_value_two_sided(4.5);
/// assert!(p_at_threshold < 1.0e-5 && p_at_threshold > 1.0e-7);
/// ```
#[must_use]
pub fn p_value_two_sided(t_score: f64) -> f64 {
    erfc(t_score.abs() / core::f64::consts::SQRT_2)
}

/// Fisher-z confidence interval for a Pearson correlation estimated from
/// `n` pairs: `tanh(atanh(r) ± z/√(n−3))`. Attackers use this to decide
/// whether a top-ranked guess is significantly separated from the runner-up
/// before spending enumeration effort.
///
/// Returns `(low, high)`; degenerate inputs (`n ≤ 3`, `|r| = 1`) return the
/// widest/narrowest sensible interval.
///
/// # Examples
///
/// ```
/// use psc_sca::stats::fisher_interval;
/// let (lo, hi) = fisher_interval(0.5, 100, 1.96);
/// assert!(lo < 0.5 && 0.5 < hi);
/// assert!(lo > 0.3 && hi < 0.65);
/// ```
#[must_use]
pub fn fisher_interval(r: f64, n: u64, z: f64) -> (f64, f64) {
    if n <= 3 {
        return (-1.0, 1.0);
    }
    let r = r.clamp(-0.999_999, 0.999_999);
    let fz = r.atanh();
    let se = 1.0 / ((n - 3) as f64).sqrt();
    ((fz - z * se).tanh(), (fz + z * se).tanh())
}

/// Batch Pearson correlation of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn pearson(h: &[f64], t: &[f64]) -> f64 {
    assert_eq!(h.len(), t.len(), "pearson requires equal lengths");
    let mut acc = Correlation::new();
    for (&x, &y) in h.iter().zip(t) {
        acc.push(x, y);
    }
    acc.r()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_match_textbook() {
        let mut m = RunningMoments::new();
        m.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(m.count(), 8);
        assert!((m.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic dataset is 32/7.
        assert!((m.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_are_safe() {
        let m = RunningMoments::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.variance(), 0.0);
        let mut one = RunningMoments::new();
        one.push(3.0);
        assert_eq!(one.variance(), 0.0);
    }

    #[test]
    fn merged_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningMoments::new();
        whole.extend(data.iter().copied());
        let mut left = RunningMoments::new();
        left.extend(data[..37].iter().copied());
        let mut right = RunningMoments::new();
        right.extend(data[37..].iter().copied());
        let merged = left.merged(right);
        assert_eq!(merged.count(), whole.count());
        assert!((merged.mean() - whole.mean()).abs() < 1e-12);
        assert!((merged.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merged_with_empty_is_identity() {
        let mut m = RunningMoments::new();
        m.extend([1.0, 2.0, 3.0]);
        assert_eq!(m.merged(RunningMoments::new()), m);
        assert_eq!(RunningMoments::new().merged(m), m);
    }

    #[test]
    fn welch_t_zero_for_identical() {
        let mut a = RunningMoments::new();
        let mut b = RunningMoments::new();
        a.extend([1.0, 2.0, 3.0, 4.0]);
        b.extend([4.0, 3.0, 2.0, 1.0]);
        assert_eq!(welch_t(&a, &b), 0.0);
    }

    #[test]
    fn welch_t_antisymmetric() {
        let mut a = RunningMoments::new();
        let mut b = RunningMoments::new();
        a.extend([1.0, 2.0, 3.0, 4.0, 5.0]);
        b.extend([2.0, 3.0, 4.0, 5.0, 7.0]);
        assert!((welch_t(&a, &b) + welch_t(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn welch_t_known_value() {
        // Two samples with known statistics: a = N(0) samples, b shifted.
        let mut a = RunningMoments::new();
        let mut b = RunningMoments::new();
        a.extend([0.0, 1.0, -1.0, 0.5, -0.5]); // mean 0, var 0.625
        b.extend([2.0, 3.0, 1.0, 2.5, 1.5]); // mean 2, var 0.625
        let t = welch_t(&a, &b);
        let expected = (0.0 - 2.0) / (0.625f64 / 5.0 + 0.625 / 5.0).sqrt();
        assert!((t - expected).abs() < 1e-12);
    }

    #[test]
    fn welch_t_translation_invariant() {
        let xs = [1.0, 2.0, 3.5, 0.7, 2.2];
        let ys = [0.5, 3.0, 2.5, 1.7, 2.9];
        let t_of = |shift: f64| {
            let mut a = RunningMoments::new();
            let mut b = RunningMoments::new();
            a.extend(xs.iter().map(|x| x + shift));
            b.extend(ys.iter().map(|y| y + shift));
            welch_t(&a, &b)
        };
        assert!((t_of(0.0) - t_of(1234.5)).abs() < 1e-8);
    }

    #[test]
    fn welch_df_reasonable() {
        let mut a = RunningMoments::new();
        let mut b = RunningMoments::new();
        a.extend((0..50).map(f64::from));
        b.extend((0..50).map(|i| f64::from(i) * 1.1));
        let df = welch_df(&a, &b);
        assert!(df > 40.0 && df < 100.0, "df={df}");
    }

    #[test]
    fn correlation_perfect_positive_negative() {
        let xs: Vec<f64> = (0..64).map(f64::from).collect();
        let pos: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        let neg: Vec<f64> = xs.iter().map(|x| -0.5 * x + 7.0).collect();
        assert!((pearson(&xs, &pos) - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_zero_variance_is_zero() {
        let xs = [1.0, 1.0, 1.0, 1.0];
        let ys = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(pearson(&xs, &ys), 0.0);
    }

    #[test]
    fn correlation_incremental_matches_batch() {
        let h: Vec<f64> = (0..200).map(|i| ((i * 37) % 17) as f64).collect();
        let t: Vec<f64> = (0..200).map(|i| ((i * 53) % 23) as f64 + 0.25).collect();
        let mut acc = Correlation::new();
        for (&x, &y) in h.iter().zip(&t) {
            acc.push(x, y);
        }
        assert!((acc.r() - pearson(&h, &t)).abs() < 1e-12);
        assert_eq!(acc.count(), 200);
    }

    #[test]
    fn correlation_bounded() {
        let h: Vec<f64> = (0..500).map(|i| ((i * 7919) % 104_729) as f64).collect();
        let t: Vec<f64> = (0..500).map(|i| ((i * 104_729) % 7919) as f64).collect();
        let r = pearson(&h, &t);
        assert!((-1.0..=1.0).contains(&r));
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn pearson_length_mismatch_panics() {
        let _ = pearson(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn p_values_match_known_quantiles() {
        // Standard normal two-sided quantiles.
        assert!((p_value_two_sided(1.959_964) - 0.05).abs() < 1e-4);
        assert!((p_value_two_sided(2.575_829) - 0.01).abs() < 1e-4);
        assert!((p_value_two_sided(-1.959_964) - 0.05).abs() < 1e-4, "symmetric in sign");
        // The A&S 7.1.26 approximation carries ~1.5e-7 absolute error.
        assert!((p_value_two_sided(0.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn p_value_monotone_decreasing() {
        let mut prev = 1.1;
        for i in 0..100 {
            let p = p_value_two_sided(f64::from(i) * 0.1);
            assert!(p <= prev + 1e-12);
            prev = p;
        }
    }

    #[test]
    fn tvla_threshold_is_the_papers_confidence() {
        // |t| ≥ 4.5 ⇒ distinguishable with 99.999% confidence (§3.3).
        let p = p_value_two_sided(4.5);
        assert!(p < 1.0e-5, "p at threshold {p}");
    }

    #[test]
    fn fisher_interval_contains_r_and_shrinks_with_n() {
        let (lo_small, hi_small) = fisher_interval(0.3, 20, 1.96);
        let (lo_large, hi_large) = fisher_interval(0.3, 2000, 1.96);
        assert!(lo_small < 0.3 && 0.3 < hi_small);
        assert!(lo_large < 0.3 && 0.3 < hi_large);
        assert!(hi_large - lo_large < hi_small - lo_small, "more data → tighter");
    }

    #[test]
    fn fisher_interval_degenerate_inputs() {
        assert_eq!(fisher_interval(0.5, 2, 1.96), (-1.0, 1.0));
        let (lo, hi) = fisher_interval(1.0, 100, 1.96);
        assert!(lo > 0.99 && hi <= 1.0);
        let (lo, hi) = fisher_interval(-1.0, 100, 1.96);
        assert!(hi < -0.99 && lo >= -1.0);
    }

    #[test]
    fn fisher_interval_symmetric_in_sign() {
        let (lo_p, hi_p) = fisher_interval(0.4, 50, 1.96);
        let (lo_n, hi_n) = fisher_interval(-0.4, 50, 1.96);
        assert!((lo_p + hi_n).abs() < 1e-12);
        assert!((hi_p + lo_n).abs() < 1e-12);
    }
}
