//! Trace preprocessing filters.
//!
//! The paper's `PSTR` key fails CPA because the system rail *drifts*
//! slowly (Table 3's same-plaintext false positives; Table 4's random-ish
//! ranks). Drift is low-frequency; the per-trace leakage is white. An
//! attacker can therefore subtract a centered moving average from the
//! trace series — a high-pass filter — and recover much of the channel.
//! [`detrend_trace_set`] implements exactly that (traces must be kept in
//! collection order, which [`crate::trace::TraceSet`] preserves).

use crate::trace::{Trace, TraceSet};

/// Centered moving average with window `window` (forced odd by rounding
/// up); edges use the available neighbourhood.
///
/// # Panics
///
/// Panics if `window == 0`.
#[must_use]
pub fn moving_average(xs: &[f64], window: usize) -> Vec<f64> {
    assert!(window > 0, "window must be positive");
    let half = window / 2;
    let n = xs.len();
    // Prefix sums for O(n) evaluation.
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0.0);
    for &x in xs {
        prefix.push(prefix.last().expect("non-empty") + x);
    }
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            (prefix[hi] - prefix[lo]) / (hi - lo) as f64
        })
        .collect()
}

/// Subtract the centered moving average from each element (high-pass).
///
/// # Panics
///
/// Panics if `window == 0`.
#[must_use]
pub fn detrend(xs: &[f64], window: usize) -> Vec<f64> {
    let ma = moving_average(xs, window);
    xs.iter().zip(ma).map(|(x, m)| x - m).collect()
}

/// Detrend a trace set's values in collection order, keeping the
/// plaintext/ciphertext records aligned.
///
/// # Panics
///
/// Panics if `window == 0`.
#[must_use]
pub fn detrend_trace_set(set: &TraceSet, window: usize) -> TraceSet {
    let values = detrend(&set.values(), window);
    let mut out = TraceSet::with_capacity(set.label.clone(), set.len());
    for (t, v) in set.iter().zip(values) {
        out.push(Trace { value: v, plaintext: t.plaintext, ciphertext: t.ciphertext });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_of_constant_is_constant() {
        let xs = vec![3.5; 20];
        for w in [1, 3, 7, 21] {
            assert!(moving_average(&xs, w).iter().all(|&m| (m - 3.5).abs() < 1e-12));
        }
    }

    #[test]
    fn detrend_removes_linear_trend() {
        let xs: Vec<f64> = (0..200).map(|i| 0.5 * f64::from(i)).collect();
        let detrended = detrend(&xs, 21);
        // Away from the edges, a linear trend is removed exactly.
        for &v in &detrended[10..190] {
            assert!(v.abs() < 1e-9, "residual {v}");
        }
    }

    #[test]
    fn detrend_preserves_high_frequency_signal() {
        // Alternating ±1 plus slow drift: detrending keeps the alternation.
        let xs: Vec<f64> =
            (0..300).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 } + 0.01 * f64::from(i)).collect();
        let detrended = detrend(&xs, 31);
        for (i, &v) in detrended.iter().enumerate().skip(16).take(260) {
            let expected = if i % 2 == 0 { 1.0 } else { -1.0 };
            assert!((v - expected).abs() < 0.1, "i={i} v={v}");
        }
    }

    #[test]
    fn window_one_zeroes_everything() {
        let xs = [1.0, -2.0, 3.0];
        assert!(detrend(&xs, 1).iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(moving_average(&[], 5).is_empty());
        assert!(detrend(&[], 5).is_empty());
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = moving_average(&[1.0], 0);
    }

    #[test]
    fn trace_set_detrend_keeps_records_aligned() {
        let mut set = TraceSet::new("PSTR");
        for i in 0..50 {
            set.push(Trace {
                value: f64::from(i) * 0.2 + if i % 2 == 0 { 0.5 } else { -0.5 },
                plaintext: [i as u8; 16],
                ciphertext: [(i * 3) as u8; 16],
            });
        }
        let filtered = detrend_trace_set(&set, 11);
        assert_eq!(filtered.len(), set.len());
        assert_eq!(filtered.label, "PSTR");
        for (orig, filt) in set.iter().zip(filtered.iter()) {
            assert_eq!(orig.plaintext, filt.plaintext);
            assert_eq!(orig.ciphertext, filt.ciphertext);
        }
        // The drift component is largely gone in the middle.
        let mid: f64 = filtered.values()[10..40].iter().sum::<f64>() / 30.0;
        assert!(mid.abs() < 0.1, "mean after detrend {mid}");
    }
}
