//! Test Vector Leakage Assessment (TVLA) over SMC key value traces.
//!
//! §3.3 of the paper: collect trace sets for three chosen plaintext classes
//! (All 0s, All 1s, Random), **twice each** (the primed and unprimed sets
//! of Tables 3/5/6), then compute Welch's t between every primed/unprimed
//! pair. |t| ≥ 4.5 means statistically distinguishable at 99.999%
//! confidence. The color coding becomes the four outcome classes below.

use crate::stats::{welch_t, welch_t_x4, RunningMoments};
use serde::{Deserialize, Serialize};

// (TvlaTracker below relies on RunningMoments being mergeable; see
// `stats::RunningMoments::merged`.)

/// The TVLA distinguishability threshold.
pub const TVLA_THRESHOLD: f64 = 4.5;

/// The fixed plaintext classes of the paper's TVLA campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlaintextClass {
    /// 16 bytes of `0x00`.
    AllZeros,
    /// 16 bytes of `0xFF`.
    AllOnes,
    /// A fresh random plaintext per trace.
    Random,
}

impl PlaintextClass {
    /// The three classes in the paper's table order.
    pub const ALL: [PlaintextClass; 3] =
        [PlaintextClass::AllZeros, PlaintextClass::AllOnes, PlaintextClass::Random];

    /// Position of this class in [`Self::ALL`] — constant-time, for direct
    /// indexing of per-class accumulator arrays.
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            PlaintextClass::AllZeros => 0,
            PlaintextClass::AllOnes => 1,
            PlaintextClass::Random => 2,
        }
    }

    /// The label used in the paper's tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PlaintextClass::AllZeros => "All 0s",
            PlaintextClass::AllOnes => "All 1s",
            PlaintextClass::Random => "Random",
        }
    }

    /// The fixed plaintext for fixed classes; `None` for Random.
    #[must_use]
    pub fn fixed_plaintext(self) -> Option<[u8; 16]> {
        match self {
            PlaintextClass::AllZeros => Some([0x00; 16]),
            PlaintextClass::AllOnes => Some([0xFF; 16]),
            PlaintextClass::Random => None,
        }
    }
}

impl core::fmt::Display for PlaintextClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// Outcome classification of one TVLA cell, given ground truth about
/// whether the two datasets really used different data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TvlaOutcome {
    /// Different data, |t| ≥ threshold: leakage correctly detected.
    TruePositive,
    /// Same data, |t| < threshold: correctly indistinguishable.
    TrueNegative,
    /// Same data, |t| ≥ threshold: spurious distinguishability (drift!).
    FalsePositive,
    /// Different data, |t| < threshold: leakage missed.
    FalseNegative,
}

impl TvlaOutcome {
    /// Classify a t-score.
    #[must_use]
    pub fn classify(t_score: f64, truly_different: bool) -> Self {
        let distinguishable = t_score.abs() >= TVLA_THRESHOLD;
        match (truly_different, distinguishable) {
            (true, true) => TvlaOutcome::TruePositive,
            (true, false) => TvlaOutcome::FalseNegative,
            (false, true) => TvlaOutcome::FalsePositive,
            (false, false) => TvlaOutcome::TrueNegative,
        }
    }

    /// Whether this outcome is consistent with a *data-dependent* channel.
    #[must_use]
    pub fn supports_leakage(self) -> bool {
        matches!(self, TvlaOutcome::TruePositive | TvlaOutcome::TrueNegative)
    }
}

/// The nine Welch t-scores of a 3×3 TVLA matrix in row-major order:
/// `t[ri * 3 + ci] = welch_t(&second[ri], &first[ci])`. Three lockstep
/// [`welch_t_x4`] evaluations cover all nine cells (the third broadcasts the
/// final cell across its lanes). Bit-identical to nine [`welch_t`] calls —
/// the x4 lanes are themselves pinned bit-identical to the scalar formula,
/// so no cell takes a different rounding path.
pub fn welch_t_matrix(second: &[RunningMoments; 3], first: &[RunningMoments; 3]) -> [f64; 9] {
    let lanes = |idx: [usize; 4]| {
        let a = idx.map(|i| second[i / 3]);
        let b = idx.map(|i| first[i % 3]);
        welch_t_x4(&a, &b)
    };
    let lo = lanes([0, 1, 2, 3]);
    let hi = lanes([4, 5, 6, 7]);
    let last = lanes([8, 8, 8, 8]);
    [lo[0], lo[1], lo[2], lo[3], hi[0], hi[1], hi[2], hi[3], last[0]]
}

/// One cell of the 3×3 TVLA matrix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TvlaCell {
    /// Row class (the primed second collection).
    pub row: PlaintextClass,
    /// Column class (the first collection).
    pub column: PlaintextClass,
    /// Welch's t between the two datasets.
    pub t_score: f64,
    /// Classification against ground truth.
    pub outcome: TvlaOutcome,
}

/// The full 3×3 matrix for one channel (one SMC key / one probe).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TvlaMatrix {
    /// Channel label (e.g. `PHPC`).
    pub label: String,
    /// Cells in row-major order (rows = primed classes).
    pub cells: Vec<TvlaCell>,
}

impl TvlaMatrix {
    /// Compute the matrix from per-class datasets collected twice.
    ///
    /// `first[i]` and `second[i]` are the unprimed/primed value sets for
    /// `PlaintextClass::ALL[i]`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 3 datasets are supplied on either side.
    #[must_use]
    pub fn compute(
        label: impl Into<String>,
        first: &[Vec<f64>; 3],
        second: &[Vec<f64>; 3],
    ) -> Self {
        let moments = |xs: &Vec<f64>| {
            let mut m = RunningMoments::new();
            m.extend_slice(xs);
            m
        };
        let first_m: [RunningMoments; 3] = core::array::from_fn(|i| moments(&first[i]));
        let second_m: [RunningMoments; 3] = core::array::from_fn(|i| moments(&second[i]));
        let t_scores = welch_t_matrix(&second_m, &first_m);

        let mut cells = Vec::with_capacity(9);
        for (ri, row) in PlaintextClass::ALL.iter().enumerate() {
            for (ci, column) in PlaintextClass::ALL.iter().enumerate() {
                let t_score = t_scores[ri * 3 + ci];
                // Ground truth: same class (diagonal) means same data —
                // except Random vs Random, where the *data* differs per
                // trace but the distributions are identical, so the
                // expected result is still "indistinguishable".
                let truly_different = row != column;
                cells.push(TvlaCell {
                    row: *row,
                    column: *column,
                    t_score,
                    outcome: TvlaOutcome::classify(t_score, truly_different),
                });
            }
        }
        Self { label: label.into(), cells }
    }

    /// Second-order TVLA: the same matrix computed over *centered squared*
    /// samples, detecting leakage that manifests in the variance rather
    /// than the mean (e.g. a masked implementation, or a channel whose
    /// mean is scrubbed by a countermeasure). Standard practice from the
    /// TVLA methodology the paper cites.
    #[must_use]
    pub fn compute_second_order(
        label: impl Into<String>,
        first: &[Vec<f64>; 3],
        second: &[Vec<f64>; 3],
    ) -> Self {
        let center_square = |xs: &Vec<f64>| -> Vec<f64> {
            if xs.is_empty() {
                return Vec::new();
            }
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - mean) * (x - mean)).collect()
        };
        let first_sq: [Vec<f64>; 3] =
            [center_square(&first[0]), center_square(&first[1]), center_square(&first[2])];
        let second_sq: [Vec<f64>; 3] =
            [center_square(&second[0]), center_square(&second[1]), center_square(&second[2])];
        Self::compute(label, &first_sq, &second_sq)
    }

    /// The cell for (row, column).
    #[must_use]
    pub fn cell(&self, row: PlaintextClass, column: PlaintextClass) -> &TvlaCell {
        self.cells
            .iter()
            .find(|c| c.row == row && c.column == column)
            .expect("matrix always has all 9 cells")
    }

    /// Count of each outcome class.
    #[must_use]
    pub fn outcome_counts(&self) -> TvlaCounts {
        let mut counts = TvlaCounts::default();
        for c in &self.cells {
            match c.outcome {
                TvlaOutcome::TruePositive => counts.true_positive += 1,
                TvlaOutcome::TrueNegative => counts.true_negative += 1,
                TvlaOutcome::FalsePositive => counts.false_positive += 1,
                TvlaOutcome::FalseNegative => counts.false_negative += 1,
            }
        }
        counts
    }

    /// The paper's per-key verdict: a key is *data-dependent* when the
    /// matrix shows true positives and no (or almost no) false outcomes;
    /// `PHPC`-grade channels have all 9 cells correct.
    #[must_use]
    pub fn is_data_dependent(&self) -> bool {
        let c = self.outcome_counts();
        c.true_positive >= 4 && c.false_positive + c.false_negative <= 2
    }

    /// A channel with no true positives at all (the `PHPS` / `PCPU` /
    /// timing verdict: not data-dependent).
    #[must_use]
    pub fn shows_no_leakage(&self) -> bool {
        self.outcome_counts().true_positive == 0
    }

    /// Render in the paper's row/column layout.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!("TVLA t-scores for {}\n", self.label);
        out.push_str(&format!("{:>10}", ""));
        for c in PlaintextClass::ALL {
            out.push_str(&format!("{:>10}", c.label()));
        }
        out.push('\n');
        for row in PlaintextClass::ALL {
            out.push_str(&format!("{:>9}'", row.label()));
            for column in PlaintextClass::ALL {
                out.push_str(&format!("{:>10.2}", self.cell(row, column).t_score));
            }
            out.push('\n');
        }
        out
    }
}

/// Streaming two-dataset TVLA tracker: feed observations as they are
/// collected and read the running t-score at any point — the standard
/// online form used by leakage-assessment rigs to stop collection as soon
/// as the threshold is crossed.
///
/// # Examples
///
/// ```
/// use psc_sca::tvla::TvlaTracker;
/// let mut tracker = TvlaTracker::new();
/// for i in 0..200 {
///     tracker.push_a(1.0 + f64::from(i % 3) * 0.01);
///     tracker.push_b(2.0 + f64::from(i % 3) * 0.01);
/// }
/// assert!(tracker.leakage_detected());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TvlaTracker {
    a: RunningMoments,
    b: RunningMoments,
}

impl TvlaTracker {
    /// Empty tracker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an observation to dataset A.
    pub fn push_a(&mut self, x: f64) {
        self.a.push(x);
    }

    /// Add an observation to dataset B.
    pub fn push_b(&mut self, x: f64) {
        self.b.push(x);
    }

    /// Observations so far (A, B).
    #[must_use]
    pub fn counts(&self) -> (u64, u64) {
        (self.a.count(), self.b.count())
    }

    /// Running Welch t-score.
    #[must_use]
    pub fn t_score(&self) -> f64 {
        welch_t(&self.a, &self.b)
    }

    /// Whether |t| has reached the TVLA threshold.
    #[must_use]
    pub fn leakage_detected(&self) -> bool {
        self.t_score().abs() >= TVLA_THRESHOLD
    }

    /// Merge two trackers (parallel collection shards).
    #[must_use]
    pub fn merged(self, other: Self) -> Self {
        Self { a: self.a.merged(other.a), b: self.b.merged(other.b) }
    }

    /// The raw `(A, B)` moment pair, for checkpoint serialization.
    #[must_use]
    pub fn raw(&self) -> (RunningMoments, RunningMoments) {
        (self.a, self.b)
    }

    /// Rebuild a tracker from the raw pair captured by [`Self::raw`].
    #[must_use]
    pub fn from_raw(a: RunningMoments, b: RunningMoments) -> Self {
        Self { a, b }
    }
}

/// Online accumulator for a full 3×3 TVLA campaign: six Welford moment
/// accumulators (three plaintext classes, collected twice), O(1) in trace
/// count. This is the streaming backbone of `psc-telemetry`'s TVLA
/// processor — shards accumulate independently and [`merged`] combines
/// them exactly (up to floating-point reassociation), so a sharded
/// campaign reproduces the batch [`TvlaMatrix`] without ever retaining
/// per-trace vectors.
///
/// [`merged`]: TvlaAccumulator::merged
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TvlaAccumulator {
    /// `moments[pass][class]`, indexed like [`PlaintextClass::ALL`].
    moments: [[RunningMoments; 3]; 2],
}

impl TvlaAccumulator {
    /// Empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation for (`pass`, `class`). `pass` 0 is the unprimed
    /// first collection, `pass` 1 the primed second collection.
    ///
    /// # Panics
    ///
    /// Panics if `pass > 1`.
    pub fn push(&mut self, pass: usize, class: PlaintextClass, value: f64) {
        self.moments[pass][class.index()].push(value);
    }

    /// Add many observations for (`pass`, `class`) in order — the slice
    /// ingestion path of the telemetry block pipeline. The `(pass,
    /// class)` cell is resolved once for the whole run instead of per
    /// sample; the Welford stream is **bit-identical** to pushing the
    /// values one by one.
    ///
    /// # Panics
    ///
    /// Panics if `pass > 1`.
    pub fn extend(
        &mut self,
        pass: usize,
        class: PlaintextClass,
        values: impl IntoIterator<Item = f64>,
    ) {
        self.moments[pass][class.index()].extend(values);
    }

    /// As [`Self::extend`] for a dense slice: the cell resolves once and
    /// the Welford state stays in registers for the whole run (see
    /// [`RunningMoments::extend_slice`]). Bit-identical to the
    /// per-sample path.
    ///
    /// # Panics
    ///
    /// Panics if `pass > 1`.
    pub fn extend_slice(&mut self, pass: usize, class: PlaintextClass, values: &[f64]) {
        self.moments[pass][class.index()].extend_slice(values);
    }

    /// Observations accumulated for (`pass`, `class`).
    #[must_use]
    pub fn count(&self, pass: usize, class: PlaintextClass) -> u64 {
        self.moments[pass][class.index()].count()
    }

    /// Total observations across all six datasets.
    #[must_use]
    pub fn total_count(&self) -> u64 {
        self.moments.iter().flatten().map(RunningMoments::count).sum()
    }

    /// Merge two accumulators (parallel collection shards).
    #[must_use]
    pub fn merged(self, other: Self) -> Self {
        let mut out = self;
        for (pass, other_pass) in out.moments.iter_mut().zip(other.moments) {
            for (m, o) in pass.iter_mut().zip(other_pass) {
                *m = m.merged(o);
            }
        }
        out
    }

    /// The six raw moment accumulators in `[pass][class]` order, for
    /// checkpoint serialization.
    #[must_use]
    pub fn raw(&self) -> [[RunningMoments; 3]; 2] {
        self.moments
    }

    /// Rebuild an accumulator from raw moments captured by [`Self::raw`].
    #[must_use]
    pub fn from_raw(moments: [[RunningMoments; 3]; 2]) -> Self {
        Self { moments }
    }

    /// The 3×3 t-score matrix, identical in structure and classification
    /// to [`TvlaMatrix::compute`] over the same data.
    #[must_use]
    pub fn matrix(&self, label: impl Into<String>) -> TvlaMatrix {
        let t_scores = welch_t_matrix(&self.moments[1], &self.moments[0]);
        let mut cells = Vec::with_capacity(9);
        for (ri, row) in PlaintextClass::ALL.iter().enumerate() {
            for (ci, column) in PlaintextClass::ALL.iter().enumerate() {
                let t_score = t_scores[ri * 3 + ci];
                let truly_different = row != column;
                cells.push(TvlaCell {
                    row: *row,
                    column: *column,
                    t_score,
                    outcome: TvlaOutcome::classify(t_score, truly_different),
                });
            }
        }
        TvlaMatrix { label: label.into(), cells }
    }
}

/// Outcome tallies of one matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TvlaCounts {
    /// |t| ≥ 4.5 across different data.
    pub true_positive: usize,
    /// |t| < 4.5 across same data.
    pub true_negative: usize,
    /// |t| ≥ 4.5 across same data.
    pub false_positive: usize,
    /// |t| < 4.5 across different data.
    pub false_negative: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian_like(n: usize, mean: f64, spread: f64, salt: u64) -> Vec<f64> {
        // Deterministic pseudo-noise (keeps this module free of rand).
        (0..n)
            .map(|i| {
                let x = ((i as u64).wrapping_mul(6_364_136_223_846_793_005).wrapping_add(salt)
                    >> 33) as f64
                    / f64::from(1u32 << 31);
                mean + spread * (x - 0.5)
            })
            .collect()
    }

    fn leaky_matrix() -> TvlaMatrix {
        // Class means differ → diagonal same, off-diagonal different.
        let first = [
            gaussian_like(2000, 1.00, 0.05, 1),
            gaussian_like(2000, 1.05, 0.05, 2),
            gaussian_like(2000, 1.025, 0.05, 3),
        ];
        let second = [
            gaussian_like(2000, 1.00, 0.05, 4),
            gaussian_like(2000, 1.05, 0.05, 5),
            gaussian_like(2000, 1.025, 0.05, 6),
        ];
        TvlaMatrix::compute("PHPC", &first, &second)
    }

    fn flat_matrix() -> TvlaMatrix {
        let first = [
            gaussian_like(2000, 1.0, 0.05, 11),
            gaussian_like(2000, 1.0, 0.05, 12),
            gaussian_like(2000, 1.0, 0.05, 13),
        ];
        let second = [
            gaussian_like(2000, 1.0, 0.05, 14),
            gaussian_like(2000, 1.0, 0.05, 15),
            gaussian_like(2000, 1.0, 0.05, 16),
        ];
        TvlaMatrix::compute("PHPS", &first, &second)
    }

    #[test]
    fn classify_quadrants() {
        assert_eq!(TvlaOutcome::classify(10.0, true), TvlaOutcome::TruePositive);
        assert_eq!(TvlaOutcome::classify(1.0, false), TvlaOutcome::TrueNegative);
        assert_eq!(TvlaOutcome::classify(-9.0, false), TvlaOutcome::FalsePositive);
        assert_eq!(TvlaOutcome::classify(0.4, true), TvlaOutcome::FalseNegative);
        assert_eq!(
            TvlaOutcome::classify(4.5, true),
            TvlaOutcome::TruePositive,
            "threshold inclusive"
        );
    }

    #[test]
    fn leaky_channel_detected() {
        let m = leaky_matrix();
        assert!(m.is_data_dependent(), "{:?}", m.outcome_counts());
        let counts = m.outcome_counts();
        assert_eq!(counts.true_positive, 6);
        assert_eq!(counts.true_negative, 3);
    }

    #[test]
    fn flat_channel_shows_no_leakage() {
        let m = flat_matrix();
        assert!(m.shows_no_leakage(), "{:?}", m.outcome_counts());
        assert!(!m.is_data_dependent());
        assert_eq!(m.outcome_counts().true_negative, 3);
    }

    #[test]
    fn matrix_has_nine_cells_in_order() {
        let m = leaky_matrix();
        assert_eq!(m.cells.len(), 9);
        assert_eq!(m.cells[0].row, PlaintextClass::AllZeros);
        assert_eq!(m.cells[0].column, PlaintextClass::AllZeros);
        assert_eq!(m.cells[8].row, PlaintextClass::Random);
        assert_eq!(m.cells[8].column, PlaintextClass::Random);
    }

    #[test]
    fn diagonal_counts_as_same_data_even_for_random() {
        let m = flat_matrix();
        let cell = m.cell(PlaintextClass::Random, PlaintextClass::Random);
        assert_eq!(cell.outcome, TvlaOutcome::TrueNegative);
    }

    #[test]
    fn render_contains_labels_and_scores() {
        let m = leaky_matrix();
        let text = m.render();
        assert!(text.contains("PHPC"));
        assert!(text.contains("All 0s"));
        assert!(text.contains("Random"));
        assert!(text.lines().count() >= 5);
    }

    #[test]
    fn class_index_matches_all_order() {
        for (i, class) in PlaintextClass::ALL.iter().enumerate() {
            assert_eq!(class.index(), i);
        }
    }

    #[test]
    fn fixed_plaintexts() {
        assert_eq!(PlaintextClass::AllZeros.fixed_plaintext(), Some([0x00; 16]));
        assert_eq!(PlaintextClass::AllOnes.fixed_plaintext(), Some([0xFF; 16]));
        assert_eq!(PlaintextClass::Random.fixed_plaintext(), None);
        assert_eq!(PlaintextClass::AllZeros.to_string(), "All 0s");
    }

    #[test]
    fn tracker_matches_batch_computation() {
        let xs = gaussian_like(500, 1.0, 0.1, 91);
        let ys = gaussian_like(500, 1.03, 0.1, 92);
        let mut tracker = TvlaTracker::new();
        for &x in &xs {
            tracker.push_a(x);
        }
        for &y in &ys {
            tracker.push_b(y);
        }
        let mut a = crate::stats::RunningMoments::new();
        let mut b = crate::stats::RunningMoments::new();
        a.extend(xs.iter().copied());
        b.extend(ys.iter().copied());
        assert!((tracker.t_score() - crate::stats::welch_t(&a, &b)).abs() < 1e-12);
        assert_eq!(tracker.counts(), (500, 500));
    }

    #[test]
    fn tracker_merge_equals_single_stream() {
        let xs = gaussian_like(400, 1.0, 0.1, 93);
        let ys = gaussian_like(400, 1.05, 0.1, 94);
        let mut whole = TvlaTracker::new();
        let mut left = TvlaTracker::new();
        let mut right = TvlaTracker::new();
        for (i, (&x, &y)) in xs.iter().zip(&ys).enumerate() {
            whole.push_a(x);
            whole.push_b(y);
            if i % 2 == 0 {
                left.push_a(x);
                left.push_b(y);
            } else {
                right.push_a(x);
                right.push_b(y);
            }
        }
        let merged = left.merged(right);
        assert!((merged.t_score() - whole.t_score()).abs() < 1e-9);
    }

    #[test]
    fn tracker_detects_separation_early() {
        let mut tracker = TvlaTracker::new();
        let mut detected_at = None;
        for i in 0..1000usize {
            let jitter = f64::from((i % 7) as u32) * 0.01;
            tracker.push_a(1.0 + jitter);
            tracker.push_b(1.2 + jitter);
            if detected_at.is_none() && tracker.leakage_detected() {
                detected_at = Some(i);
            }
        }
        let at = detected_at.expect("clear separation must be detected");
        assert!(at < 100, "detected only at {at}");
    }

    #[test]
    fn second_order_detects_variance_leakage_first_order_misses() {
        // Same means, different variances between classes.
        let spread_sets = |spreads: [f64; 3], salt: u64| -> [Vec<f64>; 3] {
            [
                gaussian_like(3000, 1.0, spreads[0], salt),
                gaussian_like(3000, 1.0, spreads[1], salt + 1),
                gaussian_like(3000, 1.0, spreads[2], salt + 2),
            ]
        };
        let first = spread_sets([0.05, 0.12, 0.08], 100);
        let second = spread_sets([0.05, 0.12, 0.08], 200);
        let first_order = TvlaMatrix::compute("var-chan", &first, &second);
        let second_order = TvlaMatrix::compute_second_order("var-chan", &first, &second);
        assert!(
            first_order.shows_no_leakage(),
            "means are equal — first order must stay silent: {}",
            first_order.render()
        );
        assert!(
            second_order.outcome_counts().true_positive >= 4,
            "variance differences must show up at second order: {}",
            second_order.render()
        );
    }

    #[test]
    fn second_order_silent_on_identical_distributions() {
        let first = [
            gaussian_like(3000, 1.0, 0.05, 31),
            gaussian_like(3000, 1.0, 0.05, 32),
            gaussian_like(3000, 1.0, 0.05, 33),
        ];
        let second = [
            gaussian_like(3000, 1.0, 0.05, 34),
            gaussian_like(3000, 1.0, 0.05, 35),
            gaussian_like(3000, 1.0, 0.05, 36),
        ];
        let m = TvlaMatrix::compute_second_order("null", &first, &second);
        assert!(m.shows_no_leakage(), "{}", m.render());
    }

    #[test]
    fn outcome_supports_leakage() {
        assert!(TvlaOutcome::TruePositive.supports_leakage());
        assert!(TvlaOutcome::TrueNegative.supports_leakage());
        assert!(!TvlaOutcome::FalsePositive.supports_leakage());
        assert!(!TvlaOutcome::FalseNegative.supports_leakage());
    }
}
