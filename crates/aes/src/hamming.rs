//! Hamming weight and Hamming distance helpers.
//!
//! Classical CMOS power models assume the dynamic power of a bus or register
//! update is proportional to the number of bits set (Hamming weight, for
//! precharged buses) or the number of bits toggled (Hamming distance, for
//! registers). Both the leakage simulation ([`crate::leakage`]) and the CPA
//! hypothesis models in `psc-sca` are built on these helpers.

/// Hamming weight (population count) of a single byte.
///
/// # Examples
///
/// ```
/// use psc_aes::hamming::hw_u8;
/// assert_eq!(hw_u8(0x00), 0);
/// assert_eq!(hw_u8(0xFF), 8);
/// assert_eq!(hw_u8(0b1010_0001), 3);
/// ```
#[inline]
#[must_use]
pub fn hw_u8(x: u8) -> u32 {
    x.count_ones()
}

/// Hamming distance between two bytes (bits that differ).
///
/// # Examples
///
/// ```
/// use psc_aes::hamming::hd_u8;
/// assert_eq!(hd_u8(0x00, 0xFF), 8);
/// assert_eq!(hd_u8(0xA5, 0xA5), 0);
/// ```
#[inline]
#[must_use]
pub fn hd_u8(a: u8, b: u8) -> u32 {
    (a ^ b).count_ones()
}

/// Hamming weight of a byte slice (sum of per-byte weights).
///
/// # Examples
///
/// ```
/// use psc_aes::hamming::hw_bytes;
/// assert_eq!(hw_bytes(&[0xFF, 0x0F]), 12);
/// ```
#[inline]
#[must_use]
pub fn hw_bytes(xs: &[u8]) -> u32 {
    xs.iter().map(|&x| x.count_ones()).sum()
}

/// Hamming distance between two equal-length byte slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
///
/// # Examples
///
/// ```
/// use psc_aes::hamming::hd_bytes;
/// assert_eq!(hd_bytes(&[0x00, 0xFF], &[0xFF, 0xFF]), 8);
/// ```
#[inline]
#[must_use]
pub fn hd_bytes(a: &[u8], b: &[u8]) -> u32 {
    assert_eq!(a.len(), b.len(), "hamming distance requires equal lengths");
    a.iter().zip(b).map(|(&x, &y)| (x ^ y).count_ones()).sum()
}

/// Hamming weight of a 16-byte AES state.
#[inline]
#[must_use]
pub fn hw_state(state: &[u8; 16]) -> u32 {
    hw_bytes(state)
}

/// Hamming distance between two 16-byte AES states.
#[inline]
#[must_use]
pub fn hd_state(a: &[u8; 16], b: &[u8; 16]) -> u32 {
    a.iter().zip(b.iter()).map(|(&x, &y)| (x ^ y).count_ones()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hw_u8_exhaustive_matches_naive() {
        for x in 0u16..=255 {
            let x = x as u8;
            let naive = (0..8).filter(|i| x >> i & 1 == 1).count() as u32;
            assert_eq!(hw_u8(x), naive, "x={x:#04x}");
        }
    }

    #[test]
    fn hd_is_hw_of_xor() {
        for a in (0u16..=255).step_by(7) {
            for b in (0u16..=255).step_by(11) {
                let (a, b) = (a as u8, b as u8);
                assert_eq!(hd_u8(a, b), hw_u8(a ^ b));
            }
        }
    }

    #[test]
    fn hd_symmetric() {
        assert_eq!(hd_u8(0x3C, 0xC3), hd_u8(0xC3, 0x3C));
        assert_eq!(hd_bytes(&[1, 2, 3], &[3, 2, 1]), hd_bytes(&[3, 2, 1], &[1, 2, 3]));
    }

    #[test]
    fn hd_identity_is_zero() {
        let s = [0xABu8; 16];
        assert_eq!(hd_state(&s, &s), 0);
    }

    #[test]
    fn hw_state_bounds() {
        assert_eq!(hw_state(&[0u8; 16]), 0);
        assert_eq!(hw_state(&[0xFF; 16]), 128);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn hd_bytes_length_mismatch_panics() {
        let _ = hd_bytes(&[0u8; 3], &[0u8; 4]);
    }

    #[test]
    fn hw_bytes_is_sum_of_parts() {
        let xs = [0x01u8, 0x03, 0x07, 0x0F];
        assert_eq!(hw_bytes(&xs), 1 + 2 + 3 + 4);
    }
}
