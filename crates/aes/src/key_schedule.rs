//! AES key expansion for 128/192/256-bit keys (FIPS-197 §5.2).

use crate::sbox::sub_byte;

/// Round constants `rcon[i] = x^(i-1)` in GF(2⁸); enough for AES-256's 7 uses
/// and AES-128's 10.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36];

/// Supported AES key sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeySize {
    /// 128-bit key, 10 rounds.
    Aes128,
    /// 192-bit key, 12 rounds.
    Aes192,
    /// 256-bit key, 14 rounds.
    Aes256,
}

impl KeySize {
    /// Key length in bytes.
    #[must_use]
    pub fn key_len(self) -> usize {
        match self {
            KeySize::Aes128 => 16,
            KeySize::Aes192 => 24,
            KeySize::Aes256 => 32,
        }
    }

    /// Number of cipher rounds (`Nr`).
    #[must_use]
    pub fn rounds(self) -> usize {
        match self {
            KeySize::Aes128 => 10,
            KeySize::Aes192 => 12,
            KeySize::Aes256 => 14,
        }
    }

    /// Number of 32-bit words in the key (`Nk`).
    #[must_use]
    pub fn nk(self) -> usize {
        self.key_len() / 4
    }

    /// Infer the key size from a byte length.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidKeyLength`] for lengths other than 16, 24 or 32.
    pub fn from_key_len(len: usize) -> Result<Self, InvalidKeyLength> {
        match len {
            16 => Ok(KeySize::Aes128),
            24 => Ok(KeySize::Aes192),
            32 => Ok(KeySize::Aes256),
            other => Err(InvalidKeyLength(other)),
        }
    }
}

/// Error returned when a key slice has a length other than 16/24/32 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidKeyLength(pub usize);

impl core::fmt::Display for InvalidKeyLength {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid AES key length {} (expected 16, 24 or 32)", self.0)
    }
}

impl std::error::Error for InvalidKeyLength {}

/// An expanded AES key schedule: `rounds + 1` round keys of 16 bytes each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeySchedule {
    size: KeySize,
    round_keys: Vec<[u8; 16]>,
}

impl KeySchedule {
    /// Expand `key` into the full round-key schedule.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidKeyLength`] if `key` is not 16, 24 or 32 bytes.
    ///
    /// # Examples
    ///
    /// ```
    /// use psc_aes::key_schedule::KeySchedule;
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let ks = KeySchedule::new(&[0u8; 16])?;
    /// assert_eq!(ks.round_keys().len(), 11);
    /// # Ok(())
    /// # }
    /// ```
    pub fn new(key: &[u8]) -> Result<Self, InvalidKeyLength> {
        let size = KeySize::from_key_len(key.len())?;
        let nk = size.nk();
        let nr = size.rounds();
        let total_words = 4 * (nr + 1);

        let mut w: Vec<[u8; 4]> = Vec::with_capacity(total_words);
        for i in 0..nk {
            w.push([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
        }
        for i in nk..total_words {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp.rotate_left(1);
                for b in temp.iter_mut() {
                    *b = sub_byte(*b);
                }
                temp[0] ^= RCON[i / nk - 1];
            } else if nk > 6 && i % nk == 4 {
                for b in temp.iter_mut() {
                    *b = sub_byte(*b);
                }
            }
            let prev = w[i - nk];
            w.push([temp[0] ^ prev[0], temp[1] ^ prev[1], temp[2] ^ prev[2], temp[3] ^ prev[3]]);
        }

        let round_keys = (0..=nr)
            .map(|r| {
                let mut rk = [0u8; 16];
                for c in 0..4 {
                    rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
                }
                rk
            })
            .collect();

        Ok(Self { size, round_keys })
    }

    /// The key size this schedule was expanded from.
    #[must_use]
    pub fn size(&self) -> KeySize {
        self.size
    }

    /// All round keys (`rounds + 1` entries of 16 bytes).
    #[must_use]
    pub fn round_keys(&self) -> &[[u8; 16]] {
        &self.round_keys
    }

    /// The round key for round `r` (0 = initial AddRoundKey).
    ///
    /// # Panics
    ///
    /// Panics if `r > rounds`.
    #[must_use]
    pub fn round_key(&self, r: usize) -> &[u8; 16] {
        &self.round_keys[r]
    }

    /// Number of cipher rounds.
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.size.rounds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aes128_fips_appendix_a1_first_and_last_words() {
        // FIPS-197 Appendix A.1 key expansion for
        // 2b7e151628aed2a6abf7158809cf4f3c.
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let ks = KeySchedule::new(&key).unwrap();
        assert_eq!(ks.round_keys().len(), 11);
        assert_eq!(ks.round_key(0), &key);
        // w[4..7] from the appendix: a0fafe17 88542cb1 23a33939 2a6c7605
        assert_eq!(
            ks.round_key(1),
            &[
                0xa0, 0xfa, 0xfe, 0x17, 0x88, 0x54, 0x2c, 0xb1, 0x23, 0xa3, 0x39, 0x39, 0x2a, 0x6c,
                0x76, 0x05
            ]
        );
        // w[40..43]: d014f9a8 c9ee2589 e13f0cc8 b6630ca6
        assert_eq!(
            ks.round_key(10),
            &[
                0xd0, 0x14, 0xf9, 0xa8, 0xc9, 0xee, 0x25, 0x89, 0xe1, 0x3f, 0x0c, 0xc8, 0xb6, 0x63,
                0x0c, 0xa6
            ]
        );
    }

    #[test]
    fn aes192_schedule_shape_and_spot_value() {
        // FIPS-197 Appendix A.2 key.
        let key = [
            0x8e, 0x73, 0xb0, 0xf7, 0xda, 0x0e, 0x64, 0x52, 0xc8, 0x10, 0xf3, 0x2b, 0x80, 0x90,
            0x79, 0xe5, 0x62, 0xf8, 0xea, 0xd2, 0x52, 0x2c, 0x6b, 0x7b,
        ];
        let ks = KeySchedule::new(&key).unwrap();
        assert_eq!(ks.round_keys().len(), 13);
        // w[6] = fe0c91f7, w[7] = 2402f5a5 (first derived words).
        assert_eq!(&ks.round_key(1)[8..12], &[0xfe, 0x0c, 0x91, 0xf7]);
        assert_eq!(&ks.round_key(1)[12..16], &[0x24, 0x02, 0xf5, 0xa5]);
    }

    #[test]
    fn aes256_schedule_shape_and_spot_value() {
        // FIPS-197 Appendix A.3 key.
        let key = [
            0x60, 0x3d, 0xeb, 0x10, 0x15, 0xca, 0x71, 0xbe, 0x2b, 0x73, 0xae, 0xf0, 0x85, 0x7d,
            0x77, 0x81, 0x1f, 0x35, 0x2c, 0x07, 0x3b, 0x61, 0x08, 0xd7, 0x2d, 0x98, 0x10, 0xa3,
            0x09, 0x14, 0xdf, 0xf4,
        ];
        let ks = KeySchedule::new(&key).unwrap();
        assert_eq!(ks.round_keys().len(), 15);
        // w[8] = 9ba35411 (first derived word).
        assert_eq!(&ks.round_key(2)[0..4], &[0x9b, 0xa3, 0x54, 0x11]);
    }

    #[test]
    fn rejects_bad_lengths() {
        for len in [0usize, 1, 15, 17, 23, 25, 31, 33, 64] {
            let key = vec![0u8; len];
            assert_eq!(KeySchedule::new(&key), Err(InvalidKeyLength(len)));
        }
    }

    #[test]
    fn key_size_accessors() {
        assert_eq!(KeySize::Aes128.rounds(), 10);
        assert_eq!(KeySize::Aes192.rounds(), 12);
        assert_eq!(KeySize::Aes256.rounds(), 14);
        assert_eq!(KeySize::Aes128.nk(), 4);
        assert_eq!(KeySize::Aes192.nk(), 6);
        assert_eq!(KeySize::Aes256.nk(), 8);
    }

    #[test]
    fn error_display_mentions_length() {
        let err = InvalidKeyLength(7);
        assert!(err.to_string().contains('7'));
    }

    #[test]
    fn different_keys_give_different_schedules() {
        let a = KeySchedule::new(&[0u8; 16]).unwrap();
        let b = KeySchedule::new(&[1u8; 16]).unwrap();
        assert_ne!(a, b);
    }
}
