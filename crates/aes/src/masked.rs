//! First-order boolean-masked AES.
//!
//! The classic software countermeasure against first-order power analysis:
//! every intermediate value is XOR-shared with a random per-encryption
//! mask, so the Hamming weight of any single *processed* value is
//! statistically independent of the secret. We implement the textbook
//! uniform-byte-mask scheme:
//!
//! * the state is masked with byte `m` at each round input;
//! * SubBytes uses a per-encryption recomputed table
//!   `S'(x) = S(x ⊕ m) ⊕ m'` (input masked `m` → output masked `m'`);
//! * ShiftRows permutes bytes (mask-uniform → unchanged);
//! * MixColumns preserves a uniform byte mask because its row coefficients
//!   XOR to `{02}⊕{03}⊕{01}⊕{01} = {01}`;
//! * a re-mask (`⊕ m ⊕ m'`) returns the state to mask `m` for the next
//!   round, and the final whitening unmasks.
//!
//! For the *power-meter* channel of the paper this countermeasure is
//! devastating even beyond first order: the victim repeats an encryption
//! for a whole SMC window with *fresh masks per block*, and
//! `E_m[HW(x ⊕ m)] = 4` per byte regardless of `x` — the window-averaged
//! power is data-independent by expectation, and mask variance averages
//! down as 1/√reps. See `MaskedLeakage` and the masked-victim tests.

use crate::cipher::Aes;
use crate::key_schedule::{InvalidKeyLength, KeySchedule};
use crate::sbox::SBOX;
use crate::state::{add_round_key, mix_columns, shift_rows, State};

/// A first-order masked AES-128 encryptor.
#[derive(Debug, Clone)]
pub struct MaskedAes {
    schedule: KeySchedule,
    reference: Aes,
}

/// The intermediate *processed* (i.e. masked) states of one masked
/// encryption — what a power probe actually sees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskedTrace {
    /// Plaintext.
    pub plaintext: State,
    /// Final (unmasked) ciphertext.
    pub ciphertext: State,
    /// The masks used: (state mask `m`, S-box output mask `m'`).
    pub masks: (u8, u8),
    /// Masked states in execution order (round inputs and outputs as the
    /// hardware registers hold them).
    pub states: Vec<State>,
}

impl MaskedAes {
    /// Build from a 16-byte key.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidKeyLength`] for non-16-byte keys (masking is
    /// implemented for AES-128, the paper's target).
    pub fn new(key: &[u8]) -> Result<Self, InvalidKeyLength> {
        if key.len() != 16 {
            return Err(InvalidKeyLength(key.len()));
        }
        Ok(Self { schedule: KeySchedule::new(key)?, reference: Aes::new(key)? })
    }

    /// Encrypt with explicit masks, recording every masked state.
    ///
    /// The output ciphertext is mask-free and always equals the reference
    /// implementation's.
    #[must_use]
    pub fn encrypt_traced(&self, plaintext: &State, mask: u8, out_mask: u8) -> MaskedTrace {
        let nr = self.schedule.rounds();
        // Per-encryption recomputed masked S-box.
        let mut masked_sbox = [0u8; 256];
        for (x, slot) in masked_sbox.iter_mut().enumerate() {
            *slot = SBOX[x ^ mask as usize] ^ out_mask;
        }

        let mut states = Vec::with_capacity(3 * nr + 2);
        // Mask the plaintext, then the initial AddRoundKey.
        let mut s: State = core::array::from_fn(|i| plaintext[i] ^ mask);
        states.push(s);
        add_round_key(&mut s, self.schedule.round_key(0));
        states.push(s); // = pt ⊕ k0 ⊕ m

        for r in 1..nr {
            // SubBytes via the masked table: mask m → m'.
            for b in s.iter_mut() {
                *b = masked_sbox[*b as usize];
            }
            states.push(s);
            shift_rows(&mut s);
            // Uniform byte mask survives MixColumns ({02}⊕{03}⊕{01}⊕{01}={01}).
            mix_columns(&mut s);
            add_round_key(&mut s, self.schedule.round_key(r));
            states.push(s); // masked with m'
                            // Re-mask back to m for the next round's table.
            for b in s.iter_mut() {
                *b ^= mask ^ out_mask;
            }
            states.push(s);
        }

        // Final round: SubBytes, ShiftRows, AddRoundKey, unmask.
        for b in s.iter_mut() {
            *b = masked_sbox[*b as usize];
        }
        states.push(s);
        shift_rows(&mut s);
        add_round_key(&mut s, self.schedule.round_key(nr));
        states.push(s); // = ct ⊕ m'
        for b in s.iter_mut() {
            *b ^= out_mask;
        }

        debug_assert_eq!(s, self.reference.encrypt_block(plaintext), "masking must be sound");
        MaskedTrace { plaintext: *plaintext, ciphertext: s, masks: (mask, out_mask), states }
    }

    /// Encrypt with masks drawn from `rng`.
    #[must_use]
    pub fn encrypt_random_masks(
        &self,
        plaintext: &State,
        rng: &mut dyn rand_core_shim::RngCoreShim,
    ) -> MaskedTrace {
        let mask = rng.next_byte();
        let out_mask = rng.next_byte();
        self.encrypt_traced(plaintext, mask, out_mask)
    }
}

/// Minimal RNG shim so this crate stays free of a `rand` dependency while
/// callers can still plug any byte source in.
pub mod rand_core_shim {
    /// A source of random bytes.
    pub trait RngCoreShim {
        /// Next random byte.
        fn next_byte(&mut self) -> u8;
    }

    impl<F: FnMut() -> u8> RngCoreShim for F {
        fn next_byte(&mut self) -> u8 {
            self()
        }
    }
}

/// Deterministic leakage of one *masked* encryption under the same
/// weighted-HW model as [`crate::leakage::LeakageModel`]: the weighted sum
/// of Hamming weights over the masked round states.
#[must_use]
pub fn masked_activity(trace: &MaskedTrace, weight_per_state: f64) -> f64 {
    trace.states.iter().map(|s| f64::from(crate::hamming::hw_state(s)) * weight_per_state).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn masked() -> MaskedAes {
        MaskedAes::new(&[
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ])
        .unwrap()
    }

    #[test]
    fn ciphertext_matches_reference_for_all_probe_masks() {
        let m = masked();
        let reference = Aes::new(&[
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ])
        .unwrap();
        let pt = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expected = reference.encrypt_block(&pt);
        for mask in [0x00u8, 0x01, 0x5A, 0xA5, 0xFF, 0x80] {
            for out_mask in [0x00u8, 0x3C, 0xC3, 0xFF] {
                assert_eq!(
                    m.encrypt_traced(&pt, mask, out_mask).ciphertext,
                    expected,
                    "m={mask:#04x} m'={out_mask:#04x}"
                );
            }
        }
    }

    #[test]
    fn zero_masks_reduce_to_plain_aes_states() {
        // With m = m' = 0, the masked state right after the initial
        // AddRoundKey equals the unmasked round-0 state.
        let m = masked();
        let pt = [0xA5u8; 16];
        let trace = m.encrypt_traced(&pt, 0, 0);
        let reference_trace = Aes::new(&[
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ])
        .unwrap()
        .encrypt_traced(&pt);
        assert_eq!(&trace.states[1], reference_trace.round0_addkey());
    }

    #[test]
    fn round0_state_is_mask_shared() {
        // The processed round-0 value is pt ⊕ k0 ⊕ m — never the paper's
        // CPA target pt ⊕ k0 itself.
        let m = masked();
        let pt = [0x11u8; 16];
        let t1 = m.encrypt_traced(&pt, 0x00, 0x42);
        let t2 = m.encrypt_traced(&pt, 0x5A, 0x42);
        let expected: State = core::array::from_fn(|i| t1.states[1][i] ^ 0x5A);
        assert_eq!(t2.states[1], expected);
    }

    #[test]
    fn expected_hw_is_data_independent_over_masks() {
        // E_m[HW(x ⊕ m)] = 4 per byte for any x: average the round-0 masked
        // state's HW over all 256 masks for two very different plaintexts.
        let m = masked();
        let mean_hw = |pt: &State| -> f64 {
            let mut total = 0.0;
            for mask in 0..=255u8 {
                let t = m.encrypt_traced(pt, mask, mask.wrapping_add(101));
                total += f64::from(crate::hamming::hw_state(&t.states[1]));
            }
            total / 256.0
        };
        let a = mean_hw(&[0x00u8; 16]);
        let b = mean_hw(&[0xFFu8; 16]);
        assert!((a - 64.0).abs() < 1e-9, "mean HW {a}");
        assert!((b - 64.0).abs() < 1e-9, "mean HW {b}");
    }

    #[test]
    fn masked_activity_averages_to_constant() {
        // The full weighted activity, averaged over masks, is the same for
        // different plaintexts (this is why window-averaged SMC readings
        // of a masked victim carry no signal).
        let m = masked();
        let mean_activity = |pt: &State| -> f64 {
            (0..=255u8)
                .map(|mask| masked_activity(&m.encrypt_traced(pt, mask, mask.wrapping_mul(7)), 1.0))
                .sum::<f64>()
                / 256.0
        };
        let a = mean_activity(&[0x00u8; 16]);
        let b = mean_activity(&[0xFFu8; 16]);
        let c = mean_activity(&[0x5Au8; 16]);
        // Not exactly equal (later-round masked states mix plaintext and
        // mask nonlinearly), but the spread collapses to ≪ the unmasked
        // contrast (which is ≈128 HW units for these plaintext pairs).
        let spread = (a - b).abs().max((a - c).abs()).max((b - c).abs());
        assert!(spread < 8.0, "masked spread {spread} (a={a} b={b} c={c})");
    }

    #[test]
    fn rejects_non_aes128_keys() {
        assert!(MaskedAes::new(&[0u8; 24]).is_err());
        assert!(MaskedAes::new(&[0u8; 32]).is_err());
    }

    #[test]
    fn random_mask_wrapper_uses_rng() {
        let m = masked();
        let mut counter = 0u8;
        let mut rng = move || {
            counter = counter.wrapping_add(0x33);
            counter
        };
        let t = m.encrypt_random_masks(&[1u8; 16], &mut rng);
        assert_eq!(t.masks, (0x33, 0x66));
    }
}
