//! The 4×4 AES state and the four round transformations.
//!
//! FIPS-197 lays the 16 input bytes into the state column-major:
//! `state[row][col] = input[row + 4*col]`. We keep the state as a flat
//! `[u8; 16]` in that same input order, so `byte r + 4c` is row `r`,
//! column `c`. All four transformations and their inverses are provided.

use crate::gf::{gmul, xtime};
use crate::sbox::{inv_sub_byte, sub_byte};

/// A 16-byte AES state in FIPS-197 input order (column-major 4×4).
pub type State = [u8; 16];

/// Apply the forward S-box to every state byte.
#[inline]
pub fn sub_bytes(state: &mut State) {
    for b in state.iter_mut() {
        *b = sub_byte(*b);
    }
}

/// Apply the inverse S-box to every state byte.
#[inline]
pub fn inv_sub_bytes(state: &mut State) {
    for b in state.iter_mut() {
        *b = inv_sub_byte(*b);
    }
}

/// Cyclically shift row `r` left by `r` positions (FIPS-197 §5.1.2).
///
/// Row `r` of the state is bytes `r, r+4, r+8, r+12`.
pub fn shift_rows(state: &mut State) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[r + 4 * c] = s[r + 4 * ((c + r) % 4)];
        }
    }
}

/// Inverse of [`shift_rows`]: shift row `r` right by `r`.
pub fn inv_shift_rows(state: &mut State) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[r + 4 * c] = s[r + 4 * ((c + 4 - r) % 4)];
        }
    }
}

/// Mix one column `[a0,a1,a2,a3]` by the fixed polynomial {03}x³+{01}x²+{01}x+{02}.
#[inline]
fn mix_single_column(col: &mut [u8]) {
    debug_assert_eq!(col.len(), 4);
    let (a0, a1, a2, a3) = (col[0], col[1], col[2], col[3]);
    // {02}·a ^ {03}·b == xtime(a) ^ xtime(b) ^ b
    col[0] = xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3;
    col[1] = a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3;
    col[2] = a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3);
    col[3] = (xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3);
}

/// MixColumns (FIPS-197 §5.1.3).
pub fn mix_columns(state: &mut State) {
    for c in 0..4 {
        mix_single_column(&mut state[4 * c..4 * c + 4]);
    }
}

/// Inverse MixColumns (FIPS-197 §5.3.3): multiply each column by
/// {0b}x³+{0d}x²+{09}x+{0e}.
pub fn inv_mix_columns(state: &mut State) {
    for c in 0..4 {
        let col = &mut state[4 * c..4 * c + 4];
        let (a0, a1, a2, a3) = (col[0], col[1], col[2], col[3]);
        col[0] = gmul(a0, 0x0e) ^ gmul(a1, 0x0b) ^ gmul(a2, 0x0d) ^ gmul(a3, 0x09);
        col[1] = gmul(a0, 0x09) ^ gmul(a1, 0x0e) ^ gmul(a2, 0x0b) ^ gmul(a3, 0x0d);
        col[2] = gmul(a0, 0x0d) ^ gmul(a1, 0x09) ^ gmul(a2, 0x0e) ^ gmul(a3, 0x0b);
        col[3] = gmul(a0, 0x0b) ^ gmul(a1, 0x0d) ^ gmul(a2, 0x09) ^ gmul(a3, 0x0e);
    }
}

/// XOR a 16-byte round key into the state.
#[inline]
pub fn add_round_key(state: &mut State, round_key: &[u8; 16]) {
    for (b, k) in state.iter_mut().zip(round_key.iter()) {
        *b ^= k;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_rows_matches_fips_example() {
        // FIPS-197 Appendix B round 1: after SubBytes -> after ShiftRows.
        let mut s: State = [
            0xd4, 0x27, 0x11, 0xae, 0xe0, 0xbf, 0x98, 0xf1, 0xb8, 0xb4, 0x5d, 0xe5, 0x1e, 0x41,
            0x52, 0x30,
        ];
        shift_rows(&mut s);
        let expected: State = [
            0xd4, 0xbf, 0x5d, 0x30, 0xe0, 0xb4, 0x52, 0xae, 0xb8, 0x41, 0x11, 0xf1, 0x1e, 0x27,
            0x98, 0xe5,
        ];
        assert_eq!(s, expected);
    }

    #[test]
    fn mix_columns_matches_fips_example() {
        // FIPS-197 Appendix B round 1: after ShiftRows -> after MixColumns.
        let mut s: State = [
            0xd4, 0xbf, 0x5d, 0x30, 0xe0, 0xb4, 0x52, 0xae, 0xb8, 0x41, 0x11, 0xf1, 0x1e, 0x27,
            0x98, 0xe5,
        ];
        mix_columns(&mut s);
        let expected: State = [
            0x04, 0x66, 0x81, 0xe5, 0xe0, 0xcb, 0x19, 0x9a, 0x48, 0xf8, 0xd3, 0x7a, 0x28, 0x06,
            0x26, 0x4c,
        ];
        assert_eq!(s, expected);
    }

    #[test]
    fn mix_columns_single_column_fips_worked_example() {
        // FIPS-197 §5.1.3 example column.
        let mut col = [0xd4u8, 0xbf, 0x5d, 0x30];
        mix_single_column(&mut col);
        assert_eq!(col, [0x04, 0x66, 0x81, 0xe5]);
    }

    #[test]
    fn shift_rows_roundtrip() {
        let mut s: State = core::array::from_fn(|i| i as u8);
        let orig = s;
        shift_rows(&mut s);
        assert_ne!(s, orig);
        inv_shift_rows(&mut s);
        assert_eq!(s, orig);
    }

    #[test]
    fn mix_columns_roundtrip() {
        let mut s: State = core::array::from_fn(|i| (i as u8).wrapping_mul(17).wrapping_add(3));
        let orig = s;
        mix_columns(&mut s);
        assert_ne!(s, orig);
        inv_mix_columns(&mut s);
        assert_eq!(s, orig);
    }

    #[test]
    fn sub_bytes_roundtrip() {
        let mut s: State = core::array::from_fn(|i| (i * 13) as u8);
        let orig = s;
        sub_bytes(&mut s);
        inv_sub_bytes(&mut s);
        assert_eq!(s, orig);
    }

    #[test]
    fn add_round_key_is_involution() {
        let mut s: State = [0x55; 16];
        let key = [0xA3u8; 16];
        let orig = s;
        add_round_key(&mut s, &key);
        assert_ne!(s, orig);
        add_round_key(&mut s, &key);
        assert_eq!(s, orig);
    }

    #[test]
    fn shift_rows_preserves_row_zero() {
        let mut s: State = core::array::from_fn(|i| i as u8);
        shift_rows(&mut s);
        for c in 0..4 {
            assert_eq!(s[4 * c], (4 * c) as u8);
        }
    }
}
