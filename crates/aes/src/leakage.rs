//! CMOS-style leakage model over traced AES encryptions.
//!
//! When an Apple P-core retires `AESE`/`AESMC` instructions, the register
//! file and datapath toggle proportionally to the values being processed —
//! that is the physical effect the paper's SMC power meters integrate. We
//! model the noiseless, deterministic part of that effect here: a weighted
//! sum of Hamming weights (and optionally Hamming distances) over the
//! architectural round states of one encryption.
//!
//! The weights in [`LeakageWeights::default`] are calibrated (DESIGN.md §6)
//! so that the paper's three CPA hypothesis models behave as measured:
//!
//! * `Rd0-HW` (state after the initial AddRoundKey) — strongest leakage,
//!   fastest guessing-entropy convergence (Fig. 1);
//! * `Rd10-HW` (state entering the final SubBytes) — present but weaker, so
//!   convergence is slower;
//! * `Rd10-HD` (distance between last-round input and ciphertext) — not a
//!   term of the physical model, so CPA with it stalls.
//!
//! Noise is *not* added here: the SoC/SMC layers own noise, quantization
//! and averaging, mirroring where those effects live physically.
//!
//! ## Traced vs fused evaluation
//!
//! [`LeakageModel::activity`] — the hot path every simulated trace goes
//! through — runs a **fused** kernel with zero heap allocation: under the
//! default HW-only weights it evaluates [`Aes::round_hw_profile`] (a
//! table-driven round function producing only the AddRoundKey-output
//! Hamming weights); with an HD term enabled, an accumulator rides along
//! [`Aes::encrypt_observed`] and folds every intermediate state inline.
//! The **traced** path ([`LeakageModel::activity_traced`] /
//! [`LeakageModel::activity_of_trace`]) materializes the full
//! [`EncryptionTrace`] first and remains the ground truth the fused kernel
//! is validated against.
//!
//! The contract between the paths is *bit-identical equality*. Every path
//! accumulates the Hamming weights/distances into exact integer sums (one
//! per weight component), then combines them with the f64 weights in one
//! fixed-order expression — so `activity(pt)` ==
//! `activity_of_trace(&encrypt_traced(pt))` to the last bit for every key,
//! plaintext and weight profile. `tests/proptest_aes.rs` pins this.

use crate::cipher::{Aes, AesOp, EncryptionTrace, RoundObserver};
use crate::hamming::{hd_state, hw_state};
use crate::key_schedule::InvalidKeyLength;
use crate::state::State;
use serde::{Deserialize, Serialize};

/// Weights of the deterministic leakage components.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeakageWeights {
    /// Weight on `HW(state after round-0 AddRoundKey)` — the paper's
    /// `Rd0-HW` target.
    pub round0_addkey: f64,
    /// Weight on `HW(state)` of every full-round AddRoundKey output
    /// (rounds 1..Nr-1).
    pub round_output: f64,
    /// Extra weight on `HW(state entering the final SubBytes)` — the
    /// paper's `Rd10-HW` target (this state equals the round-(Nr-1)
    /// AddRoundKey output, so it receives `round_output + last_round_input`).
    pub last_round_input: f64,
    /// Weight on `HW(ciphertext)` (final AddRoundKey output).
    pub ciphertext: f64,
    /// Weight on the Hamming distance between consecutive recorded states
    /// (register-overwrite leakage). Zero by default: on the simulated
    /// datapath, register updates are precharged, so only HW leaks — this
    /// is what makes the paper's `Rd10-HD` model fail to converge.
    pub hd_consecutive: f64,
}

impl Default for LeakageWeights {
    fn default() -> Self {
        Self {
            round0_addkey: 1.0,
            round_output: 0.15,
            last_round_input: 0.45,
            ciphertext: 0.15,
            hd_consecutive: 0.0,
        }
    }
}

impl LeakageWeights {
    /// A flat profile where every recorded state leaks equally — useful in
    /// ablation studies of the calibration in DESIGN.md §6.
    #[must_use]
    pub fn uniform(weight: f64) -> Self {
        Self {
            round0_addkey: weight,
            round_output: weight,
            last_round_input: 0.0,
            ciphertext: weight,
            hd_consecutive: 0.0,
        }
    }

    /// A profile with register-overwrite (Hamming-distance) leakage enabled,
    /// used by the `ablation_leakage_weights` bench to show what Fig. 1
    /// would look like on a HD-leaking datapath.
    #[must_use]
    pub fn with_hd(mut self, hd: f64) -> Self {
        self.hd_consecutive = hd;
        self
    }
}

/// The fused activity kernel: a [`RoundObserver`] that folds Hamming terms
/// into exact integer sums as an encryption progresses, combining them
/// into the weighted f64 activity only once, in [`Self::finish`].
///
/// Because integer addition is exact, every evaluation path that feeds the
/// same Hamming weights — the fused table-driven profile, the observed
/// encryption, and a replay of a recorded trace — reaches identical sums,
/// and `finish()`'s single fixed-order weighted combination makes the
/// final f64 bit-identical across all of them. Holding its state entirely
/// on the stack, it makes [`LeakageModel::activity`] allocation-free.
#[derive(Debug)]
struct ActivityAccumulator<'w> {
    weights: &'w LeakageWeights,
    /// Number of cipher rounds (`Nr`) — decides which weight a given
    /// AddRoundKey output receives.
    nr: u8,
    hw_round0: u32,
    /// Σ HW over rounds `1..Nr` (the penultimate round also lands in
    /// `hw_last_in`; weights stack, mirroring [`LeakageWeights`]).
    hw_rounds: u32,
    hw_last_in: u32,
    hw_ciphertext: u32,
    hd_sum: u32,
    prev: State,
    has_prev: bool,
}

impl<'w> ActivityAccumulator<'w> {
    fn new(weights: &'w LeakageWeights, nr: u8) -> Self {
        Self {
            weights,
            nr,
            hw_round0: 0,
            hw_rounds: 0,
            hw_last_in: 0,
            hw_ciphertext: 0,
            hd_sum: 0,
            prev: [0u8; 16],
            has_prev: false,
        }
    }

    /// Credit the Hamming weight of round `round`'s AddRoundKey output.
    fn add_round_hw(&mut self, round: u8, hw: u32) {
        if round == 0 {
            self.hw_round0 += hw;
        } else if round == self.nr {
            self.hw_ciphertext += hw;
        } else {
            self.hw_rounds += hw;
            if round == self.nr.wrapping_sub(1) {
                self.hw_last_in += hw;
            }
        }
    }

    fn step(&mut self, round: u8, op: AesOp, state: &State) {
        if self.weights.hd_consecutive != 0.0 {
            if self.has_prev {
                self.hd_sum += hd_state(&self.prev, state);
            }
            self.prev = *state;
            self.has_prev = true;
        }
        if op == AesOp::AddRoundKey {
            self.add_round_hw(round, hw_state(state));
        }
    }

    /// The canonical weighted combination — the only place integer Hamming
    /// sums meet f64 weights, so its operation order defines the activity
    /// value for every evaluation path.
    fn finish(&self) -> f64 {
        let w = self.weights;
        let mut acc = w.round0_addkey * f64::from(self.hw_round0);
        acc += w.round_output * f64::from(self.hw_rounds);
        acc += w.last_round_input * f64::from(self.hw_last_in);
        acc += w.ciphertext * f64::from(self.hw_ciphertext);
        if w.hd_consecutive != 0.0 {
            acc += w.hd_consecutive * f64::from(self.hd_sum);
        }
        acc
    }
}

impl RoundObserver for ActivityAccumulator<'_> {
    fn observe(&mut self, round: u8, op: AesOp, state: &State) {
        self.step(round, op, state);
    }
}

/// Deterministic data-dependent activity model for AES encryptions.
///
/// # Examples
///
/// ```
/// use psc_aes::leakage::LeakageModel;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = LeakageModel::new(&[0u8; 16])?;
/// let a0 = model.activity(&[0x00u8; 16]);
/// let a1 = model.activity(&[0xFFu8; 16]);
/// assert_ne!(a0, a1, "activity is data-dependent");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LeakageModel {
    aes: Aes,
    weights: LeakageWeights,
}

impl LeakageModel {
    /// Build a model for a fixed key with default (paper-calibrated) weights.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidKeyLength`] if `key` is not 16/24/32 bytes.
    pub fn new(key: &[u8]) -> Result<Self, InvalidKeyLength> {
        Ok(Self { aes: Aes::new(key)?, weights: LeakageWeights::default() })
    }

    /// Build a model with explicit weights.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidKeyLength`] if `key` is not 16/24/32 bytes.
    pub fn with_weights(key: &[u8], weights: LeakageWeights) -> Result<Self, InvalidKeyLength> {
        Ok(Self { aes: Aes::new(key)?, weights })
    }

    /// The weights in effect.
    #[must_use]
    pub fn weights(&self) -> &LeakageWeights {
        &self.weights
    }

    /// The underlying cipher (e.g. to obtain ciphertexts for the attacker's
    /// known-plaintext records).
    #[must_use]
    pub fn cipher(&self) -> &Aes {
        &self.aes
    }

    /// Deterministic switching activity (arbitrary units) of encrypting
    /// `plaintext` once, together with the trace it was derived from. This
    /// is the ground-truth (traced) path; prefer [`Self::activity`] when
    /// the trace itself is not needed.
    #[must_use]
    pub fn activity_traced(&self, plaintext: &[u8; 16]) -> (f64, EncryptionTrace) {
        let trace = self.aes.encrypt_traced(plaintext);
        (self.activity_of_trace(&trace), trace)
    }

    /// Deterministic switching activity of encrypting `plaintext` once.
    ///
    /// Runs the fused kernel with zero heap allocation. Under the default
    /// HW-only weights (`hd_consecutive == 0`), the table-driven
    /// [`Aes::round_hw_profile`] computes only the AddRoundKey-output
    /// Hamming weights the model consumes; with an HD term, the full
    /// observed encryption ([`Aes::encrypt_observed`]) feeds every
    /// intermediate state through the same accumulator. Either way the
    /// result equals the traced computation bit for bit (module docs
    /// explain the contract).
    #[must_use]
    pub fn activity(&self, plaintext: &[u8; 16]) -> f64 {
        let nr = self.aes.schedule().rounds() as u8;
        let mut acc = ActivityAccumulator::new(&self.weights, nr);
        if self.weights.hd_consecutive == 0.0 {
            let profile = self.aes.round_hw_profile(plaintext);
            for (r, &hw) in profile.hw.iter().enumerate().take(profile.rounds + 1) {
                acc.add_round_hw(r as u8, hw);
            }
        } else {
            self.aes.encrypt_observed(plaintext, &mut acc);
        }
        acc.finish()
    }

    /// Activity of an already-recorded trace (the ground-truth computation
    /// the fused kernel is pinned against).
    #[must_use]
    pub fn activity_of_trace(&self, trace: &EncryptionTrace) -> f64 {
        let nr = trace.states.last().map_or(0, |s| s.round);
        let mut acc = ActivityAccumulator::new(&self.weights, nr);
        for rs in &trace.states {
            acc.step(rs.round, rs.op, &rs.state);
        }
        acc.finish()
    }

    /// The maximum possible activity under these weights (all tracked states
    /// at Hamming weight 128), ignoring HD terms. Useful for normalizing
    /// into a power budget.
    #[must_use]
    pub fn max_activity(&self) -> f64 {
        let nr = self.aes.schedule().rounds() as f64;
        let w = &self.weights;
        128.0 * (w.round0_addkey + w.round_output * (nr - 1.0) + w.last_round_input + w.ciphertext)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> LeakageModel {
        LeakageModel::new(&[
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ])
        .unwrap()
    }

    #[test]
    fn activity_is_deterministic() {
        let m = model();
        let pt = [0x5Au8; 16];
        assert_eq!(m.activity(&pt), m.activity(&pt));
    }

    #[test]
    fn activity_is_data_dependent() {
        let m = model();
        assert_ne!(m.activity(&[0x00u8; 16]), m.activity(&[0xFFu8; 16]));
    }

    #[test]
    fn activity_positive_and_below_max() {
        let m = model();
        for s in 0u8..32 {
            let pt: [u8; 16] = core::array::from_fn(|i| (i as u8).wrapping_mul(s).wrapping_add(s));
            let a = m.activity(&pt);
            assert!(a > 0.0, "activity must be positive");
            assert!(a <= m.max_activity(), "activity {a} above bound {}", m.max_activity());
        }
    }

    #[test]
    fn round0_component_dominates_default_weights() {
        // Two plaintexts whose round-0 AddRoundKey outputs have extreme HW
        // difference must produce clearly different activity.
        let key = [0u8; 16];
        let m = LeakageModel::new(&key).unwrap();
        // key=0 → round-0 state == plaintext.
        let low = m.activity(&[0x00u8; 16]);
        let high = m.activity(&[0xFFu8; 16]);
        // Rd0 term alone differs by 128 × 1.0; later rounds are pseudo-random
        // around HW 64 with small weights, so the ordering must hold.
        assert!(high > low + 32.0, "high={high} low={low}");
    }

    #[test]
    fn hd_weight_changes_activity() {
        let key = [3u8; 16];
        let base = LeakageModel::new(&key).unwrap();
        let hd = LeakageModel::with_weights(&key, LeakageWeights::default().with_hd(0.2)).unwrap();
        let pt = [0xA5u8; 16];
        assert!(hd.activity(&pt) > base.activity(&pt));
    }

    #[test]
    fn uniform_weights_profile() {
        let w = LeakageWeights::uniform(0.5);
        assert_eq!(w.round0_addkey, 0.5);
        assert_eq!(w.round_output, 0.5);
        assert_eq!(w.last_round_input, 0.0);
        assert_eq!(w.hd_consecutive, 0.0);
    }

    #[test]
    fn traced_variant_returns_matching_trace() {
        let m = model();
        let pt = [0x11u8; 16];
        let (a, trace) = m.activity_traced(&pt);
        assert_eq!(a, m.activity_of_trace(&trace));
        assert_eq!(trace.plaintext, pt);
        assert_eq!(trace.ciphertext, m.cipher().encrypt_block(&pt));
    }

    #[test]
    fn fused_equals_traced_bit_for_bit() {
        for hd in [0.0, 0.2] {
            let weights = LeakageWeights::default().with_hd(hd);
            for key_len in [16usize, 24, 32] {
                let key: Vec<u8> = (0..key_len).map(|i| (i * 11 + 5) as u8).collect();
                let m = LeakageModel::with_weights(&key, weights).unwrap();
                for s in 0u8..8 {
                    let pt: [u8; 16] =
                        core::array::from_fn(|i| (i as u8).wrapping_mul(s).wrapping_add(7));
                    let (traced, trace) = m.activity_traced(&pt);
                    assert_eq!(m.activity(&pt).to_bits(), traced.to_bits(), "hd={hd} s={s}");
                    assert_eq!(m.activity_of_trace(&trace).to_bits(), traced.to_bits());
                }
            }
        }
    }

    #[test]
    fn max_activity_formula_aes128() {
        let m = model();
        let w = LeakageWeights::default();
        let expected =
            128.0 * (w.round0_addkey + w.round_output * 9.0 + w.last_round_input + w.ciphertext);
        assert_eq!(m.max_activity(), expected);
    }
}
