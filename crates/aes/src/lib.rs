//! # psc-aes — AES with round-state tracing and leakage modelling
//!
//! A from-scratch AES implementation (128/192/256) built for power
//! side-channel research in simulation:
//!
//! * [`Aes`] — the reference FIPS-197 cipher with
//!   [`Aes::encrypt_traced`] recording every intermediate round state;
//! * [`armv8`] — the `AESE`/`AESMC`/`AESD`/`AESIMC` instruction-level path
//!   matching the AES-Intrinsics victim the paper attacks;
//! * [`leakage`] — a CMOS Hamming-weight leakage model over traced
//!   encryptions, calibrated so the paper's CPA power models
//!   (`Rd0-HW`, `Rd10-HW`, `Rd10-HD`) behave as published;
//! * [`hamming`], [`gf`], [`sbox`] — the supporting primitives, exposed
//!   because the analysis crates reuse them for hypothesis computation.
//!
//! This code is a *simulation substrate*, not a hardened production cipher:
//! it intentionally leaks (that is its job) and must never be used to
//! protect real data.
//!
//! ## Example
//!
//! ```
//! use psc_aes::{Aes, leakage::LeakageModel};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let key = [0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
//!            0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c];
//! let aes = Aes::new(&key)?;
//! let trace = aes.encrypt_traced(&[0u8; 16]);
//! let model = LeakageModel::new(&key)?;
//! let activity = model.activity_of_trace(&trace);
//! assert!(activity > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod armv8;
pub mod cipher;
pub mod gf;
pub mod hamming;
pub mod key_schedule;
pub mod leakage;
pub mod masked;
pub mod sbox;
pub mod state;

pub use cipher::{Aes, AesOp, EncryptionTrace, RoundState};
pub use key_schedule::{InvalidKeyLength, KeySchedule, KeySize};
pub use leakage::{LeakageModel, LeakageWeights};
pub use state::State;
