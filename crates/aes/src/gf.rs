//! GF(2⁸) arithmetic for AES (Rijndael field, reduction polynomial
//! x⁸ + x⁴ + x³ + x + 1 = `0x11B`).
//!
//! MixColumns and the S-box construction are defined over this field; we
//! implement multiplication from first principles so the whole cipher is
//! self-contained and auditable.

/// Multiply a field element by `x` (i.e. by `{02}`), reducing modulo `0x11B`.
///
/// # Examples
///
/// ```
/// use psc_aes::gf::xtime;
/// assert_eq!(xtime(0x57), 0xAE);
/// assert_eq!(xtime(0xAE), 0x47); // wraps through the reduction polynomial
/// ```
#[inline]
#[must_use]
pub fn xtime(a: u8) -> u8 {
    let shifted = a << 1;
    if a & 0x80 != 0 {
        shifted ^ 0x1B
    } else {
        shifted
    }
}

/// General GF(2⁸) multiplication (Russian-peasant style, branch on data is
/// irrelevant here: this code only runs inside the simulator, never on a
/// secret-processing production path).
///
/// # Examples
///
/// ```
/// use psc_aes::gf::gmul;
/// // FIPS-197 §4.2 worked example: {57} · {13} = {FE}
/// assert_eq!(gmul(0x57, 0x13), 0xFE);
/// ```
#[inline]
#[must_use]
pub fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    acc
}

/// Multiplicative inverse in GF(2⁸); `inv(0)` is defined as `0` per the AES
/// S-box convention.
///
/// Computed via exponentiation: the multiplicative group has order 255, so
/// `a⁻¹ = a²⁵⁴`.
///
/// # Examples
///
/// ```
/// use psc_aes::gf::{gmul, inv};
/// assert_eq!(inv(0), 0);
/// for a in 1..=255u8 {
///     assert_eq!(gmul(a, inv(a)), 1);
/// }
/// ```
#[must_use]
pub fn inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    // a^254 by square-and-multiply over the fixed exponent 0b1111_1110.
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u32;
    while exp != 0 {
        if exp & 1 != 0 {
            result = gmul(result, base);
        }
        base = gmul(base, base);
        exp >>= 1;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xtime_matches_fips_example_chain() {
        // FIPS-197 §4.2.1: {57}·{02}={ae}, ·{04}={47}, ·{08}={8e}, ·{10}={07}
        assert_eq!(xtime(0x57), 0xAE);
        assert_eq!(xtime(0xAE), 0x47);
        assert_eq!(xtime(0x47), 0x8E);
        assert_eq!(xtime(0x8E), 0x07);
    }

    #[test]
    fn gmul_identity_and_zero() {
        for a in 0u16..=255 {
            let a = a as u8;
            assert_eq!(gmul(a, 1), a);
            assert_eq!(gmul(1, a), a);
            assert_eq!(gmul(a, 0), 0);
            assert_eq!(gmul(0, a), 0);
        }
    }

    #[test]
    fn gmul_commutative_sampled() {
        for a in (0u16..=255).step_by(5) {
            for b in (0u16..=255).step_by(9) {
                assert_eq!(gmul(a as u8, b as u8), gmul(b as u8, a as u8));
            }
        }
    }

    #[test]
    fn gmul_distributes_over_xor_sampled() {
        for a in (0u16..=255).step_by(17) {
            for b in (0u16..=255).step_by(13) {
                for c in (0u16..=255).step_by(29) {
                    let (a, b, c) = (a as u8, b as u8, c as u8);
                    assert_eq!(gmul(a, b ^ c), gmul(a, b) ^ gmul(a, c));
                }
            }
        }
    }

    #[test]
    fn inverse_is_two_sided_for_all_nonzero() {
        for a in 1u16..=255 {
            let a = a as u8;
            let ia = inv(a);
            assert_eq!(gmul(a, ia), 1, "a={a:#04x}");
            assert_eq!(gmul(ia, a), 1, "a={a:#04x}");
        }
    }

    #[test]
    fn inverse_is_involution() {
        for a in 0u16..=255 {
            let a = a as u8;
            assert_eq!(inv(inv(a)), a);
        }
    }

    #[test]
    fn gmul_associative_sampled() {
        for a in (1u16..=255).step_by(37) {
            for b in (1u16..=255).step_by(41) {
                for c in (1u16..=255).step_by(43) {
                    let (a, b, c) = (a as u8, b as u8, c as u8);
                    assert_eq!(gmul(gmul(a, b), c), gmul(a, gmul(b, c)));
                }
            }
        }
    }
}
