//! Simulation of the ARMv8 Cryptographic Extension AES instructions.
//!
//! The paper's victim workload is the `AES-Intrinsics` implementation, which
//! drives the hardware through `AESE`/`AESMC` (encrypt) and `AESD`/`AESIMC`
//! (decrypt). We model the instructions at the architectural level:
//!
//! * `AESE  state, key` = `ShiftRows(SubBytes(state ⊕ key))`
//! * `AESMC state`      = `MixColumns(state)`
//! * `AESD  state, key` = `InvSubBytes(InvShiftRows(state ⊕ key))`
//! * `AESIMC state`     = `InvMixColumns(state)`
//!
//! Note the ARM ordering differs from the FIPS round structure (the XOR
//! happens *first*), so the round-key sequencing in
//! [`Armv8Aes::encrypt_block`] is shifted by one relative to
//! [`crate::cipher::Aes`]; the two must (and do — see tests) agree on every
//! ciphertext.

use crate::key_schedule::{InvalidKeyLength, KeySchedule};
use crate::state::{
    inv_mix_columns, inv_shift_rows, inv_sub_bytes, mix_columns, shift_rows, sub_bytes, State,
};

/// `AESE Vd, Vn`: AddRoundKey, then SubBytes, then ShiftRows.
#[inline]
#[must_use]
pub fn aese(mut state: State, round_key: &State) -> State {
    for (b, k) in state.iter_mut().zip(round_key.iter()) {
        *b ^= k;
    }
    sub_bytes(&mut state);
    shift_rows(&mut state);
    state
}

/// `AESMC Vd, Vn`: MixColumns.
#[inline]
#[must_use]
pub fn aesmc(mut state: State) -> State {
    mix_columns(&mut state);
    state
}

/// `AESD Vd, Vn`: AddRoundKey, then InvShiftRows, then InvSubBytes.
#[inline]
#[must_use]
pub fn aesd(mut state: State, round_key: &State) -> State {
    for (b, k) in state.iter_mut().zip(round_key.iter()) {
        *b ^= k;
    }
    inv_shift_rows(&mut state);
    inv_sub_bytes(&mut state);
    state
}

/// `AESIMC Vd, Vn`: InvMixColumns.
#[inline]
#[must_use]
pub fn aesimc(mut state: State) -> State {
    inv_mix_columns(&mut state);
    state
}

/// An AES implementation sequenced exactly like the AES-Intrinsics ARMv8
/// code path the paper attacks.
///
/// # Examples
///
/// ```
/// use psc_aes::{Aes, armv8::Armv8Aes};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let key = [7u8; 16];
/// let pt = [3u8; 16];
/// let hw = Armv8Aes::new(&key)?;
/// let sw = Aes::new(&key)?;
/// assert_eq!(hw.encrypt_block(&pt), sw.encrypt_block(&pt));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Armv8Aes {
    schedule: KeySchedule,
}

impl Armv8Aes {
    /// Build from a 16/24/32-byte key.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidKeyLength`] for other key lengths.
    pub fn new(key: &[u8]) -> Result<Self, InvalidKeyLength> {
        Ok(Self { schedule: KeySchedule::new(key)? })
    }

    /// The expanded key schedule.
    #[must_use]
    pub fn schedule(&self) -> &KeySchedule {
        &self.schedule
    }

    /// Encrypt one block using the AESE/AESMC instruction pattern.
    #[must_use]
    pub fn encrypt_block(&self, plaintext: &State) -> State {
        let nr = self.schedule.rounds();
        let mut s = *plaintext;
        // Rounds 0..nr-2: AESE with round key r, then AESMC.
        for r in 0..nr - 1 {
            s = aese(s, self.schedule.round_key(r));
            s = aesmc(s);
        }
        // Penultimate: AESE without MixColumns; final whitening XOR.
        s = aese(s, self.schedule.round_key(nr - 1));
        for (b, k) in s.iter_mut().zip(self.schedule.round_key(nr).iter()) {
            *b ^= k;
        }
        s
    }

    /// Decrypt one block using the AESD/AESIMC instruction pattern
    /// (equivalent inverse cipher).
    ///
    /// As on real ARMv8 hardware, the middle round keys must be passed
    /// through `AESIMC` because `AESD` XORs the key *before* the inverse
    /// MixColumns that `AESIMC` later applies.
    #[must_use]
    pub fn decrypt_block(&self, ciphertext: &State) -> State {
        let nr = self.schedule.rounds();
        let mut s = aesd(*ciphertext, self.schedule.round_key(nr));
        for r in (1..nr).rev() {
            s = aesimc(s);
            let mut transformed_key = *self.schedule.round_key(r);
            inv_mix_columns(&mut transformed_key);
            s = aesd(s, &transformed_key);
        }
        for (b, k) in s.iter_mut().zip(self.schedule.round_key(0).iter()) {
            *b ^= k;
        }
        s
    }

    /// Repeatedly encrypt the same block `count` times, as the paper's
    /// constant-cycle victim loop does to span one SMC update window.
    /// Returns the (identical each iteration) ciphertext.
    #[must_use]
    pub fn encrypt_repeated(&self, plaintext: &State, count: usize) -> State {
        let mut ct = *plaintext;
        for _ in 0..count.max(1) {
            ct = self.encrypt_block(plaintext);
        }
        ct
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cipher::Aes;

    #[test]
    fn aese_is_xor_sub_shift() {
        let state = [0x00u8; 16];
        let key = [0x00u8; 16];
        // All zeros: XOR→0, SubBytes→0x63 everywhere, ShiftRows no-op on
        // uniform state.
        assert_eq!(aese(state, &key), [0x63u8; 16]);
    }

    #[test]
    fn aesd_inverts_aese() {
        let key: State = core::array::from_fn(|i| (i * 31 + 5) as u8);
        let state: State = core::array::from_fn(|i| (i * 7 + 1) as u8);
        let forward = aese(state, &key);
        // aesd(x, 0) = InvSubBytes(InvShiftRows(x)); then XOR key restores.
        let mut back = aesd(forward, &[0u8; 16]);
        for (b, k) in back.iter_mut().zip(key.iter()) {
            *b ^= k;
        }
        assert_eq!(back, state);
    }

    #[test]
    fn aesmc_aesimc_roundtrip() {
        let state: State = core::array::from_fn(|i| (i * 13 + 7) as u8);
        assert_eq!(aesimc(aesmc(state)), state);
    }

    #[test]
    fn matches_reference_aes128_fips_vector() {
        let key: Vec<u8> = (0u8..16).collect();
        let pt: State = core::array::from_fn(|i| (i as u8) * 0x11);
        let hw = Armv8Aes::new(&key).unwrap();
        let expected = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        assert_eq!(hw.encrypt_block(&pt), expected);
    }

    #[test]
    fn matches_reference_implementation_all_key_sizes() {
        for key_len in [16usize, 24, 32] {
            let key: Vec<u8> = (0..key_len).map(|i| (i * 11 + 1) as u8).collect();
            let hw = Armv8Aes::new(&key).unwrap();
            let sw = Aes::new(&key).unwrap();
            for s in 0u8..32 {
                let pt: State =
                    core::array::from_fn(|i| (i as u8).wrapping_mul(s).wrapping_add(97));
                assert_eq!(hw.encrypt_block(&pt), sw.encrypt_block(&pt), "key_len={key_len} s={s}");
            }
        }
    }

    #[test]
    fn decrypt_inverts_encrypt_all_key_sizes() {
        for key_len in [16usize, 24, 32] {
            let key: Vec<u8> = (0..key_len).map(|i| (i * 5 + 2) as u8).collect();
            let hw = Armv8Aes::new(&key).unwrap();
            for s in 0u8..16 {
                let pt: State = core::array::from_fn(|i| (i as u8) ^ s.wrapping_mul(19));
                assert_eq!(hw.decrypt_block(&hw.encrypt_block(&pt)), pt, "key_len={key_len}");
            }
        }
    }

    #[test]
    fn repeated_encryption_is_stable() {
        let hw = Armv8Aes::new(&[9u8; 16]).unwrap();
        let pt = [1u8; 16];
        let once = hw.encrypt_block(&pt);
        assert_eq!(hw.encrypt_repeated(&pt, 1000), once);
        assert_eq!(hw.encrypt_repeated(&pt, 0), once, "count 0 clamps to 1");
    }
}
