//! The AES block cipher with optional round-state tracing.
//!
//! [`Aes`] provides plain encrypt/decrypt; [`Aes::encrypt_traced`]
//! additionally records every intermediate state, which the leakage model
//! ([`crate::leakage`]) converts into data-dependent switching activity and
//! the CPA hypothesis models in `psc-sca` consume as ground truth.

use crate::key_schedule::{InvalidKeyLength, KeySchedule};
use crate::state::{
    add_round_key, inv_mix_columns, inv_shift_rows, inv_sub_bytes, mix_columns, shift_rows,
    sub_bytes, State,
};
use serde::{Deserialize, Serialize};

/// Which transformation produced a recorded state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AesOp {
    /// State after an AddRoundKey.
    AddRoundKey,
    /// State after SubBytes.
    SubBytes,
    /// State after ShiftRows.
    ShiftRows,
    /// State after MixColumns.
    MixColumns,
}

/// One recorded intermediate state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundState {
    /// Round number: 0 for the initial AddRoundKey, 1..=Nr for cipher rounds.
    pub round: u8,
    /// The transformation that produced this state.
    pub op: AesOp,
    /// The 16-byte state after the transformation.
    pub state: State,
}

/// A fully-traced single-block encryption: plaintext, ciphertext and every
/// intermediate state in execution order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncryptionTrace {
    /// The input block.
    pub plaintext: State,
    /// The output block.
    pub ciphertext: State,
    /// Intermediate states in execution order, starting with the round-0
    /// AddRoundKey output and ending with the final AddRoundKey output
    /// (= ciphertext).
    pub states: Vec<RoundState>,
}

impl EncryptionTrace {
    /// The state recorded for (`round`, `op`), if present.
    #[must_use]
    pub fn state(&self, round: u8, op: AesOp) -> Option<&State> {
        self.states.iter().find(|s| s.round == round && s.op == op).map(|s| &s.state)
    }

    /// The state after the initial (round 0) AddRoundKey — the target of the
    /// paper's `Rd0-HW` power model.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty (cannot happen for traces produced by
    /// [`Aes::encrypt_traced`]).
    #[must_use]
    pub fn round0_addkey(&self) -> &State {
        self.state(0, AesOp::AddRoundKey).expect("trace always records round-0 AddRoundKey")
    }

    /// The state entering the final round's SubBytes (i.e. the output of the
    /// penultimate round) — the target of the paper's `Rd10-HW` model.
    #[must_use]
    pub fn last_round_input(&self) -> &State {
        let last = self.states.last().expect("non-empty trace").round;
        self.state(last - 1, AesOp::AddRoundKey).expect("penultimate round output recorded")
    }
}

/// An AES cipher instance (any key size) with tracing support.
///
/// # Examples
///
/// ```
/// use psc_aes::Aes;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let aes = Aes::new(&[0u8; 16])?;
/// let ct = aes.encrypt_block(&[0u8; 16]);
/// assert_eq!(aes.decrypt_block(&ct), [0u8; 16]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Aes {
    schedule: KeySchedule,
}

impl Aes {
    /// Build a cipher from a 16/24/32-byte key.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidKeyLength`] for other key lengths.
    pub fn new(key: &[u8]) -> Result<Self, InvalidKeyLength> {
        Ok(Self { schedule: KeySchedule::new(key)? })
    }

    /// The expanded key schedule.
    #[must_use]
    pub fn schedule(&self) -> &KeySchedule {
        &self.schedule
    }

    /// Encrypt one 16-byte block.
    #[must_use]
    pub fn encrypt_block(&self, plaintext: &State) -> State {
        let nr = self.schedule.rounds();
        let mut s = *plaintext;
        add_round_key(&mut s, self.schedule.round_key(0));
        for r in 1..nr {
            sub_bytes(&mut s);
            shift_rows(&mut s);
            mix_columns(&mut s);
            add_round_key(&mut s, self.schedule.round_key(r));
        }
        sub_bytes(&mut s);
        shift_rows(&mut s);
        add_round_key(&mut s, self.schedule.round_key(nr));
        s
    }

    /// Decrypt one 16-byte block.
    #[must_use]
    pub fn decrypt_block(&self, ciphertext: &State) -> State {
        let nr = self.schedule.rounds();
        let mut s = *ciphertext;
        add_round_key(&mut s, self.schedule.round_key(nr));
        for r in (1..nr).rev() {
            inv_shift_rows(&mut s);
            inv_sub_bytes(&mut s);
            add_round_key(&mut s, self.schedule.round_key(r));
            inv_mix_columns(&mut s);
        }
        inv_shift_rows(&mut s);
        inv_sub_bytes(&mut s);
        add_round_key(&mut s, self.schedule.round_key(0));
        s
    }

    /// Encrypt one block while recording every intermediate state.
    #[must_use]
    pub fn encrypt_traced(&self, plaintext: &State) -> EncryptionTrace {
        let nr = self.schedule.rounds();
        let mut states = Vec::with_capacity(4 * nr + 1);
        let mut s = *plaintext;

        add_round_key(&mut s, self.schedule.round_key(0));
        states.push(RoundState { round: 0, op: AesOp::AddRoundKey, state: s });

        for r in 1..nr {
            let r8 = r as u8;
            sub_bytes(&mut s);
            states.push(RoundState { round: r8, op: AesOp::SubBytes, state: s });
            shift_rows(&mut s);
            states.push(RoundState { round: r8, op: AesOp::ShiftRows, state: s });
            mix_columns(&mut s);
            states.push(RoundState { round: r8, op: AesOp::MixColumns, state: s });
            add_round_key(&mut s, self.schedule.round_key(r));
            states.push(RoundState { round: r8, op: AesOp::AddRoundKey, state: s });
        }

        let nr8 = nr as u8;
        sub_bytes(&mut s);
        states.push(RoundState { round: nr8, op: AesOp::SubBytes, state: s });
        shift_rows(&mut s);
        states.push(RoundState { round: nr8, op: AesOp::ShiftRows, state: s });
        add_round_key(&mut s, self.schedule.round_key(nr));
        states.push(RoundState { round: nr8, op: AesOp::AddRoundKey, state: s });

        EncryptionTrace { plaintext: *plaintext, ciphertext: s, states }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS-197 Appendix B: full worked AES-128 example.
    #[test]
    fn aes128_fips_appendix_b() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let pt = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expected = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        let aes = Aes::new(&key).unwrap();
        assert_eq!(aes.encrypt_block(&pt), expected);
        assert_eq!(aes.decrypt_block(&expected), pt);
    }

    /// FIPS-197 Appendix C.1 known-answer test (AES-128).
    #[test]
    fn aes128_fips_appendix_c1() {
        let key: Vec<u8> = (0u8..16).collect();
        let pt: [u8; 16] = core::array::from_fn(|i| (i as u8) * 0x11);
        let expected = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        let aes = Aes::new(&key).unwrap();
        assert_eq!(aes.encrypt_block(&pt), expected);
        assert_eq!(aes.decrypt_block(&expected), pt);
    }

    /// FIPS-197 Appendix C.2 known-answer test (AES-192).
    #[test]
    fn aes192_fips_appendix_c2() {
        let key: Vec<u8> = (0u8..24).collect();
        let pt: [u8; 16] = core::array::from_fn(|i| (i as u8) * 0x11);
        let expected = [
            0xdd, 0xa9, 0x7c, 0xa4, 0x86, 0x4c, 0xdf, 0xe0, 0x6e, 0xaf, 0x70, 0xa0, 0xec, 0x0d,
            0x71, 0x91,
        ];
        let aes = Aes::new(&key).unwrap();
        assert_eq!(aes.encrypt_block(&pt), expected);
        assert_eq!(aes.decrypt_block(&expected), pt);
    }

    /// FIPS-197 Appendix C.3 known-answer test (AES-256).
    #[test]
    fn aes256_fips_appendix_c3() {
        let key: Vec<u8> = (0u8..32).collect();
        let pt: [u8; 16] = core::array::from_fn(|i| (i as u8) * 0x11);
        let expected = [
            0x8e, 0xa2, 0xb7, 0xca, 0x51, 0x67, 0x45, 0xbf, 0xea, 0xfc, 0x49, 0x90, 0x4b, 0x49,
            0x60, 0x89,
        ];
        let aes = Aes::new(&key).unwrap();
        assert_eq!(aes.encrypt_block(&pt), expected);
        assert_eq!(aes.decrypt_block(&expected), pt);
    }

    #[test]
    fn traced_matches_untraced_ciphertext() {
        let aes = Aes::new(&[0x42u8; 16]).unwrap();
        for seed in 0u8..8 {
            let pt: [u8; 16] =
                core::array::from_fn(|i| (i as u8).wrapping_mul(seed).wrapping_add(seed));
            let trace = aes.encrypt_traced(&pt);
            assert_eq!(trace.ciphertext, aes.encrypt_block(&pt));
            assert_eq!(trace.plaintext, pt);
        }
    }

    #[test]
    fn trace_has_expected_state_count_aes128() {
        let aes = Aes::new(&[0u8; 16]).unwrap();
        let trace = aes.encrypt_traced(&[0u8; 16]);
        // 1 (rd0) + 9 rounds × 4 ops + final round × 3 ops = 40.
        assert_eq!(trace.states.len(), 1 + 9 * 4 + 3);
    }

    #[test]
    fn trace_round0_is_pt_xor_key() {
        let key = [0x0Fu8; 16];
        let pt = [0xF0u8; 16];
        let aes = Aes::new(&key).unwrap();
        let trace = aes.encrypt_traced(&pt);
        assert_eq!(trace.round0_addkey(), &[0xFFu8; 16]);
    }

    #[test]
    fn trace_last_round_input_consistency() {
        // last_round_input must equal InvShiftRows(InvSubBytes(ct ^ k10)).
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let aes = Aes::new(&key).unwrap();
        let pt = [0x5Au8; 16];
        let trace = aes.encrypt_traced(&pt);
        let mut s = trace.ciphertext;
        crate::state::add_round_key(&mut s, aes.schedule().round_key(10));
        crate::state::inv_shift_rows(&mut s);
        crate::state::inv_sub_bytes(&mut s);
        assert_eq!(&s, trace.last_round_input());
    }

    #[test]
    fn trace_final_state_is_ciphertext() {
        let aes = Aes::new(&[7u8; 16]).unwrap();
        let trace = aes.encrypt_traced(&[9u8; 16]);
        assert_eq!(trace.states.last().unwrap().state, trace.ciphertext);
        assert_eq!(trace.states.last().unwrap().op, AesOp::AddRoundKey);
        assert_eq!(trace.states.last().unwrap().round, 10);
    }

    #[test]
    fn state_lookup_missing_returns_none() {
        let aes = Aes::new(&[0u8; 16]).unwrap();
        let trace = aes.encrypt_traced(&[0u8; 16]);
        // Final round has no MixColumns.
        assert!(trace.state(10, AesOp::MixColumns).is_none());
        assert!(trace.state(0, AesOp::SubBytes).is_none());
    }

    #[test]
    fn encrypt_decrypt_roundtrip_many_sizes() {
        for key_len in [16usize, 24, 32] {
            let key: Vec<u8> = (0..key_len).map(|i| (i * 7 + 3) as u8).collect();
            let aes = Aes::new(&key).unwrap();
            for s in 0u8..16 {
                let pt: [u8; 16] =
                    core::array::from_fn(|i| (i as u8).wrapping_add(s).wrapping_mul(31));
                assert_eq!(aes.decrypt_block(&aes.encrypt_block(&pt)), pt);
            }
        }
    }
}
