//! The AES block cipher with optional round-state tracing.
//!
//! [`Aes`] provides plain encrypt/decrypt; [`Aes::encrypt_traced`]
//! additionally records every intermediate state, which the leakage model
//! ([`crate::leakage`]) converts into data-dependent switching activity and
//! the CPA hypothesis models in `psc-sca` consume as ground truth.

use crate::key_schedule::{InvalidKeyLength, KeySchedule};
use crate::sbox::SBOX;
use crate::state::{
    add_round_key, inv_mix_columns, inv_shift_rows, inv_sub_bytes, mix_columns, shift_rows,
    sub_bytes, State,
};
use serde::{Deserialize, Serialize};

/// `xtime` (multiplication by 2 in GF(2⁸)) for const table construction.
const fn mul2(x: u8) -> u8 {
    (x << 1) ^ (((x >> 7) & 1) * 0x1B)
}

/// Fused SubBytes+ShiftRows+MixColumns lookup tables (classic T-tables):
/// `T0[x]` packs the MixColumns column `(2·S[x], S[x], S[x], 3·S[x])`
/// big-endian; `T1..T3` are its byte rotations. 4 KB total, const-built
/// from [`SBOX`], used only by the HW-profile fast path — the reference
/// byte-oriented round functions in [`crate::state`] stay the ground truth.
const fn t_table(shift: u32) -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let s = SBOX[i];
        let word = ((mul2(s) as u32) << 24)
            | ((s as u32) << 16)
            | ((s as u32) << 8)
            | (mul2(s) ^ s) as u32;
        t[i] = word.rotate_right(shift * 8);
        i += 1;
    }
    t
}

static T0: [u32; 256] = t_table(0);
static T1: [u32; 256] = t_table(1);
static T2: [u32; 256] = t_table(2);
static T3: [u32; 256] = t_table(3);

/// Which transformation produced a recorded state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AesOp {
    /// State after an AddRoundKey.
    AddRoundKey,
    /// State after SubBytes.
    SubBytes,
    /// State after ShiftRows.
    ShiftRows,
    /// State after MixColumns.
    MixColumns,
}

/// Observer invoked with every intermediate state of one encryption, in
/// execution order — the same recording points, in the same order, as
/// [`Aes::encrypt_traced`].
///
/// This is the allocation-free alternative to collecting an
/// [`EncryptionTrace`]: instead of materializing a `Vec<RoundState>` and
/// scanning it afterwards, a fused consumer (e.g. the leakage model's
/// activity kernel) folds each state into its running result as the round
/// functions produce it. `encrypt_traced` itself is implemented as an
/// observer that records, so both paths share one definition of what gets
/// observed and when.
pub trait RoundObserver {
    /// Called once per recorded state, immediately after the transformation
    /// `op` of round `round` produced `state`.
    fn observe(&mut self, round: u8, op: AesOp, state: &State);
}

/// Per-round Hamming weights of one encryption's AddRoundKey outputs (see
/// [`Aes::round_hw_profile`]). `hw[r]` is meaningful for `r <= rounds`;
/// the array is sized for AES-256's 14 rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundHwProfile {
    /// `hw[r]` = Hamming weight of the round-`r` AddRoundKey output.
    pub hw: [u32; 15],
    /// Number of cipher rounds (`Nr`): 10/12/14.
    pub rounds: usize,
}

/// One recorded intermediate state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundState {
    /// Round number: 0 for the initial AddRoundKey, 1..=Nr for cipher rounds.
    pub round: u8,
    /// The transformation that produced this state.
    pub op: AesOp,
    /// The 16-byte state after the transformation.
    pub state: State,
}

/// A fully-traced single-block encryption: plaintext, ciphertext and every
/// intermediate state in execution order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncryptionTrace {
    /// The input block.
    pub plaintext: State,
    /// The output block.
    pub ciphertext: State,
    /// Intermediate states in execution order, starting with the round-0
    /// AddRoundKey output and ending with the final AddRoundKey output
    /// (= ciphertext).
    pub states: Vec<RoundState>,
}

/// Index of (`round`, `op`) in the canonical state layout produced by
/// [`Aes::encrypt_traced`]: round-0 AddRoundKey first, then four states per
/// full round, then the three final-round states (no MixColumns).
fn canonical_index(round: u8, op: AesOp, nr: u8) -> Option<usize> {
    if round == 0 {
        return (op == AesOp::AddRoundKey).then_some(0);
    }
    if round > nr {
        return None;
    }
    let base = 1 + 4 * (usize::from(round) - 1);
    let offset = if round < nr {
        match op {
            AesOp::SubBytes => 0,
            AesOp::ShiftRows => 1,
            AesOp::MixColumns => 2,
            AesOp::AddRoundKey => 3,
        }
    } else {
        match op {
            AesOp::SubBytes => 0,
            AesOp::ShiftRows => 1,
            AesOp::AddRoundKey => 2,
            AesOp::MixColumns => return None,
        }
    };
    Some(base + offset)
}

impl EncryptionTrace {
    /// The state recorded for (`round`, `op`), if present.
    ///
    /// Traces produced by [`Aes::encrypt_traced`] have a fixed layout, so
    /// the lookup is O(1) by computed index (verified against the entry, so
    /// hand-built or truncated traces still resolve correctly via a scan).
    #[must_use]
    pub fn state(&self, round: u8, op: AesOp) -> Option<&State> {
        let nr = self.states.last()?.round;
        if let Some(idx) = canonical_index(round, op, nr) {
            if let Some(rs) = self.states.get(idx) {
                if rs.round == round && rs.op == op {
                    return Some(&rs.state);
                }
            }
        }
        self.states.iter().find(|s| s.round == round && s.op == op).map(|s| &s.state)
    }

    /// The state after the initial (round 0) AddRoundKey — the target of the
    /// paper's `Rd0-HW` power model.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty (cannot happen for traces produced by
    /// [`Aes::encrypt_traced`]).
    #[must_use]
    pub fn round0_addkey(&self) -> &State {
        self.state(0, AesOp::AddRoundKey).expect("trace always records round-0 AddRoundKey")
    }

    /// The state entering the final round's SubBytes (i.e. the output of the
    /// penultimate round) — the target of the paper's `Rd10-HW` model.
    #[must_use]
    pub fn last_round_input(&self) -> &State {
        let last = self.states.last().expect("non-empty trace").round;
        self.state(last - 1, AesOp::AddRoundKey).expect("penultimate round output recorded")
    }
}

/// An AES cipher instance (any key size) with tracing support.
///
/// # Examples
///
/// ```
/// use psc_aes::Aes;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let aes = Aes::new(&[0u8; 16])?;
/// let ct = aes.encrypt_block(&[0u8; 16]);
/// assert_eq!(aes.decrypt_block(&ct), [0u8; 16]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Aes {
    schedule: KeySchedule,
}

impl Aes {
    /// Build a cipher from a 16/24/32-byte key.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidKeyLength`] for other key lengths.
    pub fn new(key: &[u8]) -> Result<Self, InvalidKeyLength> {
        Ok(Self { schedule: KeySchedule::new(key)? })
    }

    /// The expanded key schedule.
    #[must_use]
    pub fn schedule(&self) -> &KeySchedule {
        &self.schedule
    }

    /// Encrypt one 16-byte block.
    #[must_use]
    pub fn encrypt_block(&self, plaintext: &State) -> State {
        let nr = self.schedule.rounds();
        let mut s = *plaintext;
        add_round_key(&mut s, self.schedule.round_key(0));
        for r in 1..nr {
            sub_bytes(&mut s);
            shift_rows(&mut s);
            mix_columns(&mut s);
            add_round_key(&mut s, self.schedule.round_key(r));
        }
        sub_bytes(&mut s);
        shift_rows(&mut s);
        add_round_key(&mut s, self.schedule.round_key(nr));
        s
    }

    /// Decrypt one 16-byte block.
    #[must_use]
    pub fn decrypt_block(&self, ciphertext: &State) -> State {
        let nr = self.schedule.rounds();
        let mut s = *ciphertext;
        add_round_key(&mut s, self.schedule.round_key(nr));
        for r in (1..nr).rev() {
            inv_shift_rows(&mut s);
            inv_sub_bytes(&mut s);
            add_round_key(&mut s, self.schedule.round_key(r));
            inv_mix_columns(&mut s);
        }
        inv_shift_rows(&mut s);
        inv_sub_bytes(&mut s);
        add_round_key(&mut s, self.schedule.round_key(0));
        s
    }

    /// Encrypt one block, reporting every intermediate state to `observer`
    /// as it is produced. Performs no heap allocation itself; the returned
    /// state is the ciphertext.
    pub fn encrypt_observed<O: RoundObserver>(&self, plaintext: &State, observer: &mut O) -> State {
        let nr = self.schedule.rounds();
        let mut s = *plaintext;

        add_round_key(&mut s, self.schedule.round_key(0));
        observer.observe(0, AesOp::AddRoundKey, &s);

        for r in 1..nr {
            let r8 = r as u8;
            sub_bytes(&mut s);
            observer.observe(r8, AesOp::SubBytes, &s);
            shift_rows(&mut s);
            observer.observe(r8, AesOp::ShiftRows, &s);
            mix_columns(&mut s);
            observer.observe(r8, AesOp::MixColumns, &s);
            add_round_key(&mut s, self.schedule.round_key(r));
            observer.observe(r8, AesOp::AddRoundKey, &s);
        }

        let nr8 = nr as u8;
        sub_bytes(&mut s);
        observer.observe(nr8, AesOp::SubBytes, &s);
        shift_rows(&mut s);
        observer.observe(nr8, AesOp::ShiftRows, &s);
        add_round_key(&mut s, self.schedule.round_key(nr));
        observer.observe(nr8, AesOp::AddRoundKey, &s);
        s
    }

    /// Hamming weights of every AddRoundKey output (rounds `0..=Nr`) of one
    /// encryption — the only states the default (HW-only) leakage model
    /// needs — computed with a fused, table-driven round function that
    /// never materializes the SubBytes/ShiftRows/MixColumns intermediates
    /// and performs no heap allocation.
    ///
    /// The AddRoundKey output states are computed exactly (T-tables are a
    /// pure refactoring of the round algebra), so the profile equals the
    /// per-round `hw_state` of [`Self::encrypt_traced`]'s AddRoundKey
    /// entries; a test pins this for every key size.
    #[must_use]
    #[allow(clippy::needless_range_loop)] // `r` indexes both `hw` and the key schedule
    pub fn round_hw_profile(&self, plaintext: &State) -> RoundHwProfile {
        #[inline]
        fn col(bytes: &[u8; 16], c: usize) -> u32 {
            u32::from_be_bytes([bytes[4 * c], bytes[4 * c + 1], bytes[4 * c + 2], bytes[4 * c + 3]])
        }
        #[inline]
        fn hw4(c: &[u32; 4]) -> u32 {
            c[0].count_ones() + c[1].count_ones() + c[2].count_ones() + c[3].count_ones()
        }
        #[inline]
        fn b(w: u32, byte: u32) -> usize {
            ((w >> (24 - 8 * byte)) & 0xFF) as usize
        }

        let nr = self.schedule.rounds();
        let mut hw = [0u32; 15];

        let k0 = self.schedule.round_key(0);
        let mut c = [
            col(plaintext, 0) ^ col(k0, 0),
            col(plaintext, 1) ^ col(k0, 1),
            col(plaintext, 2) ^ col(k0, 2),
            col(plaintext, 3) ^ col(k0, 3),
        ];
        hw[0] = hw4(&c);

        for r in 1..nr {
            let k = self.schedule.round_key(r);
            c = [
                T0[b(c[0], 0)] ^ T1[b(c[1], 1)] ^ T2[b(c[2], 2)] ^ T3[b(c[3], 3)] ^ col(k, 0),
                T0[b(c[1], 0)] ^ T1[b(c[2], 1)] ^ T2[b(c[3], 2)] ^ T3[b(c[0], 3)] ^ col(k, 1),
                T0[b(c[2], 0)] ^ T1[b(c[3], 1)] ^ T2[b(c[0], 2)] ^ T3[b(c[1], 3)] ^ col(k, 2),
                T0[b(c[3], 0)] ^ T1[b(c[0], 1)] ^ T2[b(c[1], 2)] ^ T3[b(c[2], 3)] ^ col(k, 3),
            ];
            hw[r] = hw4(&c);
        }

        // Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
        let s = |w: u32, byte: u32| u32::from(SBOX[b(w, byte)]);
        let k = self.schedule.round_key(nr);
        c = [
            ((s(c[0], 0) << 24) | (s(c[1], 1) << 16) | (s(c[2], 2) << 8) | s(c[3], 3)) ^ col(k, 0),
            ((s(c[1], 0) << 24) | (s(c[2], 1) << 16) | (s(c[3], 2) << 8) | s(c[0], 3)) ^ col(k, 1),
            ((s(c[2], 0) << 24) | (s(c[3], 1) << 16) | (s(c[0], 2) << 8) | s(c[1], 3)) ^ col(k, 2),
            ((s(c[3], 0) << 24) | (s(c[0], 1) << 16) | (s(c[1], 2) << 8) | s(c[2], 3)) ^ col(k, 3),
        ];
        hw[nr] = hw4(&c);

        RoundHwProfile { hw, rounds: nr }
    }

    /// Encrypt one block while recording every intermediate state.
    #[must_use]
    pub fn encrypt_traced(&self, plaintext: &State) -> EncryptionTrace {
        struct Recorder {
            states: Vec<RoundState>,
        }
        impl RoundObserver for Recorder {
            fn observe(&mut self, round: u8, op: AesOp, state: &State) {
                self.states.push(RoundState { round, op, state: *state });
            }
        }
        let mut recorder = Recorder { states: Vec::with_capacity(4 * self.schedule.rounds() + 1) };
        let ciphertext = self.encrypt_observed(plaintext, &mut recorder);
        EncryptionTrace { plaintext: *plaintext, ciphertext, states: recorder.states }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS-197 Appendix B: full worked AES-128 example.
    #[test]
    fn aes128_fips_appendix_b() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let pt = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expected = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        let aes = Aes::new(&key).unwrap();
        assert_eq!(aes.encrypt_block(&pt), expected);
        assert_eq!(aes.decrypt_block(&expected), pt);
    }

    /// FIPS-197 Appendix C.1 known-answer test (AES-128).
    #[test]
    fn aes128_fips_appendix_c1() {
        let key: Vec<u8> = (0u8..16).collect();
        let pt: [u8; 16] = core::array::from_fn(|i| (i as u8) * 0x11);
        let expected = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        let aes = Aes::new(&key).unwrap();
        assert_eq!(aes.encrypt_block(&pt), expected);
        assert_eq!(aes.decrypt_block(&expected), pt);
    }

    /// FIPS-197 Appendix C.2 known-answer test (AES-192).
    #[test]
    fn aes192_fips_appendix_c2() {
        let key: Vec<u8> = (0u8..24).collect();
        let pt: [u8; 16] = core::array::from_fn(|i| (i as u8) * 0x11);
        let expected = [
            0xdd, 0xa9, 0x7c, 0xa4, 0x86, 0x4c, 0xdf, 0xe0, 0x6e, 0xaf, 0x70, 0xa0, 0xec, 0x0d,
            0x71, 0x91,
        ];
        let aes = Aes::new(&key).unwrap();
        assert_eq!(aes.encrypt_block(&pt), expected);
        assert_eq!(aes.decrypt_block(&expected), pt);
    }

    /// FIPS-197 Appendix C.3 known-answer test (AES-256).
    #[test]
    fn aes256_fips_appendix_c3() {
        let key: Vec<u8> = (0u8..32).collect();
        let pt: [u8; 16] = core::array::from_fn(|i| (i as u8) * 0x11);
        let expected = [
            0x8e, 0xa2, 0xb7, 0xca, 0x51, 0x67, 0x45, 0xbf, 0xea, 0xfc, 0x49, 0x90, 0x4b, 0x49,
            0x60, 0x89,
        ];
        let aes = Aes::new(&key).unwrap();
        assert_eq!(aes.encrypt_block(&pt), expected);
        assert_eq!(aes.decrypt_block(&expected), pt);
    }

    #[test]
    fn traced_matches_untraced_ciphertext() {
        let aes = Aes::new(&[0x42u8; 16]).unwrap();
        for seed in 0u8..8 {
            let pt: [u8; 16] =
                core::array::from_fn(|i| (i as u8).wrapping_mul(seed).wrapping_add(seed));
            let trace = aes.encrypt_traced(&pt);
            assert_eq!(trace.ciphertext, aes.encrypt_block(&pt));
            assert_eq!(trace.plaintext, pt);
        }
    }

    #[test]
    fn trace_has_expected_state_count_aes128() {
        let aes = Aes::new(&[0u8; 16]).unwrap();
        let trace = aes.encrypt_traced(&[0u8; 16]);
        // 1 (rd0) + 9 rounds × 4 ops + final round × 3 ops = 40.
        assert_eq!(trace.states.len(), 1 + 9 * 4 + 3);
    }

    #[test]
    fn trace_round0_is_pt_xor_key() {
        let key = [0x0Fu8; 16];
        let pt = [0xF0u8; 16];
        let aes = Aes::new(&key).unwrap();
        let trace = aes.encrypt_traced(&pt);
        assert_eq!(trace.round0_addkey(), &[0xFFu8; 16]);
    }

    #[test]
    fn trace_last_round_input_consistency() {
        // last_round_input must equal InvShiftRows(InvSubBytes(ct ^ k10)).
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let aes = Aes::new(&key).unwrap();
        let pt = [0x5Au8; 16];
        let trace = aes.encrypt_traced(&pt);
        let mut s = trace.ciphertext;
        crate::state::add_round_key(&mut s, aes.schedule().round_key(10));
        crate::state::inv_shift_rows(&mut s);
        crate::state::inv_sub_bytes(&mut s);
        assert_eq!(&s, trace.last_round_input());
    }

    #[test]
    fn trace_final_state_is_ciphertext() {
        let aes = Aes::new(&[7u8; 16]).unwrap();
        let trace = aes.encrypt_traced(&[9u8; 16]);
        assert_eq!(trace.states.last().unwrap().state, trace.ciphertext);
        assert_eq!(trace.states.last().unwrap().op, AesOp::AddRoundKey);
        assert_eq!(trace.states.last().unwrap().round, 10);
    }

    #[test]
    fn state_lookup_missing_returns_none() {
        let aes = Aes::new(&[0u8; 16]).unwrap();
        let trace = aes.encrypt_traced(&[0u8; 16]);
        // Final round has no MixColumns.
        assert!(trace.state(10, AesOp::MixColumns).is_none());
        assert!(trace.state(0, AesOp::SubBytes).is_none());
    }

    #[test]
    fn observer_sees_exactly_the_traced_states() {
        struct Collector(Vec<RoundState>);
        impl RoundObserver for Collector {
            fn observe(&mut self, round: u8, op: AesOp, state: &State) {
                self.0.push(RoundState { round, op, state: *state });
            }
        }
        for key_len in [16usize, 24, 32] {
            let key: Vec<u8> = (0..key_len).map(|i| (i * 13 + 1) as u8).collect();
            let aes = Aes::new(&key).unwrap();
            let pt = [0xC3u8; 16];
            let mut collector = Collector(Vec::new());
            let ct = aes.encrypt_observed(&pt, &mut collector);
            let trace = aes.encrypt_traced(&pt);
            assert_eq!(ct, trace.ciphertext);
            assert_eq!(collector.0, trace.states);
        }
    }

    #[test]
    fn round_hw_profile_matches_traced_states() {
        for key_len in [16usize, 24, 32] {
            let key: Vec<u8> = (0..key_len).map(|i| (i * 29 + 17) as u8).collect();
            let aes = Aes::new(&key).unwrap();
            for seed in 0u8..8 {
                let pt: [u8; 16] =
                    core::array::from_fn(|i| (i as u8).wrapping_mul(seed).wrapping_add(seed ^ 3));
                let profile = aes.round_hw_profile(&pt);
                let trace = aes.encrypt_traced(&pt);
                assert_eq!(profile.rounds, aes.schedule().rounds());
                for r in 0..=profile.rounds {
                    let state = trace.state(r as u8, AesOp::AddRoundKey).unwrap();
                    let expected: u32 = state.iter().map(|&x| x.count_ones()).sum();
                    assert_eq!(profile.hw[r], expected, "key_len {key_len} seed {seed} round {r}");
                }
            }
        }
    }

    #[test]
    fn state_lookup_canonical_matches_scan() {
        let aes = Aes::new(&[0x42u8; 16]).unwrap();
        let trace = aes.encrypt_traced(&[0x5Au8; 16]);
        for rs in &trace.states {
            assert_eq!(trace.state(rs.round, rs.op), Some(&rs.state));
        }
    }

    #[test]
    fn state_lookup_survives_non_canonical_layout() {
        let aes = Aes::new(&[0u8; 16]).unwrap();
        let mut trace = aes.encrypt_traced(&[1u8; 16]);
        // A hand-mangled trace (e.g. filtered or reordered by a consumer)
        // must still resolve via the fallback scan.
        trace.states.retain(|s| s.op == AesOp::AddRoundKey);
        for r in 0..=10u8 {
            assert!(trace.state(r, AesOp::AddRoundKey).is_some(), "round {r}");
        }
        assert!(trace.state(5, AesOp::SubBytes).is_none());
    }

    #[test]
    fn encrypt_decrypt_roundtrip_many_sizes() {
        for key_len in [16usize, 24, 32] {
            let key: Vec<u8> = (0..key_len).map(|i| (i * 7 + 3) as u8).collect();
            let aes = Aes::new(&key).unwrap();
            for s in 0u8..16 {
                let pt: [u8; 16] =
                    core::array::from_fn(|i| (i as u8).wrapping_add(s).wrapping_mul(31));
                assert_eq!(aes.decrypt_block(&aes.encrypt_block(&pt)), pt);
            }
        }
    }
}
