//! Pins the zero-allocation guarantee of the fused leakage kernel.
//!
//! `LeakageModel::activity` is the per-trace hot path of every simulated
//! campaign; this test swaps in a counting global allocator and asserts
//! that, after warm-up, fused activity evaluation performs **zero** heap
//! allocations per call — while the traced path demonstrably allocates.
//! The counter is thread-local so the harness running other tests (or its
//! own machinery) in parallel threads cannot perturb a measurement.

use psc_aes::leakage::{LeakageModel, LeakageWeights};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

thread_local! {
    // `const` initialization keeps the TLS access itself allocation-free,
    // so touching it from inside `alloc` cannot recurse.
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: delegates every operation unchanged to the system allocator; the
// counter is a side effect only.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations made by *this thread* while `f` runs.
fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.with(Cell::get);
    f();
    ALLOCATIONS.with(Cell::get) - before
}

#[test]
fn fused_activity_is_allocation_free() {
    for weights in [LeakageWeights::default(), LeakageWeights::default().with_hd(0.2)] {
        let model = LeakageModel::with_weights(&[0x2Bu8; 16], weights).unwrap();
        let pt = [0xA5u8; 16];
        // Warm-up outside the measured section.
        let expected = model.activity(&pt);
        let mut last = 0.0;
        let count = allocations_during(|| {
            for _ in 0..64 {
                last = model.activity(&pt);
            }
        });
        assert_eq!(count, 0, "fused activity must not touch the heap");
        assert_eq!(last.to_bits(), expected.to_bits());
    }
}

#[test]
fn traced_activity_allocates_its_trace() {
    let model = LeakageModel::new(&[0x2Bu8; 16]).unwrap();
    let pt = [0xA5u8; 16];
    let count = allocations_during(|| {
        let _ = model.activity_traced(&pt);
    });
    assert!(count >= 1, "the traced path materializes a Vec<RoundState>");
}
