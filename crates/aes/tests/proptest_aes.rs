//! Property-based tests for the AES substrate.

use proptest::prelude::*;
use psc_aes::armv8::Armv8Aes;
use psc_aes::hamming::{hd_bytes, hd_u8, hw_bytes, hw_u8};
use psc_aes::leakage::{LeakageModel, LeakageWeights};
use psc_aes::{Aes, KeySchedule};

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 16),
        proptest::collection::vec(any::<u8>(), 24),
        proptest::collection::vec(any::<u8>(), 32),
    ]
}

proptest! {
    #[test]
    fn encrypt_then_decrypt_is_identity(key in key_strategy(), pt in any::<[u8; 16]>()) {
        let aes = Aes::new(&key).unwrap();
        prop_assert_eq!(aes.decrypt_block(&aes.encrypt_block(&pt)), pt);
    }

    #[test]
    fn armv8_path_matches_reference(key in key_strategy(), pt in any::<[u8; 16]>()) {
        let hw = Armv8Aes::new(&key).unwrap();
        let sw = Aes::new(&key).unwrap();
        prop_assert_eq!(hw.encrypt_block(&pt), sw.encrypt_block(&pt));
    }

    #[test]
    fn armv8_decrypt_inverts(key in key_strategy(), pt in any::<[u8; 16]>()) {
        let hw = Armv8Aes::new(&key).unwrap();
        prop_assert_eq!(hw.decrypt_block(&hw.encrypt_block(&pt)), pt);
    }

    #[test]
    fn encryption_is_injective_in_plaintext(
        key in proptest::collection::vec(any::<u8>(), 16),
        a in any::<[u8; 16]>(),
        b in any::<[u8; 16]>(),
    ) {
        let aes = Aes::new(&key).unwrap();
        if a != b {
            prop_assert_ne!(aes.encrypt_block(&a), aes.encrypt_block(&b));
        }
    }

    #[test]
    fn key_schedule_size_invariants(key in key_strategy()) {
        let ks = KeySchedule::new(&key).unwrap();
        prop_assert_eq!(ks.round_keys().len(), ks.rounds() + 1);
        prop_assert_eq!(&ks.round_key(0)[..], &key[..16]);
    }

    #[test]
    fn hw_bounds(x in any::<u8>()) {
        prop_assert!(hw_u8(x) <= 8);
    }

    #[test]
    fn hd_triangle_inequality(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
        prop_assert!(hd_u8(a, c) <= hd_u8(a, b) + hd_u8(b, c));
    }

    #[test]
    fn hd_zero_iff_equal(a in any::<u8>(), b in any::<u8>()) {
        prop_assert_eq!(hd_u8(a, b) == 0, a == b);
    }

    #[test]
    fn hw_of_slice_bounds(xs in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert!(hw_bytes(&xs) <= 8 * xs.len() as u32);
    }

    #[test]
    fn hd_slice_symmetric(xs in any::<[u8; 16]>(), ys in any::<[u8; 16]>()) {
        prop_assert_eq!(hd_bytes(&xs, &ys), hd_bytes(&ys, &xs));
    }

    #[test]
    fn traced_encryption_consistent(key in proptest::collection::vec(any::<u8>(), 16), pt in any::<[u8; 16]>()) {
        let aes = Aes::new(&key).unwrap();
        let trace = aes.encrypt_traced(&pt);
        prop_assert_eq!(trace.ciphertext, aes.encrypt_block(&pt));
        // Round-0 AddRoundKey output is pt ^ key for AES-128.
        let expected: [u8; 16] = core::array::from_fn(|i| pt[i] ^ key[i]);
        prop_assert_eq!(trace.round0_addkey(), &expected);
    }

    #[test]
    fn leakage_activity_bounded(key in proptest::collection::vec(any::<u8>(), 16), pt in any::<[u8; 16]>()) {
        let model = LeakageModel::new(&key).unwrap();
        let activity = model.activity(&pt);
        prop_assert!(activity >= 0.0);
        prop_assert!(activity <= model.max_activity());
    }

    #[test]
    fn fused_activity_matches_traced_bit_for_bit(
        key in key_strategy(),
        pt in any::<[u8; 16]>(),
        round0 in 0.0f64..4.0,
        round_out in 0.0f64..4.0,
        last_in in 0.0f64..4.0,
        ct in 0.0f64..4.0,
        hd in prop_oneof![(0.0f64..2.0).prop_map(|_| 0.0), 1e-3f64..2.0],
    ) {
        let weights = LeakageWeights {
            round0_addkey: round0,
            round_output: round_out,
            last_round_input: last_in,
            ciphertext: ct,
            hd_consecutive: hd,
        };
        let model = LeakageModel::with_weights(&key, weights).unwrap();
        let (traced, trace) = model.activity_traced(&pt);
        // The fused kernel and the trace replay share one summation order,
        // so equality is exact — not within an epsilon.
        prop_assert_eq!(model.activity(&pt).to_bits(), traced.to_bits());
        prop_assert_eq!(model.activity_of_trace(&trace).to_bits(), traced.to_bits());
    }

    #[test]
    fn leakage_monotone_in_uniform_weight(
        key in proptest::collection::vec(any::<u8>(), 16),
        pt in any::<[u8; 16]>(),
    ) {
        let small = LeakageModel::with_weights(&key, LeakageWeights::uniform(0.5)).unwrap();
        let large = LeakageModel::with_weights(&key, LeakageWeights::uniform(1.0)).unwrap();
        prop_assert!(large.activity(&pt) >= small.activity(&pt));
        // Uniform weights scale linearly.
        prop_assert!((large.activity(&pt) - 2.0 * small.activity(&pt)).abs() < 1e-9);
    }
}
