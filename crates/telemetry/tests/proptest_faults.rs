//! Property-based tests for [`psc_telemetry::faults::RetryPolicy`]:
//! bounded attempts, monotone capped backoff, and deterministic jitter
//! for a fixed seed. The policy was previously only exercised
//! indirectly through recorder-fault integration tests; these pin its
//! contract directly, which the distributed fleet transport now leans
//! on for reconnect scheduling.

use proptest::prelude::*;
use psc_telemetry::faults::RetryPolicy;
use std::time::Duration;

fn policy_strategy() -> impl Strategy<Value = RetryPolicy> {
    (1u32..16, 1u64..2_000, 1u64..50_000).prop_map(|(max_attempts, base_us, extra_us)| {
        let base_delay = Duration::from_micros(base_us);
        RetryPolicy {
            max_attempts,
            base_delay,
            // Ceiling at or above the base so the cap is meaningful.
            max_delay: base_delay + Duration::from_micros(extra_us),
        }
    })
}

proptest! {
    /// Attempts are bounded: exactly `max_attempts - 1` retries are
    /// allowed, and the first disallowed attempt is `max_attempts`.
    #[test]
    fn attempts_are_bounded(policy in policy_strategy()) {
        let retries = (1..=policy.max_attempts + 4)
            .filter(|&a| policy.should_retry(a))
            .count() as u32;
        prop_assert_eq!(retries, policy.max_attempts - 1);
        prop_assert!(!policy.should_retry(policy.max_attempts));
        if policy.max_attempts > 1 {
            prop_assert!(policy.should_retry(policy.max_attempts - 1));
        }
    }

    /// Backoff is monotone non-decreasing in the attempt number before
    /// the cap engages, and never exceeds 1.25 × `max_delay` (the cap
    /// plus the maximum jitter) anywhere.
    #[test]
    fn backoff_is_monotone_and_capped(policy in policy_strategy(), salt in any::<u64>()) {
        let ceiling = policy.max_delay.mul_f64(1.25);
        let mut prev = Duration::ZERO;
        for attempt in 1..=24u32 {
            let d = policy.delay(attempt, salt);
            prop_assert!(d <= ceiling, "attempt {attempt}: {d:?} > {ceiling:?}");
            // The uncapped exponential doubles per attempt while jitter
            // adds at most 25%, so the sequence is strictly ordered
            // until the cap truncates it; after that, jitter may wobble
            // within the capped band. Only assert monotonicity while
            // the un-jittered base is still below the cap.
            let exp = attempt.saturating_sub(1).min(20);
            let base = policy.base_delay.saturating_mul(1u32 << exp);
            if base < policy.max_delay {
                prop_assert!(d >= prev, "attempt {attempt}: {d:?} < previous {prev:?}");
                prev = d;
            }
            prop_assert!(d >= policy.base_delay.min(policy.max_delay));
        }
    }

    /// Jitter is deterministic: the same (attempt, salt) pair always
    /// produces the same delay, and the jitter stays within +25% of
    /// the capped exponential base.
    #[test]
    fn jitter_is_deterministic_for_fixed_seed(
        policy in policy_strategy(),
        salt in any::<u64>(),
        attempt in 1u32..24,
    ) {
        let d = policy.delay(attempt, salt);
        prop_assert_eq!(d, policy.delay(attempt, salt), "same salt, same schedule");
        let exp = attempt.saturating_sub(1).min(20);
        let base = policy.base_delay.saturating_mul(1u32 << exp).min(policy.max_delay);
        prop_assert!(d >= base, "jitter only adds");
        prop_assert!(d <= base.mul_f64(1.25), "jitter bounded at +25%");
    }

    /// Distinct salts decorrelate: across a window of salts at least
    /// one pair of schedules differs (shards pass their shard index as
    /// the salt precisely so their retries do not stampede in phase).
    #[test]
    fn salts_decorrelate_schedules(base_us in 100u64..2_000, salt in any::<u64>()) {
        let policy = RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_micros(base_us),
            max_delay: Duration::from_micros(base_us * 1_000),
        };
        let schedule = |s: u64| -> Vec<Duration> {
            (1..=4).map(|a| policy.delay(a, s)).collect()
        };
        let first = schedule(salt);
        let any_differs = (1..=8u64).any(|off| schedule(salt.wrapping_add(off)) != first);
        prop_assert!(any_differs, "eight neighbouring salts all collided");
    }
}
