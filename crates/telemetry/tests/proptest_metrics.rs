//! Property-based tests for the metrics layer: snapshot merge laws
//! (the same shape the analysis accumulators obey) and histogram
//! bucket-boundary invariants.

use proptest::prelude::*;
use psc_telemetry::metrics::{bucket_bounds, bucket_index, MetricsRegistry, MetricsSnapshot};

/// One instrumentation event: which shard it lands on, which metric
/// family it updates, and the recorded value.
#[derive(Clone, Copy, Debug)]
enum Op {
    Counter(u8, u64),
    Gauge(u8, u64),
    Histogram(u8, u64),
}

fn op_strategy() -> impl Strategy<Value = (u8, Op)> {
    let kind = prop_oneof![
        (0u8..3, any::<u32>()).prop_map(|(n, v)| Op::Counter(n, u64::from(v))),
        (0u8..3, any::<u32>()).prop_map(|(n, v)| Op::Gauge(n, u64::from(v))),
        (0u8..3, any::<u64>()).prop_map(|(n, v)| Op::Histogram(n, v)),
    ];
    (0u8..4, kind)
}

fn apply(registry: &MetricsRegistry, op: Op) {
    match op {
        Op::Counter(n, v) => registry.counter(&format!("test.counter{n}")).add(v),
        Op::Gauge(n, v) => registry.gauge(&format!("test.gauge{n}")).set_max(v),
        Op::Histogram(n, v) => registry.histogram(&format!("test.hist{n}")).record(v),
    }
}

fn merged(shards: &[MetricsRegistry]) -> MetricsSnapshot {
    shards
        .iter()
        .map(MetricsRegistry::snapshot)
        .fold(MetricsSnapshot::default(), |acc, s| acc.merged(s))
}

proptest! {
    /// The production topology: one registry per shard, snapshots merged
    /// at campaign end. The merge must equal a single-registry run over
    /// the same event stream — exactly the `TvlaAccumulator::merged` /
    /// `Cpa::merge` law the analysis shards rely on. Counters add,
    /// gauges max, histograms add bucket-wise; `MetricsSnapshot` is
    /// `Eq`, so the law is pinned exactly, not within tolerance.
    #[test]
    fn sharded_merge_equals_single_registry_run(
        ops in proptest::collection::vec(op_strategy(), 0..200),
    ) {
        let single = MetricsRegistry::new();
        let shards: Vec<MetricsRegistry> =
            (0..4).map(|_| MetricsRegistry::new()).collect();
        for &(shard, op) in &ops {
            apply(&single, op);
            apply(&shards[usize::from(shard)], op);
        }
        prop_assert_eq!(merged(&shards), single.snapshot());
    }

    /// Merge order must not matter: shard completion order is a race.
    #[test]
    fn merge_is_commutative_and_associative(
        ops in proptest::collection::vec(op_strategy(), 0..120),
    ) {
        let shards: Vec<MetricsRegistry> =
            (0..4).map(|_| MetricsRegistry::new()).collect();
        for &(shard, op) in &ops {
            apply(&shards[usize::from(shard)], op);
        }
        let forward = merged(&shards);
        let reverse = shards
            .iter()
            .rev()
            .map(MetricsRegistry::snapshot)
            .fold(MetricsSnapshot::default(), |acc, s| acc.merged(s));
        let s = |i: usize| shards[i].snapshot();
        let right_assoc = s(0).merged(s(1).merged(s(2).merged(s(3))));
        prop_assert_eq!(&forward, &reverse);
        prop_assert_eq!(&forward, &right_assoc);
    }

    /// The empty snapshot is the merge identity on both sides.
    #[test]
    fn empty_snapshot_is_merge_identity(
        ops in proptest::collection::vec(op_strategy(), 0..80),
    ) {
        let registry = MetricsRegistry::new();
        for &(_, op) in &ops {
            apply(&registry, op);
        }
        let snap = registry.snapshot();
        prop_assert_eq!(snap.clone().merged(MetricsSnapshot::default()), snap.clone());
        prop_assert_eq!(MetricsSnapshot::default().merged(snap.clone()), snap);
    }

    /// Every value lands in a bucket whose bounds contain it: bucket 0
    /// holds exactly zero, bucket i (i ≥ 1) holds [2^(i-1), 2^i), and
    /// the top bucket is unbounded above.
    #[test]
    fn bucket_bounds_contain_their_values(value in any::<u64>()) {
        let index = bucket_index(value);
        prop_assert!(index < 64);
        let (lo, hi) = bucket_bounds(index);
        prop_assert!(lo <= value, "lo {lo} > value {value} (bucket {index})");
        if let Some(hi) = hi {
            prop_assert!(value < hi, "value {value} >= hi {hi} (bucket {index})");
        } else {
            prop_assert_eq!(index, 63, "only the top bucket is unbounded");
        }
        if value == 0 {
            prop_assert_eq!(index, 0);
        } else {
            prop_assert!(index >= 1, "bucket 0 holds only zero");
        }
    }

    /// Bucket assignment is monotone in the value, and exact powers of
    /// two open their bucket: 2^k is the smallest value in bucket k+1.
    #[test]
    fn bucket_index_is_monotone_and_log2_aligned(a in any::<u64>(), b in any::<u64>(), k in 0u32..62) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
        let pow = 1u64 << k;
        prop_assert_eq!(bucket_index(pow), (k + 1) as usize);
        prop_assert_eq!(bucket_bounds((k + 1) as usize).0, pow);
        prop_assert_eq!(bucket_index(pow - 1), if k == 0 { 0 } else { k as usize });
    }
}
