//! Property-based tests for the telemetry substrate: ring-buffer FIFO /
//! drop-accounting invariants and accumulator merge laws.

use proptest::prelude::*;
use psc_sca::stats::{Correlation, RunningMoments};
use psc_sca::tvla::{PlaintextClass, TvlaAccumulator};
use psc_telemetry::ring::{OverflowPolicy, RingBuffer};

fn policy_strategy() -> impl Strategy<Value = OverflowPolicy> {
    prop_oneof![
        Just(OverflowPolicy::Block),
        Just(OverflowPolicy::DropNewest),
        Just(OverflowPolicy::DropOldest),
    ]
}

fn tvla_from_obs(obs: &[(bool, u8, f64)]) -> TvlaAccumulator {
    let mut acc = TvlaAccumulator::new();
    for &(pass, class, value) in obs {
        acc.push(usize::from(pass), PlaintextClass::ALL[usize::from(class % 3)], value);
    }
    acc
}

proptest! {
    /// Conservation: every push is either accepted or dropped, and the
    /// queue length never exceeds capacity.
    #[test]
    fn ring_conserves_items(
        capacity in 1usize..32,
        policy in policy_strategy(),
        items in proptest::collection::vec(any::<u16>(), 0..200),
    ) {
        let mut ring = RingBuffer::new(capacity, policy);
        for &item in &items {
            ring.push(item);
            prop_assert!(ring.len() <= capacity);
        }
        match policy {
            // Refusing policies: every push is either accepted or shed.
            OverflowPolicy::Block | OverflowPolicy::DropNewest => {
                prop_assert_eq!(ring.accepted() + ring.dropped(), items.len() as u64);
            }
            // Evicting policy: every push is accepted; drops count the
            // queued items that were evicted to make room.
            OverflowPolicy::DropOldest => {
                prop_assert_eq!(ring.accepted(), items.len() as u64);
                prop_assert_eq!(ring.dropped(), (ring.accepted() - ring.len() as u64));
            }
        }
        let drained: Vec<u16> = std::iter::from_fn(|| ring.pop()).collect();
        prop_assert!(drained.len() <= items.len());
    }

    /// FIFO: under lossless conditions (never full) the ring replays the
    /// input sequence exactly.
    #[test]
    fn ring_is_fifo_when_not_full(
        policy in policy_strategy(),
        items in proptest::collection::vec(any::<u16>(), 0..64),
    ) {
        let mut ring = RingBuffer::new(64, policy);
        for &item in &items {
            prop_assert!(ring.push(item));
        }
        prop_assert_eq!(ring.dropped(), 0);
        let drained: Vec<u16> = std::iter::from_fn(|| ring.pop()).collect();
        prop_assert_eq!(drained, items);
    }

    /// DropOldest keeps exactly the newest `capacity` items, in order.
    #[test]
    fn drop_oldest_keeps_newest_suffix(
        capacity in 1usize..16,
        items in proptest::collection::vec(any::<u16>(), 0..100),
    ) {
        let mut ring = RingBuffer::new(capacity, OverflowPolicy::DropOldest);
        for &item in &items {
            prop_assert!(ring.push(item), "DropOldest always accepts");
        }
        let drained: Vec<u16> = std::iter::from_fn(|| ring.pop()).collect();
        let expected: Vec<u16> =
            items[items.len().saturating_sub(capacity)..].to_vec();
        prop_assert_eq!(drained, expected);
        prop_assert_eq!(
            ring.dropped(),
            items.len().saturating_sub(capacity) as u64
        );
    }

    /// DropNewest keeps exactly the oldest `capacity` items, in order.
    #[test]
    fn drop_newest_keeps_oldest_prefix(
        capacity in 1usize..16,
        items in proptest::collection::vec(any::<u16>(), 0..100),
    ) {
        let mut ring = RingBuffer::new(capacity, OverflowPolicy::DropNewest);
        for &item in &items {
            ring.push(item);
        }
        let drained: Vec<u16> = std::iter::from_fn(|| ring.pop()).collect();
        let expected: Vec<u16> = items[..items.len().min(capacity)].to_vec();
        prop_assert_eq!(drained, expected);
    }

    /// RunningMoments merge is commutative within tolerance.
    #[test]
    fn moments_merge_commutes(
        a in proptest::collection::vec(-1.0e3f64..1.0e3, 0..60),
        b in proptest::collection::vec(-1.0e3f64..1.0e3, 0..60),
    ) {
        let m = |xs: &Vec<f64>| {
            let mut m = RunningMoments::new();
            m.extend(xs.iter().copied());
            m
        };
        let ab = m(&a).merged(m(&b));
        let ba = m(&b).merged(m(&a));
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9);
        prop_assert!((ab.variance() - ba.variance()).abs() < 1e-7);
    }

    /// Merging a split equals accumulating the whole stream.
    #[test]
    fn moments_merge_of_split_equals_whole(
        xs in proptest::collection::vec(-1.0e3f64..1.0e3, 1..120),
        cut_seed in any::<u32>(),
    ) {
        let cut = cut_seed as usize % (xs.len() + 1);
        let m = |slice: &[f64]| {
            let mut m = RunningMoments::new();
            m.extend(slice.iter().copied());
            m
        };
        let whole = m(&xs);
        let merged = m(&xs[..cut]).merged(m(&xs[cut..]));
        prop_assert_eq!(whole.count(), merged.count());
        prop_assert!((whole.mean() - merged.mean()).abs() < 1e-9);
        prop_assert!((whole.variance() - merged.variance()).abs() < 1e-7);
    }

    /// Correlation merge: commutative and split-equals-whole (the CPA
    /// accumulator is a per-bin family of exactly these sums).
    #[test]
    fn correlation_merge_laws(
        pairs in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 2..100),
        cut_seed in any::<u32>(),
    ) {
        let cut = cut_seed as usize % (pairs.len() + 1);
        let c = |slice: &[(f64, f64)]| {
            let mut c = Correlation::new();
            for &(h, t) in slice {
                c.push(h, t);
            }
            c
        };
        let whole = c(&pairs);
        let merged = c(&pairs[..cut]).merged(c(&pairs[cut..]));
        prop_assert_eq!(whole.count(), merged.count());
        prop_assert!((whole.r() - merged.r()).abs() < 1e-9);
        let ab = c(&pairs[..cut]).merged(c(&pairs[cut..]));
        let ba = c(&pairs[cut..]).merged(c(&pairs[..cut]));
        prop_assert!((ab.r() - ba.r()).abs() < 1e-12);
    }

    /// TVLA accumulator merge: commutative, and split-equals-whole on
    /// every t-score cell.
    #[test]
    fn tvla_accumulator_merge_laws(
        obs in proptest::collection::vec(
            (any::<bool>(), any::<u8>(), -100.0f64..100.0),
            1..150,
        ),
        cut_seed in any::<u32>(),
    ) {
        let cut = cut_seed as usize % (obs.len() + 1);
        let whole = tvla_from_obs(&obs);
        let left = tvla_from_obs(&obs[..cut]);
        let right = tvla_from_obs(&obs[cut..]);
        let merged = left.merged(right);
        let commuted = right.merged(left);
        prop_assert_eq!(whole.total_count(), merged.total_count());
        let wm = whole.matrix("w");
        let mm = merged.matrix("m");
        let cm = commuted.matrix("c");
        for ((w, m), c) in wm.cells.iter().zip(&mm.cells).zip(&cm.cells) {
            prop_assert!((w.t_score - m.t_score).abs() < 1e-9,
                "split/whole: {} vs {}", w.t_score, m.t_score);
            prop_assert!((m.t_score - c.t_score).abs() < 1e-9,
                "commutativity: {} vs {}", m.t_score, c.t_score);
        }
    }
}
