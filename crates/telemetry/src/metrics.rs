//! Pipeline metrics: atomic counters, gauges and log2-bucket histograms
//! behind a mergeable [`MetricsRegistry`].
//!
//! The campaign pipeline moves columnar blocks across a multi-shard bus
//! with overflow policies, recycle lanes and adaptive early-stop — state
//! that a multi-tenant service must be able to *see* to be operated,
//! admission-controlled or perf-debugged. This module is the vendored-
//! budget substrate for that visibility:
//!
//! * [`Counter`] — a monotone atomic count (blocks shipped, drops,
//!   denied reads, recorder I/O errors);
//! * [`Gauge`] — a high-water mark (peak bus occupancy), merged by max;
//! * [`Histogram`] — a fixed [`BUCKETS`]-slot log2-bucket latency
//!   histogram (`Processor::on_block` dispatch time, source block-fill
//!   time) with an exact total sum for mean latency;
//! * [`MetricsRegistry`] — a name → metric map handing out shared
//!   [`Arc`] handles, so hot paths touch pre-resolved atomics and never
//!   the registry lock.
//!
//! Everything is **merge-exact**, mirroring the accumulator laws of
//! `TvlaAccumulator::merged` / `Cpa::merge`: every shard (or fleet
//! member) runs its own registry, and
//! [`MetricsSnapshot::merged`] combines the per-shard snapshots into
//! exactly the totals a single shared registry would have produced —
//! counters add, gauges max, histograms add bucket-wise. The law is
//! pinned by `crates/telemetry/tests/proptest_metrics.rs`.
//!
//! Instrumentation is **zero-cost when off**: the campaign driver holds
//! `Option<…>` handles and the uninstrumented path never allocates a
//! registry, reads a clock, or touches an atomic (bit-identical outputs,
//! measured in `BENCH_bus.json`).
//!
//! There is no JSON dependency in the air-gapped workspace, so
//! snapshots emit JSON by hand ([`MetricsReport::to_json`]) and
//! [`validate_json`] provides a minimal parser for tests, examples and
//! CI to check the artifacts actually parse.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use psc_sca::checkpoint::{CheckpointError, PayloadReader, PayloadWriter};

/// Number of histogram buckets: bucket 0 holds zero, bucket `i`
/// (1 ≤ i < BUCKETS-1) holds values in `[2^(i-1), 2^i)`, and the last
/// bucket holds everything from `2^(BUCKETS-2)` up.
pub const BUCKETS: usize = 64;

/// The bucket a value lands in (see [`BUCKETS`] for the boundaries).
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// Inclusive lower and exclusive upper bound of bucket `index`
/// (`None` = unbounded top bucket).
///
/// # Panics
///
/// Panics if `index >= BUCKETS`.
#[must_use]
pub fn bucket_bounds(index: usize) -> (u64, Option<u64>) {
    assert!(index < BUCKETS, "bucket index out of range");
    match index {
        0 => (0, Some(1)),
        i if i == BUCKETS - 1 => (1u64 << (BUCKETS - 2), None),
        i => (1u64 << (i - 1), Some(1u64 << i)),
    }
}

/// Monotone atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n` to the count.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current count.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// High-water-mark gauge: records the maximum value observed. Merged by
/// max across shards (a fleet's peak occupancy is the max of its
/// members' peaks, not their sum).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Raise the gauge to `value` if it exceeds the current maximum.
    pub fn set_max(&self, value: u64) {
        self.0.fetch_max(value, Ordering::Relaxed);
    }

    /// Current maximum.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Fixed log2-bucket histogram with an exact running sum, sized for
/// nanosecond latencies (the top bucket only engages beyond ~146 years).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self { buckets: std::array::from_fn(|_| AtomicU64::new(0)), sum: AtomicU64::new(0) }
    }
}

impl Histogram {
    /// Record one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The log2-bucket upper-bound estimate of the `p`-quantile
    /// (see [`HistogramSnapshot::percentile`]). `None` when empty.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<u64> {
        self.snapshot().percentile(p)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            sum: self.sum(),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((i, n))
                })
                .collect(),
        }
    }
}

/// One registered metric: the shared handle hot paths hold.
#[derive(Debug, Clone)]
pub enum Metric {
    /// A [`Counter`] handle.
    Counter(Arc<Counter>),
    /// A [`Gauge`] handle.
    Gauge(Arc<Gauge>),
    /// A [`Histogram`] handle.
    Histogram(Arc<Histogram>),
}

/// A name → metric map handing out shared atomic handles.
///
/// The lock is touched only at registration ([`MetricsRegistry::counter`]
/// and friends resolve once, up front); updates go straight to the
/// returned [`Arc`]'d atomics. One registry per shard plus
/// [`MetricsSnapshot::merged`] aggregates exactly like the analysis
/// accumulators; a single registry shared across threads produces the
/// same totals (the merge law pinned by the proptests).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// Empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match inner
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric {name:?} already registered as {other:?}, wanted a counter"),
        }
    }

    /// Get or create the gauge `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match inner
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name:?} already registered as {other:?}, wanted a gauge"),
        }
    }

    /// Get or create the histogram `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match inner
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("metric {name:?} already registered as {other:?}, wanted a histogram"),
        }
    }

    /// A point-in-time copy of every registered metric. Safe to take
    /// while writers are live (each atomic is read once; the snapshot is
    /// internally consistent per metric, which is all the merge laws
    /// need).
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        MetricsSnapshot {
            metrics: inner
                .iter()
                .map(|(name, metric)| {
                    let value = match metric {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }
}

/// Frozen histogram state: total sum plus the non-empty buckets as
/// `(bucket index, count)` pairs in index order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Sum of all recorded values.
    pub sum: u64,
    /// Non-empty `(bucket index, count)` pairs, ascending by index.
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|&(_, n)| n).sum()
    }

    /// Mean recorded value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum as f64 / count as f64
        }
    }

    /// The log2-bucket upper-bound estimate of the `p`-quantile: the
    /// largest value the bucket holding the `ceil(p · count)`-th smallest
    /// observation can contain (bucket 0 → `0`, bounded buckets →
    /// `hi - 1`, the unbounded top bucket → `u64::MAX`). `p` is clamped
    /// to `[0, 1]`; `None` when the histogram is empty. An upper bound —
    /// never optimistic — which is the right polarity for a saturation
    /// signal like p99 dispatch latency.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let rank = ((p * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for &(index, n) in &self.buckets {
            seen = seen.saturating_add(n);
            if seen >= rank {
                return Some(match bucket_bounds(index) {
                    (_, Some(hi)) => hi - 1,
                    (_, None) => u64::MAX,
                });
            }
        }
        unreachable!("cumulative bucket count reaches the total count")
    }

    /// Bucket-wise sum — the histogram merge law. Sums wrap on overflow,
    /// matching the relaxed `fetch_add` the live histogram uses.
    #[must_use]
    pub fn merged(self, other: Self) -> Self {
        let mut buckets: BTreeMap<usize, u64> = self.buckets.into_iter().collect();
        for (i, n) in other.buckets {
            let slot = buckets.entry(i).or_default();
            *slot = slot.wrapping_add(n);
        }
        Self { sum: self.sum.wrapping_add(other.sum), buckets: buckets.into_iter().collect() }
    }
}

/// Frozen value of one metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge maximum.
    Gauge(u64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

impl MetricValue {
    fn merged(self, other: Self) -> Self {
        match (self, other) {
            (MetricValue::Counter(a), MetricValue::Counter(b)) => {
                MetricValue::Counter(a.wrapping_add(b))
            }
            (MetricValue::Gauge(a), MetricValue::Gauge(b)) => MetricValue::Gauge(a.max(b)),
            (MetricValue::Histogram(a), MetricValue::Histogram(b)) => {
                MetricValue::Histogram(a.merged(b))
            }
            (a, b) => panic!("metric kind mismatch in merge: {a:?} vs {b:?}"),
        }
    }
}

/// A point-in-time copy of a registry, mergeable across shards.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Metric values by name.
    pub metrics: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// The merge law, mirroring the analysis accumulators: counters add,
    /// gauges max, histograms add bucket-wise; names union.
    ///
    /// # Panics
    ///
    /// Panics if the same name holds different metric kinds in the two
    /// snapshots (a schema error, like merging CPA state under different
    /// models).
    #[must_use]
    pub fn merged(mut self, other: Self) -> Self {
        for (name, value) in other.metrics {
            match self.metrics.remove(&name) {
                None => {
                    self.metrics.insert(name, value);
                }
                Some(mine) => {
                    self.metrics.insert(name, mine.merged(value));
                }
            }
        }
        self
    }

    /// Counter total under `name` (0 when absent or not a counter).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        match self.metrics.get(name) {
            Some(MetricValue::Counter(n)) => *n,
            _ => 0,
        }
    }

    /// Gauge maximum under `name` (0 when absent or not a gauge).
    #[must_use]
    pub fn gauge(&self, name: &str) -> u64 {
        match self.metrics.get(name) {
            Some(MetricValue::Gauge(n)) => *n,
            _ => 0,
        }
    }

    /// Histogram state under `name`, if present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.metrics.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Append this snapshot to a codec-v3 payload: metric count, then per
    /// metric a name string, a kind byte (0 counter / 1 gauge /
    /// 2 histogram) and the kind's state. [`Self::decode`] inverts it
    /// bit-exactly; the pair is what the `psc serve` wire protocol and
    /// the distributed-aggregation framing ship between processes.
    pub fn encode(&self, w: &mut PayloadWriter) {
        w.put_u32(self.metrics.len() as u32);
        for (name, value) in &self.metrics {
            w.put_str(name);
            match value {
                MetricValue::Counter(n) => {
                    w.put_u8(0);
                    w.put_u64(*n);
                }
                MetricValue::Gauge(n) => {
                    w.put_u8(1);
                    w.put_u64(*n);
                }
                MetricValue::Histogram(h) => {
                    w.put_u8(2);
                    w.put_u64(h.sum);
                    w.put_u16(h.buckets.len() as u16);
                    for &(index, count) in &h.buckets {
                        w.put_u8(index as u8);
                        w.put_u64(count);
                    }
                }
            }
        }
    }

    /// Decode a snapshot previously written by [`Self::encode`].
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Truncated`] when the payload ends early and
    /// [`CheckpointError::Corrupt`] on unknown kind bytes, out-of-range
    /// or non-ascending histogram bucket indices, or duplicate names —
    /// the same panic-free strictness as the checkpoint sections.
    pub fn decode(r: &mut PayloadReader<'_>) -> Result<Self, CheckpointError> {
        let count = r.get_u32()?;
        let mut metrics = BTreeMap::new();
        for _ in 0..count {
            let name = r.get_str()?;
            let value = match r.get_u8()? {
                0 => MetricValue::Counter(r.get_u64()?),
                1 => MetricValue::Gauge(r.get_u64()?),
                2 => {
                    let sum = r.get_u64()?;
                    let buckets = r.get_u16()?;
                    let mut pairs = Vec::with_capacity(buckets as usize);
                    for _ in 0..buckets {
                        let index = r.get_u8()? as usize;
                        let n = r.get_u64()?;
                        if index >= BUCKETS {
                            return Err(CheckpointError::Corrupt("histogram bucket out of range"));
                        }
                        if pairs.last().is_some_and(|&(prev, _)| prev >= index) {
                            return Err(CheckpointError::Corrupt(
                                "histogram buckets not ascending",
                            ));
                        }
                        pairs.push((index, n));
                    }
                    MetricValue::Histogram(HistogramSnapshot { sum, buckets: pairs })
                }
                _ => return Err(CheckpointError::Corrupt("unknown metric kind")),
            };
            if metrics.insert(name, value).is_some() {
                return Err(CheckpointError::Corrupt("duplicate metric name"));
            }
        }
        Ok(Self { metrics })
    }
}

/// A live aggregation point for the registries of many concurrent
/// campaigns: each running job attaches its per-shard registries, and
/// [`MetricsHub::merged`] folds every attached registry's snapshot with
/// the same proptested merge law the per-shard snapshots use. The
/// `psc serve` admission controller reads this to decide whether the
/// substrate is saturated; detaching is automatic when the returned
/// [`HubAttachment`] guard drops (job completion, cancellation, or a
/// worker panic unwinding).
#[derive(Debug, Default)]
pub struct MetricsHub {
    attached: Mutex<BTreeMap<u64, Vec<Arc<MetricsRegistry>>>>,
    next_id: AtomicU64,
}

impl MetricsHub {
    /// Empty hub.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a job's registries; they contribute to [`Self::merged`]
    /// until the guard drops.
    #[must_use]
    pub fn attach(self: &Arc<Self>, registries: Vec<Arc<MetricsRegistry>>) -> HubAttachment {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.attached
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(id, registries);
        HubAttachment { hub: Arc::clone(self), id }
    }

    /// Number of currently attached jobs.
    #[must_use]
    pub fn attached_jobs(&self) -> usize {
        self.attached.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    /// Snapshot every attached registry and fold with
    /// [`MetricsSnapshot::merged`] — exactly the totals one shared
    /// registry across all jobs and shards would have produced.
    #[must_use]
    pub fn merged(&self) -> MetricsSnapshot {
        let attached = self.attached.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        attached
            .values()
            .flatten()
            .map(|registry| registry.snapshot())
            .fold(MetricsSnapshot::default(), MetricsSnapshot::merged)
    }
}

/// Guard returned by [`MetricsHub::attach`]; dropping it detaches the
/// job's registries from the hub.
#[derive(Debug)]
pub struct HubAttachment {
    hub: Arc<MetricsHub>,
    id: u64,
}

impl Drop for HubAttachment {
    fn drop(&mut self) {
        self.hub
            .attached
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(&self.id);
    }
}

/// The canonical metric names the campaign pipeline records, shared by
/// the session driver, the progress line, benches and tests.
pub mod names {
    /// Blocks shipped over the shard buses (counter).
    pub const BUS_BLOCKS: &str = "bus.blocks";
    /// Observations shipped over the shard buses (counter).
    pub const BUS_OBS: &str = "bus.observations";
    /// Blocks shed by the bus overflow policy (counter).
    pub const BUS_DROPPED: &str = "bus.dropped_blocks";
    /// Peak bus occupancy across shards, in blocks (gauge).
    pub const BUS_HIGH_WATER: &str = "bus.high_water_blocks";
    /// Recycled blocks reused by producers (counter).
    pub const RECYCLE_HITS: &str = "recycle.hits";
    /// Producer block requests that had to allocate fresh (counter).
    pub const RECYCLE_MISSES: &str = "recycle.misses";
    /// Blocks shed by the recycle lane's `DropNewest` policy (counter).
    pub const RECYCLE_DROPPED: &str = "recycle.dropped_blocks";
    /// Source time to fill one block, nanoseconds (histogram).
    pub const SOURCE_FILL_NS: &str = "source.fill_ns";
    /// Schedule units produced: trace rounds for adaptive campaigns —
    /// the rounds-to-stop metric — traces or traces-per-class otherwise
    /// (counter).
    pub const SOURCE_UNITS: &str = "source.units";
    /// Consumer `Processor::on_block` dispatch time per block,
    /// nanoseconds (histogram).
    pub const CONSUME_BLOCK_NS: &str = "consume.on_block_ns";
    /// Denied SMC reads observed by the cadence monitor (counter).
    pub const DENIED_READS: &str = "sched.denied_reads";
    /// Recorder shard-write failures (counter). Incremented only after
    /// the write's retry budget is exhausted — the batch is lost.
    pub const RECORDER_IO_ERRORS: &str = "recorder.io_errors";
    /// Recorder batch writes retried after a transient failure
    /// (counter). Nonzero retries with zero `recorder.io_errors` means
    /// every fault recovered and no traces were lost.
    pub const RECORDER_IO_RETRIES: &str = "recorder.io_retries";
    /// Traces persisted by the shard recorders (counter).
    pub const RECORDER_TRACES: &str = "recorder.traces";
}

/// The observability summary embedded in campaign reports: the merged
/// per-shard snapshot plus campaign wall time, with derived rates.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// Campaign wall time, seconds.
    pub wall_s: f64,
    /// Worker count the campaign ran with.
    pub shards: usize,
    /// SIMD backend the analysis kernels dispatched to ("avx2", "neon",
    /// or "scalar" — see `pulp::backend_name`).
    pub simd_backend: &'static str,
    /// Rows per emitted block the campaign ran with (the tuned
    /// `OBS_CHUNK`; 0 when the producer was not block-based).
    pub obs_chunk: usize,
    /// Bus depth in blocks the campaign ran with (the tuned capacity).
    pub bus_capacity: usize,
    /// Merged per-shard metric snapshot.
    pub snapshot: MetricsSnapshot,
}

impl MetricsReport {
    /// Total observations shipped over the buses.
    #[must_use]
    pub fn observations(&self) -> u64 {
        self.snapshot.counter(names::BUS_OBS)
    }

    /// Observations per wall-clock second.
    #[must_use]
    pub fn obs_per_s(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.observations() as f64 / self.wall_s
        } else {
            0.0
        }
    }

    /// Blocks per wall-clock second.
    #[must_use]
    pub fn blocks_per_s(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.snapshot.counter(names::BUS_BLOCKS) as f64 / self.wall_s
        } else {
            0.0
        }
    }

    /// Fraction of blocks shed by the bus overflow policy (0.0 under
    /// `Block` backpressure).
    #[must_use]
    pub fn drop_rate(&self) -> f64 {
        let shipped = self.snapshot.counter(names::BUS_BLOCKS);
        let dropped = self.snapshot.counter(names::BUS_DROPPED);
        if shipped + dropped == 0 {
            0.0
        } else {
            dropped as f64 / (shipped + dropped) as f64
        }
    }

    /// Serialize the report as a JSON object: wall time, shard count,
    /// derived rates, and every metric (histograms as non-empty
    /// `[lo, hi, count]` bucket triples plus count/sum/mean).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"wall_s\": {:.6},\n", self.wall_s));
        out.push_str(&format!("  \"shards\": {},\n", self.shards));
        out.push_str(&format!("  \"simd_backend\": \"{}\",\n", escape_json(self.simd_backend)));
        out.push_str(&format!("  \"obs_chunk\": {},\n", self.obs_chunk));
        out.push_str(&format!("  \"bus_capacity\": {},\n", self.bus_capacity));
        out.push_str(&format!("  \"observations\": {},\n", self.observations()));
        out.push_str(&format!("  \"obs_per_s\": {:.3},\n", self.obs_per_s()));
        out.push_str(&format!("  \"blocks_per_s\": {:.3},\n", self.blocks_per_s()));
        out.push_str(&format!("  \"drop_rate\": {:.6},\n", self.drop_rate()));
        out.push_str("  \"metrics\": {");
        let mut first = true;
        for (name, value) in &self.snapshot.metrics {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    \"{}\": ", escape_json(name)));
            match value {
                MetricValue::Counter(n) => {
                    out.push_str(&format!("{{\"type\": \"counter\", \"value\": {n}}}"));
                }
                MetricValue::Gauge(n) => {
                    out.push_str(&format!("{{\"type\": \"gauge\", \"value\": {n}}}"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{{\"type\": \"histogram\", \"count\": {}, \"sum\": {}, \"mean\": {:.3}, \
                         \"buckets\": [",
                        h.count(),
                        h.sum,
                        h.mean()
                    ));
                    for (i, &(bucket, count)) in h.buckets.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        let (lo, hi) = bucket_bounds(bucket);
                        let hi = hi.map_or_else(|| "null".to_owned(), |h| h.to_string());
                        out.push_str(&format!("[{lo}, {hi}, {count}]"));
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Check that `input` is one syntactically valid JSON value (the
/// air-gapped workspace has no JSON dependency, so emitted artifacts —
/// metrics reports, Chrome trace files — are validated with this minimal
/// recursive-descent parser in tests, examples and CI).
///
/// # Errors
///
/// Returns a byte offset + message for the first syntax error.
pub fn validate_json(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    match bytes.get(*pos) {
        None => Err(format!("unexpected end of input at byte {pos}")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos),
        Some(b't') => parse_literal(bytes, pos, b"true"),
        Some(b'f') => parse_literal(bytes, pos, b"false"),
        Some(b'n') => parse_literal(bytes, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}")),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |bytes: &[u8], pos: &mut usize| {
        let from = *pos;
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos > from
    };
    if !digits(bytes, pos) {
        return Err(format!("bad number at byte {start}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(bytes, pos) {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(bytes, pos) {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    Ok(())
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    *pos += 1; // opening quote
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        let hex = bytes.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        if !hex.iter().all(u8::is_ascii_hexdigit) {
                            return Err(format!("bad \\u escape at byte {pos}"));
                        }
                        *pos += 5;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            _ => *pos += 1,
        }
    }
    Err(format!("unterminated string starting at byte {start}"))
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i, "lower bound lands in its bucket");
            if let Some(hi) = hi {
                assert_eq!(bucket_index(hi - 1), i, "last value below hi lands in bucket {i}");
                assert_eq!(bucket_index(hi), i + 1, "hi itself belongs to the next bucket");
            }
        }
    }

    #[test]
    fn registry_hands_out_shared_handles() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("x");
        let b = registry.counter("x");
        a.add(3);
        b.inc();
        assert_eq!(registry.snapshot().counter("x"), 4);
        let g = registry.gauge("peak");
        g.set_max(7);
        g.set_max(5);
        assert_eq!(registry.snapshot().gauge("peak"), 7);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let registry = MetricsRegistry::new();
        let _c = registry.counter("x");
        let _g = registry.gauge("x");
    }

    #[test]
    fn snapshot_merge_mirrors_accumulator_laws() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.counter("n").add(10);
        b.counter("n").add(32);
        a.gauge("peak").set_max(4);
        b.gauge("peak").set_max(9);
        a.histogram("lat").record(100);
        b.histogram("lat").record(100_000);
        b.counter("only_b").inc();
        let merged = a.snapshot().merged(b.snapshot());
        assert_eq!(merged.counter("n"), 42);
        assert_eq!(merged.gauge("peak"), 9);
        assert_eq!(merged.counter("only_b"), 1);
        let h = merged.histogram("lat").expect("merged histogram");
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum, 100_100);
    }

    #[test]
    fn report_json_is_valid_and_has_rates() {
        let registry = MetricsRegistry::new();
        registry.counter(names::BUS_OBS).add(600);
        registry.counter(names::BUS_BLOCKS).add(20);
        registry.gauge(names::BUS_HIGH_WATER).set_max(3);
        let h = registry.histogram(names::CONSUME_BLOCK_NS);
        h.record(1500);
        h.record(90_000);
        let report = MetricsReport {
            wall_s: 2.0,
            shards: 2,
            simd_backend: pulp::backend_name(),
            obs_chunk: 32,
            bus_capacity: 128,
            snapshot: registry.snapshot(),
        };
        assert!((report.obs_per_s() - 300.0).abs() < 1e-12);
        assert!((report.blocks_per_s() - 10.0).abs() < 1e-12);
        assert!(report.drop_rate().abs() < 1e-12);
        let json = report.to_json();
        validate_json(&json).expect("report JSON must parse");
        assert!(json.contains("\"bus.observations\""));
        assert!(json.contains("\"type\": \"histogram\""));
        assert!(json.contains("\"simd_backend\""));
        assert!(json.contains("\"obs_chunk\": 32"));
    }

    #[test]
    fn percentile_returns_bucket_upper_bounds() {
        let h = Histogram::default();
        assert_eq!(h.percentile(0.99), None, "empty histogram has no quantiles");
        h.record(0);
        assert_eq!(h.percentile(0.5), Some(0), "bucket 0 tops out at zero");
        for v in [5, 6, 7] {
            h.record(v); // bucket [4, 8) → upper-bound estimate 7
        }
        h.record(1000); // bucket [512, 1024) → 1023
                        // 5 observations: ranks 1..=5 are [0, 7, 7, 7, 1023].
        assert_eq!(h.percentile(0.0), Some(0), "p=0 clamps to the first observation");
        assert_eq!(h.percentile(0.2), Some(0));
        assert_eq!(h.percentile(0.5), Some(7));
        assert_eq!(h.percentile(0.8), Some(7));
        assert_eq!(h.percentile(0.81), Some(1023));
        assert_eq!(h.percentile(1.0), Some(1023));
        assert_eq!(h.percentile(2.0), Some(1023), "p clamps to [0, 1]");
        h.record(u64::MAX);
        assert_eq!(h.percentile(1.0), Some(u64::MAX), "top bucket is unbounded");
    }

    #[test]
    fn snapshot_codec_round_trips_and_rejects_corruption() {
        let registry = MetricsRegistry::new();
        registry.counter("bus.blocks").add(42);
        registry.gauge("bus.high_water_blocks").set_max(7);
        let h = registry.histogram("consume.on_block_ns");
        h.record(0);
        h.record(1500);
        h.record(u64::MAX);
        let snapshot = registry.snapshot();
        let mut w = PayloadWriter::new();
        snapshot.encode(&mut w);
        let payload = w.into_payload();
        let mut r = PayloadReader::new(&payload);
        let back = MetricsSnapshot::decode(&mut r).expect("round trip");
        r.finish().expect("no trailing bytes");
        assert_eq!(back, snapshot);
        // Truncation at every offset errs, never panics.
        for cut in 0..payload.len() {
            assert!(MetricsSnapshot::decode(&mut PayloadReader::new(&payload[..cut])).is_err());
        }
        // Unknown kind byte → Corrupt.
        let mut w = PayloadWriter::new();
        w.put_u32(1);
        w.put_str("x");
        w.put_u8(9);
        let bad = w.into_payload();
        assert!(matches!(
            MetricsSnapshot::decode(&mut PayloadReader::new(&bad)),
            Err(CheckpointError::Corrupt(_))
        ));
        // Histogram bucket index past BUCKETS → Corrupt.
        let mut w = PayloadWriter::new();
        w.put_u32(1);
        w.put_str("h");
        w.put_u8(2);
        w.put_u64(0);
        w.put_u16(1);
        w.put_u8(BUCKETS as u8);
        w.put_u64(1);
        let bad = w.into_payload();
        assert!(matches!(
            MetricsSnapshot::decode(&mut PayloadReader::new(&bad)),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn hub_merges_attached_jobs_and_detaches_on_drop() {
        let hub = Arc::new(MetricsHub::new());
        let a = Arc::new(MetricsRegistry::new());
        let b = Arc::new(MetricsRegistry::new());
        a.counter("n").add(10);
        b.counter("n").add(32);
        a.gauge("peak").set_max(4);
        b.gauge("peak").set_max(9);
        let guard_a = hub.attach(vec![Arc::clone(&a)]);
        let guard_b = hub.attach(vec![Arc::clone(&b)]);
        assert_eq!(hub.attached_jobs(), 2);
        let merged = hub.merged();
        assert_eq!(merged.counter("n"), 42);
        assert_eq!(merged.gauge("peak"), 9);
        drop(guard_b);
        assert_eq!(hub.attached_jobs(), 1);
        assert_eq!(hub.merged().counter("n"), 10);
        drop(guard_a);
        assert_eq!(hub.merged(), MetricsSnapshot::default());
    }

    #[test]
    fn validator_accepts_and_rejects() {
        validate_json("{\"a\": [1, 2.5, -3e4, \"x\\n\", null, true, {}]}").unwrap();
        validate_json("[]").unwrap();
        assert!(validate_json("{\"a\": }").is_err());
        assert!(validate_json("[1, 2").is_err());
        assert!(validate_json("{} extra").is_err());
        assert!(validate_json("\"unterminated").is_err());
        assert!(validate_json("01abc").is_err());
    }
}
