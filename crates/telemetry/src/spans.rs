//! Span tracing: campaign→shard→stage timelines as Chrome trace-event
//! JSON.
//!
//! The metrics in [`crate::metrics`] say *how much* (blocks/sec, drop
//! rate); spans say *where the time went*. A [`SpanTracer`] collects
//! completed [`SpanRecord`]s — one per campaign, one per shard produce
//! stage, one per shard consume stage — and serializes them in the
//! Chrome trace-event format ([`SpanTracer::to_chrome_json`]), which
//! loads directly in Perfetto / `chrome://tracing` for a flame-chart
//! view of producer/consumer overlap per shard.
//!
//! The tracer is cheap and shareable: recording a span is one `Mutex`
//! push of a small record, and guards time themselves via RAII
//! ([`SpanTracer::span`]). Like the metrics registry it is entirely
//! opt-in — an untraced campaign never constructs one.

use std::sync::Mutex;
use std::time::Instant;

/// One completed span, timed relative to the tracer's epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name, e.g. `"campaign"` or `"shard0/produce"`.
    pub name: String,
    /// Category, e.g. `"stage"` — Perfetto groups and filters by it.
    pub cat: &'static str,
    /// Virtual thread lane the span renders on.
    pub tid: u64,
    /// Start offset from the tracer epoch, microseconds.
    pub ts_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
}

/// Collects spans from any thread and emits Chrome trace-event JSON.
#[derive(Debug)]
pub struct SpanTracer {
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
    threads: Mutex<Vec<(u64, String)>>,
}

impl Default for SpanTracer {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanTracer {
    /// New tracer; its construction instant becomes timestamp zero.
    #[must_use]
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
            threads: Mutex::new(Vec::new()),
        }
    }

    /// Label the virtual thread lane `tid` (rendered by Perfetto in
    /// place of a bare number). Last write wins.
    pub fn name_thread(&self, tid: u64, name: impl Into<String>) {
        let mut threads = self.threads.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let name = name.into();
        if let Some(slot) = threads.iter_mut().find(|(t, _)| *t == tid) {
            slot.1 = name;
        } else {
            threads.push((tid, name));
        }
    }

    /// Start a span on lane `tid`; the span is recorded when the
    /// returned guard drops.
    #[must_use]
    pub fn span(&self, name: impl Into<String>, cat: &'static str, tid: u64) -> SpanGuard<'_> {
        SpanGuard { tracer: self, name: name.into(), cat, tid, begin: Instant::now() }
    }

    /// Record a completed span directly (for callers that timed it
    /// themselves).
    pub fn record(&self, span: SpanRecord) {
        let mut spans = self.spans.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        spans.push(span);
    }

    /// Microseconds elapsed since the tracer epoch.
    #[must_use]
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Copy of the recorded spans (test and report convenience).
    #[must_use]
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
    }

    /// Serialize every span (plus thread-name metadata) as one Chrome
    /// trace-event JSON object: `{"traceEvents": [...]}` with `"X"`
    /// complete events and `"M"` `thread_name` metadata, loadable in
    /// Perfetto and `chrome://tracing`.
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        let spans = self.spans();
        let threads = self.threads.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut out = String::from("{\"traceEvents\": [");
        let mut first = true;
        for (tid, name) in threads.iter() {
            push_event(
                &mut out,
                &mut first,
                &format!(
                    "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": {tid}, \
                 \"args\": {{\"name\": \"{}\"}}}}",
                    escape(name)
                ),
            );
        }
        for s in &spans {
            push_event(
                &mut out,
                &mut first,
                &format!(
                    "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"pid\": 0, \
                 \"tid\": {}, \"ts\": {}, \"dur\": {}}}",
                    escape(&s.name),
                    escape(s.cat),
                    s.tid,
                    s.ts_us,
                    s.dur_us
                ),
            );
        }
        out.push_str("\n]}\n");
        out
    }
}

fn push_event(out: &mut String, first: &mut bool, event: &str) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str("\n  ");
    out.push_str(event);
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// RAII timer from [`SpanTracer::span`]: records the span on drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    tracer: &'a SpanTracer,
    name: String,
    cat: &'static str,
    tid: u64,
    begin: Instant,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let ts_us = u64::try_from(self.begin.duration_since(self.tracer.epoch).as_micros())
            .unwrap_or(u64::MAX);
        let dur_us = u64::try_from(self.begin.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.tracer.record(SpanRecord {
            name: std::mem::take(&mut self.name),
            cat: self.cat,
            tid: self.tid,
            ts_us,
            dur_us,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::validate_json;

    #[test]
    fn guard_records_on_drop() {
        let tracer = SpanTracer::new();
        {
            let _g = tracer.span("campaign", "campaign", 0);
        }
        let spans = tracer.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "campaign");
        assert_eq!(spans[0].tid, 0);
    }

    #[test]
    fn chrome_json_is_valid_and_structured() {
        let tracer = SpanTracer::new();
        tracer.name_thread(0, "campaign");
        tracer.name_thread(1, "shard0/produce");
        tracer.record(SpanRecord {
            name: "campaign".into(),
            cat: "campaign",
            tid: 0,
            ts_us: 0,
            dur_us: 100,
        });
        tracer.record(SpanRecord {
            name: "shard0/produce".into(),
            cat: "stage",
            tid: 1,
            ts_us: 5,
            dur_us: 40,
        });
        let json = tracer.to_chrome_json();
        validate_json(&json).expect("trace JSON must parse");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"ph\": \"M\""));
        assert!(json.contains("\"shard0/produce\""));
    }

    #[test]
    fn spans_from_many_threads_all_land() {
        let tracer = std::sync::Arc::new(SpanTracer::new());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let t = std::sync::Arc::clone(&tracer);
                std::thread::spawn(move || {
                    let _g = t.span(format!("shard{i}/consume"), "stage", 2 + i);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(tracer.spans().len(), 4);
        validate_json(&tracer.to_chrome_json()).unwrap();
    }

    #[test]
    fn thread_names_deduplicate() {
        let tracer = SpanTracer::new();
        tracer.name_thread(3, "old");
        tracer.name_thread(3, "new");
        let json = tracer.to_chrome_json();
        assert!(json.contains("\"new\""));
        assert!(!json.contains("\"old\""));
    }
}
