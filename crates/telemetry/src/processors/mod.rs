//! Streaming processors: the consumers on the telemetry bus.

pub mod collect;
pub mod cpa;
pub mod monitor;
pub mod recorder;
pub mod tvla;

pub use collect::{DatasetCollector, TraceCollector};
pub use cpa::StreamingCpa;
pub use monitor::{CadenceCheckpoint, ThrottleMonitor};
pub use recorder::{RecorderState, ShardRecorder};
pub use tvla::StreamingTvla;
