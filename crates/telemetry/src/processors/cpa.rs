//! Incremental CPA processor: running per-guess/byte sums, O(1) memory.

use crate::block::EventBlock;
use crate::event::{ChannelId, Event};
use crate::processor::Processor;
use crate::replay::channel_for_label;
use psc_sca::checkpoint::{self, CheckpointError, PayloadReader, PayloadWriter};
use psc_sca::cpa::{Cpa, CpaMergeError, HypTable};
use psc_sca::model::PowerModel;
use psc_sca::trace::Trace;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Streaming CPA over a fixed set of channels. Each channel gets its own
/// [`Cpa`] accumulator (256-bin running sums per key byte — memory is
/// independent of trace count). Shards run independent instances;
/// [`StreamingCpa::merged`] sum-merges them.
#[derive(Debug)]
pub struct StreamingCpa {
    cpas: BTreeMap<ChannelId, Cpa>,
    current: Option<([u8; 16], [u8; 16])>,
    unregistered_samples: u64,
    orphan_samples: u64,
    /// Reused per-block staging columns for [`Cpa::add_block`] (denied
    /// rows filtered out), so the block fast path is allocation-free in
    /// steady state.
    scratch_pts: Vec<[u8; 16]>,
    scratch_cts: Vec<[u8; 16]>,
    scratch_vals: Vec<f64>,
}

impl StreamingCpa {
    /// New processor correlating `channels`, each under a fresh model from
    /// `model_factory`. The 512 KB hypothesis table is built **once** and
    /// shared across all channels; sharded drivers that already hold a
    /// table should use [`Self::with_table`] to share it across shards too.
    #[must_use]
    pub fn new(
        channels: impl IntoIterator<Item = ChannelId>,
        model_factory: impl Fn() -> Box<dyn PowerModel>,
    ) -> Self {
        let table = Arc::new(HypTable::for_model(model_factory().as_ref()));
        Self::with_table(channels, model_factory, table)
    }

    /// As [`Self::new`], reusing a prebuilt hypothesis table instead of
    /// recomputing it per processor (and hence per shard).
    ///
    /// # Panics
    ///
    /// Panics if `table` was built for a different model than the ones
    /// `model_factory` yields (see [`Cpa::with_table`]).
    #[must_use]
    pub fn with_table(
        channels: impl IntoIterator<Item = ChannelId>,
        model_factory: impl Fn() -> Box<dyn PowerModel>,
        table: Arc<HypTable>,
    ) -> Self {
        Self {
            cpas: channels
                .into_iter()
                .map(|c| (c, Cpa::with_table(model_factory(), Arc::clone(&table))))
                .collect(),
            current: None,
            unregistered_samples: 0,
            orphan_samples: 0,
            scratch_pts: Vec::new(),
            scratch_cts: Vec::new(),
            scratch_vals: Vec::new(),
        }
    }

    /// The accumulator for `channel`.
    #[must_use]
    pub fn cpa(&self, channel: ChannelId) -> Option<&Cpa> {
        self.cpas.get(&channel)
    }

    /// Set the correlation-sweep unroll width on every channel's
    /// accumulator (see [`Cpa::set_unroll`] — throughput only, results
    /// are bit-identical across widths).
    ///
    /// # Panics
    ///
    /// Panics if `unroll` is not one of [`Cpa::UNROLL_WIDTHS`].
    pub fn set_unroll(&mut self, unroll: usize) {
        for cpa in self.cpas.values_mut() {
            cpa.set_unroll(unroll);
        }
    }

    /// All per-channel accumulators.
    #[must_use]
    pub fn cpas(&self) -> &BTreeMap<ChannelId, Cpa> {
        &self.cpas
    }

    /// Consume the processor, yielding the accumulators.
    #[must_use]
    pub fn into_cpas(self) -> BTreeMap<ChannelId, Cpa> {
        self.cpas
    }

    /// Samples on channels this processor was not registered for.
    #[must_use]
    pub fn unregistered_samples(&self) -> u64 {
        self.unregistered_samples
    }

    /// Samples that arrived before any window marker.
    #[must_use]
    pub fn orphan_samples(&self) -> u64 {
        self.orphan_samples
    }

    /// Serialize the full processor state — per-channel CPA bins, drop
    /// counters and the in-flight window record — into a campaign
    /// checkpoint payload (~64 KB per channel).
    pub fn encode_state(&self, w: &mut PayloadWriter) {
        w.put_u32(self.cpas.len() as u32);
        for (channel, cpa) in &self.cpas {
            w.put_str(&channel.to_string());
            checkpoint::put_cpa_state(w, &cpa.raw_state());
        }
        match self.current {
            None => w.put_u8(0),
            Some((pt, ct)) => {
                w.put_u8(1);
                w.put_bytes(&pt);
                w.put_bytes(&ct);
            }
        }
        w.put_u64(self.unregistered_samples);
        w.put_u64(self.orphan_samples);
    }

    /// Restore state written by [`Self::encode_state`] into a processor
    /// built from the *same campaign configuration* (same channels, same
    /// power model): accumulator bins are overwritten bit-identically.
    ///
    /// # Errors
    ///
    /// Truncated payloads, unknown labels, snapshot channels this
    /// processor was not built for, and power-model mismatches all come
    /// back as [`CheckpointError`].
    pub fn restore_state(&mut self, r: &mut PayloadReader<'_>) -> Result<(), CheckpointError> {
        let channels = r.get_u32()?;
        for _ in 0..channels {
            let label = r.get_str()?;
            let channel = channel_for_label(&label)
                .ok_or(CheckpointError::Corrupt("unknown channel label"))?;
            let state = checkpoint::get_cpa_state(r)?;
            let cpa = self
                .cpas
                .get_mut(&channel)
                .ok_or(CheckpointError::Corrupt("snapshot channel is not registered"))?;
            cpa.restore_raw(&state)
                .map_err(|_| CheckpointError::Corrupt("snapshot power model mismatch"))?;
        }
        self.current = match r.get_u8()? {
            0 => None,
            1 => Some((r.get_bytes::<16>()?, r.get_bytes::<16>()?)),
            _ => return Err(CheckpointError::Corrupt("bad window-record flag")),
        };
        self.unregistered_samples = r.get_u64()?;
        self.orphan_samples = r.get_u64()?;
        Ok(())
    }

    /// Merge a shard's accumulators into this one. Channel sets must
    /// match (both sides come from the same campaign configuration).
    ///
    /// # Errors
    ///
    /// Returns [`CpaMergeError`] if any channel pair was built for
    /// different power models.
    ///
    /// # Panics
    ///
    /// Panics if the channel sets differ.
    pub fn merged(mut self, other: Self) -> Result<Self, CpaMergeError> {
        assert_eq!(
            self.cpas.keys().collect::<Vec<_>>(),
            other.cpas.keys().collect::<Vec<_>>(),
            "shards must correlate the same channels"
        );
        for (channel, theirs) in &other.cpas {
            self.cpas.get_mut(channel).expect("checked above").merge(theirs)?;
        }
        self.unregistered_samples += other.unregistered_samples;
        self.orphan_samples += other.orphan_samples;
        Ok(self)
    }
}

impl Processor for StreamingCpa {
    fn name(&self) -> &'static str {
        "cpa"
    }

    fn on_event(&mut self, event: &Event) {
        match event {
            Event::Window(w) => self.current = Some((w.plaintext, w.ciphertext)),
            Event::Sample(s) => {
                let Some((plaintext, ciphertext)) = self.current else {
                    self.orphan_samples += 1;
                    return;
                };
                if let Some(cpa) = self.cpas.get_mut(&s.channel) {
                    cpa.add_trace(&Trace { value: s.value, plaintext, ciphertext });
                } else {
                    self.unregistered_samples += 1;
                }
            }
            Event::Sched(_) => {}
        }
    }

    /// Columnar fast path: each registered channel's column is staged
    /// (denied rows dropped) and binned in one [`Cpa::add_block`] call —
    /// one map lookup and one columnar bin sweep per channel per block,
    /// bit-identical to per-event [`Cpa::add_trace`] dispatch.
    fn on_block(&mut self, block: &EventBlock) {
        let windows = block.windows();
        if windows.is_empty() {
            return;
        }
        for (col, &channel) in block.channels().iter().enumerate() {
            let column = block.column(col);
            let Some(cpa) = self.cpas.get_mut(&channel) else {
                self.unregistered_samples += column.iter().flatten().count() as u64;
                continue;
            };
            self.scratch_pts.clear();
            self.scratch_cts.clear();
            self.scratch_vals.clear();
            for (w, v) in windows.iter().zip(column) {
                if let Some(value) = *v {
                    self.scratch_pts.push(w.plaintext);
                    self.scratch_cts.push(w.ciphertext);
                    self.scratch_vals.push(value);
                }
            }
            cpa.add_block(&self.scratch_pts, &self.scratch_cts, &self.scratch_vals);
        }
        self.current = windows.last().map(|w| (w.plaintext, w.ciphertext));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{SampleEvent, WindowEvent};
    use psc_aes::Aes;
    use psc_sca::model::Rd0Hw;
    use psc_sca::trace::TraceSet;

    fn synthetic(key: &[u8; 16], n: usize, salt: u64) -> TraceSet {
        let aes = Aes::new(key).unwrap();
        let mut set = TraceSet::new("synthetic");
        let mut state = salt | 1;
        for _ in 0..n {
            let mut pt = [0u8; 16];
            for b in pt.iter_mut() {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                *b = (state >> 32) as u8;
            }
            let trace = aes.encrypt_traced(&pt);
            let value: u32 = trace.round0_addkey().iter().map(|&x| x.count_ones()).sum();
            set.push(Trace {
                value: f64::from(value),
                plaintext: pt,
                ciphertext: trace.ciphertext,
            });
        }
        set
    }

    fn feed(p: &mut StreamingCpa, set: &TraceSet) {
        for (i, t) in set.iter().enumerate() {
            p.on_event(&Event::Window(WindowEvent {
                seq: i as u64,
                time_s: i as f64,
                pass: 0,
                class: None,
                plaintext: t.plaintext,
                ciphertext: t.ciphertext,
            }));
            p.on_event(&Event::Sample(SampleEvent {
                time_s: i as f64,
                channel: ChannelId::Pcpu,
                value: t.value,
            }));
        }
    }

    #[test]
    fn streaming_matches_batch_ranks() {
        let key = [0x5Au8; 16];
        let set = synthetic(&key, 2000, 7);
        let mut streaming = StreamingCpa::new([ChannelId::Pcpu], || Box::new(Rd0Hw));
        feed(&mut streaming, &set);
        let mut batch = Cpa::new(Box::new(Rd0Hw));
        batch.add_set(&set);
        let s = streaming.cpa(ChannelId::Pcpu).expect("registered");
        assert_eq!(s.ranks(&key), batch.ranks(&key));
        for b in 0..16 {
            for g in [0u8, 0x5A, 0xFF] {
                assert!((s.correlation(b, g) - batch.correlation(b, g)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn sharded_merge_matches_whole() {
        let key: [u8; 16] = core::array::from_fn(|i| (i * 11 + 3) as u8);
        let a = synthetic(&key, 700, 1);
        let b = synthetic(&key, 700, 2);
        let mut whole = StreamingCpa::new([ChannelId::Pcpu], || Box::new(Rd0Hw));
        feed(&mut whole, &a);
        feed(&mut whole, &b);
        let mut sa = StreamingCpa::new([ChannelId::Pcpu], || Box::new(Rd0Hw));
        feed(&mut sa, &a);
        let mut sb = StreamingCpa::new([ChannelId::Pcpu], || Box::new(Rd0Hw));
        feed(&mut sb, &b);
        let merged = sa.merged(sb).expect("same models");
        let w = whole.cpa(ChannelId::Pcpu).unwrap();
        let m = merged.cpa(ChannelId::Pcpu).unwrap();
        assert_eq!(w.trace_count(), m.trace_count());
        for b_idx in 0..16 {
            for g in 0..=255u8 {
                assert!(
                    (w.correlation(b_idx, g) - m.correlation(b_idx, g)).abs() < 1e-9,
                    "byte {b_idx} guess {g}"
                );
            }
        }
    }

    #[test]
    fn channels_share_one_hypothesis_table() {
        let p = StreamingCpa::new([ChannelId::Pcpu, ChannelId::Timing], || Box::new(Rd0Hw));
        let a = p.cpa(ChannelId::Pcpu).unwrap().shared_table();
        let b = p.cpa(ChannelId::Timing).unwrap().shared_table();
        assert!(std::sync::Arc::ptr_eq(a, b), "one table per processor, not per channel");
    }

    #[test]
    fn with_table_matches_new_exactly() {
        let key = [0x44u8; 16];
        let set = synthetic(&key, 500, 9);
        let table = std::sync::Arc::new(psc_sca::cpa::HypTable::for_model(&Rd0Hw));
        let mut shared = StreamingCpa::with_table(
            [ChannelId::Pcpu],
            || Box::new(Rd0Hw),
            std::sync::Arc::clone(&table),
        );
        let mut fresh = StreamingCpa::new([ChannelId::Pcpu], || Box::new(Rd0Hw));
        feed(&mut shared, &set);
        feed(&mut fresh, &set);
        let s = shared.cpa(ChannelId::Pcpu).unwrap();
        let f = fresh.cpa(ChannelId::Pcpu).unwrap();
        assert!(std::sync::Arc::ptr_eq(s.shared_table(), &table));
        for b in 0..16 {
            let sc = s.correlations(b);
            let fc = f.correlations(b);
            for g in 0..256 {
                assert_eq!(sc[g].to_bits(), fc[g].to_bits(), "byte {b} guess {g}");
            }
        }
    }

    #[test]
    fn drop_accounting() {
        let mut p = StreamingCpa::new([ChannelId::Pcpu], || Box::new(Rd0Hw));
        // Sample before any window: orphan.
        p.on_event(&Event::Sample(SampleEvent {
            time_s: 0.0,
            channel: ChannelId::Pcpu,
            value: 1.0,
        }));
        assert_eq!(p.orphan_samples(), 1);
        // Sample on an unregistered channel: counted, not panicking.
        p.on_event(&Event::Window(WindowEvent {
            seq: 0,
            time_s: 0.0,
            pass: 0,
            class: None,
            plaintext: [0; 16],
            ciphertext: [0; 16],
        }));
        p.on_event(&Event::Sample(SampleEvent {
            time_s: 0.0,
            channel: ChannelId::Timing,
            value: 1.0,
        }));
        assert_eq!(p.unregistered_samples(), 1);
    }
}
