//! Fixed-interval throttling/cadence monitor.

use crate::event::Event;
use crate::processor::{PollMode, Processor};
use psc_sca::checkpoint::{CheckpointError, PayloadReader, PayloadWriter};
use std::collections::VecDeque;

/// One cadence snapshot taken at a poll tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CadenceCheckpoint {
    /// Simulated poll time, seconds.
    pub time_s: f64,
    /// Observations completed since the previous tick.
    pub observations: u64,
    /// SoC windows consumed since the previous tick.
    pub windows: u64,
    /// Windows per observation over the tick: 1.0 is the full publish
    /// rate; larger values mean the interval-stretching mitigation is
    /// starving the attacker's sampling loop.
    pub stretch: f64,
}

/// Polling-mode processor that watches collection cadence: how many SoC
/// windows each observation really costs (mitigation stretch), and how
/// many SMC reads were denied. Keeps only a bounded window of
/// checkpoints — it is a monitor, not a log.
#[derive(Debug, Clone)]
pub struct ThrottleMonitor {
    interval_s: f64,
    max_checkpoints: usize,
    checkpoints: VecDeque<CadenceCheckpoint>,
    observations: u64,
    windows: u64,
    denied_reads: u64,
    tick_observations: u64,
    tick_windows: u64,
    last_time_s: f64,
}

impl ThrottleMonitor {
    /// Monitor polling every `interval_s` simulated seconds, retaining at
    /// most `max_checkpoints` snapshots (oldest evicted first).
    ///
    /// # Panics
    ///
    /// Panics if `interval_s <= 0` or `max_checkpoints == 0`.
    #[must_use]
    pub fn new(interval_s: f64, max_checkpoints: usize) -> Self {
        assert!(interval_s > 0.0, "poll interval must be positive");
        assert!(max_checkpoints > 0, "need at least one checkpoint slot");
        Self {
            interval_s,
            max_checkpoints,
            checkpoints: VecDeque::with_capacity(max_checkpoints),
            observations: 0,
            windows: 0,
            denied_reads: 0,
            tick_observations: 0,
            tick_windows: 0,
            last_time_s: 0.0,
        }
    }

    /// Retained checkpoints, oldest first.
    pub fn checkpoints(&self) -> impl Iterator<Item = &CadenceCheckpoint> {
        self.checkpoints.iter()
    }

    /// Total observations seen.
    #[must_use]
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Total denied SMC reads seen.
    #[must_use]
    pub fn denied_reads(&self) -> u64 {
        self.denied_reads
    }

    /// Overall windows-per-observation ratio (1.0 = no stretching).
    #[must_use]
    pub fn overall_stretch(&self) -> f64 {
        if self.observations == 0 {
            1.0
        } else {
            self.windows as f64 / self.observations as f64
        }
    }

    /// Merge a shard's totals (checkpoints stay per-shard; only counters
    /// combine meaningfully across independent timelines).
    #[must_use]
    pub fn merged_totals(mut self, other: &Self) -> Self {
        self.observations += other.observations;
        self.windows += other.windows;
        self.denied_reads += other.denied_reads;
        self
    }

    /// Serialize the accumulated cadence state (retained checkpoints,
    /// totals, and the in-progress tick) into a campaign checkpoint
    /// payload. Configuration (interval, retention) is not serialized —
    /// the resuming campaign rebuilds it from its own spec.
    pub fn encode_state(&self, w: &mut PayloadWriter) {
        w.put_u32(self.checkpoints.len() as u32);
        for c in &self.checkpoints {
            w.put_f64(c.time_s);
            w.put_u64(c.observations);
            w.put_u64(c.windows);
            w.put_f64(c.stretch);
        }
        w.put_u64(self.observations);
        w.put_u64(self.windows);
        w.put_u64(self.denied_reads);
        w.put_u64(self.tick_observations);
        w.put_u64(self.tick_windows);
        w.put_f64(self.last_time_s);
    }

    /// Restore state written by [`Self::encode_state`] into a freshly
    /// configured monitor, replacing its counters bit-identically.
    ///
    /// # Errors
    ///
    /// Truncated payloads and snapshots holding more checkpoints than
    /// this monitor retains come back as [`CheckpointError`].
    pub fn restore_state(&mut self, r: &mut PayloadReader<'_>) -> Result<(), CheckpointError> {
        let n = r.get_u32()? as usize;
        if n > self.max_checkpoints {
            return Err(CheckpointError::Corrupt("snapshot exceeds checkpoint retention"));
        }
        self.checkpoints.clear();
        for _ in 0..n {
            let time_s = r.get_f64()?;
            let observations = r.get_u64()?;
            let windows = r.get_u64()?;
            let stretch = r.get_f64()?;
            self.checkpoints.push_back(CadenceCheckpoint {
                time_s,
                observations,
                windows,
                stretch,
            });
        }
        self.observations = r.get_u64()?;
        self.windows = r.get_u64()?;
        self.denied_reads = r.get_u64()?;
        self.tick_observations = r.get_u64()?;
        self.tick_windows = r.get_u64()?;
        self.last_time_s = r.get_f64()?;
        Ok(())
    }

    fn push_checkpoint(&mut self, time_s: f64) {
        let stretch = if self.tick_observations == 0 {
            1.0
        } else {
            self.tick_windows as f64 / self.tick_observations as f64
        };
        if self.checkpoints.len() == self.max_checkpoints {
            self.checkpoints.pop_front();
        }
        self.checkpoints.push_back(CadenceCheckpoint {
            time_s,
            observations: self.tick_observations,
            windows: self.tick_windows,
            stretch,
        });
        self.tick_observations = 0;
        self.tick_windows = 0;
    }
}

impl Processor for ThrottleMonitor {
    fn name(&self) -> &'static str {
        "throttle-monitor"
    }

    fn mode(&self) -> PollMode {
        PollMode::FixedInterval { interval_s: self.interval_s }
    }

    fn on_event(&mut self, event: &Event) {
        if let Event::Sched(s) = event {
            self.observations += 1;
            self.windows += u64::from(s.windows_consumed);
            self.denied_reads += u64::from(s.denied_reads);
            self.tick_observations += 1;
            self.tick_windows += u64::from(s.windows_consumed);
            self.last_time_s = s.time_s;
        }
    }

    fn on_poll(&mut self, time_s: f64) {
        self.push_checkpoint(time_s);
    }

    fn on_finish(&mut self) {
        // Flush the trailing partial tick so short campaigns (shorter
        // than one poll interval) still report their cadence.
        if self.tick_observations > 0 || self.tick_windows > 0 {
            let time_s = self.last_time_s;
            self.push_checkpoint(time_s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SchedEvent;
    use crate::processor::Pump;

    fn sched(t: f64, windows: u32) -> Event {
        Event::Sched(SchedEvent {
            time_s: t,
            windows_consumed: windows,
            window_s: 1.0,
            denied_reads: 0,
        })
    }

    #[test]
    fn stretch_reflects_mitigation() {
        let mut m = ThrottleMonitor::new(10.0, 8);
        let mut pump = Pump::new();
        pump.attach(&mut m);
        for i in 0..30 {
            // Three windows consumed per observation: slow_updates(3.0).
            pump.dispatch(&sched(f64::from(i) * 3.0, 3));
        }
        pump.finish();
        assert_eq!(m.observations(), 30);
        assert!((m.overall_stretch() - 3.0).abs() < 1e-12);
        assert!(m.checkpoints().count() >= 2);
        for c in m.checkpoints() {
            assert!((c.stretch - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn short_campaign_flushes_partial_tick_on_finish() {
        // Campaign much shorter than one poll interval: without the
        // finish flush there would be zero checkpoints.
        let mut m = ThrottleMonitor::new(1000.0, 8);
        let mut pump = Pump::new();
        pump.attach(&mut m);
        for i in 0..5 {
            pump.dispatch(&sched(f64::from(i) * 3.0, 3));
        }
        pump.finish();
        let checkpoints: Vec<_> = m.checkpoints().copied().collect();
        assert_eq!(checkpoints.len(), 1);
        assert_eq!(checkpoints[0].observations, 5);
        assert!((checkpoints[0].stretch - 3.0).abs() < 1e-12);
        assert!((checkpoints[0].time_s - 12.0).abs() < 1e-12, "stamped at the last event");
    }

    #[test]
    fn state_round_trips_through_checkpoint_payload() {
        let mut m = ThrottleMonitor::new(10.0, 4);
        let mut pump = Pump::new();
        pump.attach(&mut m);
        for i in 0..37 {
            pump.dispatch(&sched(f64::from(i) * 3.0, 2));
        }
        // No finish: snapshot mid-campaign with a partial tick pending.
        let mut w = PayloadWriter::new();
        m.encode_state(&mut w);
        let section = w.into_section(5);
        let mut restored = ThrottleMonitor::new(10.0, 4);
        let mut r = PayloadReader::new(&section.payload);
        restored.restore_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(restored.observations(), m.observations());
        assert_eq!(restored.denied_reads(), m.denied_reads());
        assert_eq!(restored.overall_stretch().to_bits(), m.overall_stretch().to_bits());
        let a: Vec<_> = m.checkpoints().copied().collect();
        let b: Vec<_> = restored.checkpoints().copied().collect();
        assert_eq!(a, b);
        // The pending tick continues identically on both.
        Processor::on_finish(&mut restored);
        Processor::on_finish(&mut m);
        let a: Vec<_> = m.checkpoints().copied().collect();
        let b: Vec<_> = restored.checkpoints().copied().collect();
        assert_eq!(a, b, "partial tick flushed identically after restore");
    }

    #[test]
    fn checkpoint_window_is_bounded() {
        let mut m = ThrottleMonitor::new(1.0, 4);
        let mut pump = Pump::new();
        pump.attach(&mut m);
        for i in 0..100 {
            pump.dispatch(&sched(f64::from(i), 1));
        }
        pump.finish();
        assert_eq!(m.checkpoints().count(), 4, "bounded retention");
    }
}
