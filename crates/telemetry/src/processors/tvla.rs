//! Online TVLA processor: O(1) memory per channel.

use crate::block::EventBlock;
use crate::event::{ChannelId, Event};
use crate::processor::Processor;
use crate::replay::channel_for_label;
use psc_sca::checkpoint::{self, CheckpointError, PayloadReader, PayloadWriter};
use psc_sca::stats::MomentsQuad;
use psc_sca::tvla::{PlaintextClass, TvlaAccumulator, TvlaMatrix, TvlaTracker};
use std::collections::BTreeMap;

/// Early-stop watch on one channel: a two-dataset [`TvlaTracker`] over the
/// fixed plaintext classes (All-0s vs All-1s — the pair whose separation
/// is the leakage signal), armed once both sides hold enough samples.
#[derive(Debug, Clone)]
struct WatchState {
    min_per_side: u64,
    tracker: TvlaTracker,
}

/// Streaming TVLA over every channel it sees: six Welford accumulators
/// per channel instead of six growing `Vec`s. Shards run independent
/// instances; [`StreamingTvla::merged`] combines them exactly.
///
/// Channels registered through [`StreamingTvla::watch`] additionally feed
/// an online [`TvlaTracker`], giving adaptive campaigns a cheap
/// [`StreamingTvla::leakage_detected`] signal to stop collection at the
/// threshold crossing.
#[derive(Debug, Clone, Default)]
pub struct StreamingTvla {
    accs: BTreeMap<ChannelId, TvlaAccumulator>,
    current: Option<(u8, Option<PlaintextClass>)>,
    orphan_samples: u64,
    watched: BTreeMap<ChannelId, WatchState>,
}

impl StreamingTvla {
    /// Empty processor.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Per-channel accumulators.
    #[must_use]
    pub fn accumulators(&self) -> &BTreeMap<ChannelId, TvlaAccumulator> {
        &self.accs
    }

    /// The accumulator for `channel`, if any samples arrived on it.
    #[must_use]
    pub fn accumulator(&self, channel: ChannelId) -> Option<&TvlaAccumulator> {
        self.accs.get(&channel)
    }

    /// The 3×3 matrix for `channel` (None if the channel was never seen).
    #[must_use]
    pub fn matrix(&self, channel: ChannelId, label: impl Into<String>) -> Option<TvlaMatrix> {
        self.accs.get(&channel).map(|a| a.matrix(label))
    }

    /// Samples that arrived outside any window or in a window without a
    /// TVLA class (e.g. known-plaintext CPA windows).
    #[must_use]
    pub fn orphan_samples(&self) -> u64 {
        self.orphan_samples
    }

    /// Watch `channel` for adaptive early stopping: every All-0s sample
    /// feeds side A of an online [`TvlaTracker`], every All-1s sample side
    /// B, and [`StreamingTvla::leakage_detected`] fires once both sides
    /// hold at least `min_per_side` samples and |t| crosses the TVLA
    /// threshold.
    pub fn watch(&mut self, channel: ChannelId, min_per_side: u64) {
        self.watched.insert(channel, WatchState { min_per_side, tracker: TvlaTracker::new() });
    }

    /// The early-stop tracker of a watched channel.
    #[must_use]
    pub fn tracker(&self, channel: ChannelId) -> Option<&TvlaTracker> {
        self.watched.get(&channel).map(|w| &w.tracker)
    }

    /// Whether any watched channel has armed (reached its minimum sample
    /// count on both fixed classes) and crossed the TVLA threshold.
    #[must_use]
    pub fn leakage_detected(&self) -> bool {
        self.watched.values().any(|w| {
            let (a, b) = w.tracker.counts();
            a >= w.min_per_side && b >= w.min_per_side && w.tracker.leakage_detected()
        })
    }

    /// Serialize the full processor state — per-channel accumulators,
    /// early-stop trackers, orphan count and the in-flight window labels
    /// — into a campaign checkpoint payload.
    pub fn encode_state(&self, w: &mut PayloadWriter) {
        w.put_u32(self.accs.len() as u32);
        for (channel, acc) in &self.accs {
            w.put_str(&channel.to_string());
            checkpoint::put_tvla_accumulator(w, acc);
        }
        match self.current {
            None => w.put_u8(0),
            Some((pass, class)) => {
                w.put_u8(1);
                w.put_u8(pass);
                w.put_u8(class.map_or(3, |c| c.index() as u8));
            }
        }
        w.put_u64(self.orphan_samples);
        w.put_u32(self.watched.len() as u32);
        for (channel, watch) in &self.watched {
            w.put_str(&channel.to_string());
            w.put_u64(watch.min_per_side);
            checkpoint::put_tracker(w, &watch.tracker);
        }
    }

    /// Restore state written by [`Self::encode_state`], replacing this
    /// processor's accumulators bit-identically (any watches registered
    /// before the restore are replaced by the snapshot's).
    ///
    /// # Errors
    ///
    /// Truncated payloads and unknown channel labels come back as
    /// [`CheckpointError`].
    pub fn restore_state(&mut self, r: &mut PayloadReader<'_>) -> Result<(), CheckpointError> {
        let parse = |label: String| {
            channel_for_label(&label).ok_or(CheckpointError::Corrupt("unknown channel label"))
        };
        let accs = r.get_u32()?;
        self.accs.clear();
        for _ in 0..accs {
            let channel = parse(r.get_str()?)?;
            self.accs.insert(channel, checkpoint::get_tvla_accumulator(r)?);
        }
        self.current = match r.get_u8()? {
            0 => None,
            1 => {
                let pass = r.get_u8()?;
                let class = match r.get_u8()? {
                    i @ 0..=2 => Some(PlaintextClass::ALL[usize::from(i)]),
                    3 => None,
                    _ => return Err(CheckpointError::Corrupt("bad plaintext class index")),
                };
                Some((pass, class))
            }
            _ => return Err(CheckpointError::Corrupt("bad window-label flag")),
        };
        self.orphan_samples = r.get_u64()?;
        let watched = r.get_u32()?;
        self.watched.clear();
        for _ in 0..watched {
            let channel = parse(r.get_str()?)?;
            let min_per_side = r.get_u64()?;
            let tracker = checkpoint::get_tracker(r)?;
            self.watched.insert(channel, WatchState { min_per_side, tracker });
        }
        Ok(())
    }

    /// The label-uniform columnar fast path: every window of the block
    /// carries the same `(pass, class)`, so each channel's whole column
    /// lands in one TVLA cell. Channels are ingested four at a time
    /// through [`MomentsQuad`] — four independent Welford chains in SIMD
    /// lockstep, denied reads masked per lane — with the 1–3 channel
    /// remainder taking the scalar slice path. Bit-identical to the
    /// per-event stream: each accumulator sees its present samples in row
    /// order, and all-`None` columns create no accumulator entry.
    fn ingest_uniform_block(&mut self, block: &EventBlock, pass: usize, class: PlaintextClass) {
        let active: Vec<(usize, ChannelId)> = block
            .channels()
            .iter()
            .copied()
            .enumerate()
            .filter(|&(col, _)| block.column(col).iter().any(Option::is_some))
            .collect();
        let ci = class.index();
        let mut groups = active.chunks_exact(4);
        for group in &mut groups {
            let cols: [&[Option<f64>]; 4] = core::array::from_fn(|k| block.column(group[k].0));
            let lanes: [_; 4] =
                core::array::from_fn(|k| self.accs.entry(group[k].1).or_default().raw()[pass][ci]);
            let mut quad = MomentsQuad::load(lanes);
            quad.extend_columns(cols);
            for (lane, &(_, channel)) in quad.store().into_iter().zip(group) {
                let acc = self.accs.get_mut(&channel).expect("entry created above");
                let mut raw = acc.raw();
                raw[pass][ci] = lane;
                *acc = TvlaAccumulator::from_raw(raw);
            }
        }
        for &(col, channel) in groups.remainder() {
            self.accs.entry(channel).or_default().extend(
                pass,
                class,
                block.column(col).iter().copied().flatten(),
            );
        }
    }

    /// Merge a shard's accumulators into this one.
    #[must_use]
    pub fn merged(mut self, other: Self) -> Self {
        for (channel, acc) in other.accs {
            let entry = self.accs.entry(channel).or_default();
            *entry = entry.merged(acc);
        }
        for (channel, w) in other.watched {
            match self.watched.get_mut(&channel) {
                Some(mine) => mine.tracker = mine.tracker.merged(w.tracker),
                None => {
                    self.watched.insert(channel, w);
                }
            }
        }
        self.orphan_samples += other.orphan_samples;
        self
    }
}

impl Processor for StreamingTvla {
    fn name(&self) -> &'static str {
        "tvla"
    }

    fn on_event(&mut self, event: &Event) {
        match event {
            Event::Window(w) => self.current = Some((w.pass, w.class)),
            Event::Sample(s) => match self.current {
                Some((pass, Some(class))) => {
                    self.accs.entry(s.channel).or_default().push(usize::from(pass), class, s.value);
                    if let Some(w) = self.watched.get_mut(&s.channel) {
                        match class {
                            PlaintextClass::AllZeros => w.tracker.push_a(s.value),
                            PlaintextClass::AllOnes => w.tracker.push_b(s.value),
                            PlaintextClass::Random => {}
                        }
                    }
                }
                _ => self.orphan_samples += 1,
            },
            Event::Sched(_) => {}
        }
    }

    /// Columnar fast path: one accumulator resolution per channel column
    /// instead of one map lookup per sample. Chunked TVLA schedules ship
    /// label-uniform blocks, which take the SIMD lockstep quad path (see
    /// `StreamingTvla::ingest_uniform_block`); mixed blocks (the
    /// adaptive trace-major rounds) fall back to per-row label indexing.
    /// Bit-identical to the per-event stream either way.
    fn on_block(&mut self, block: &EventBlock) {
        let windows = block.windows();
        if windows.is_empty() {
            return;
        }
        let first = (windows[0].pass, windows[0].class);
        let uniform = windows.iter().all(|w| (w.pass, w.class) == first);
        match (uniform, first.1) {
            (true, Some(class)) => self.ingest_uniform_block(block, usize::from(first.0), class),
            (true, None) => {
                for (col, _) in block.channels().iter().enumerate() {
                    self.orphan_samples += block.column(col).iter().flatten().count() as u64;
                }
            }
            (false, _) => {
                for (col, &channel) in block.channels().iter().enumerate() {
                    for (w, v) in windows.iter().zip(block.column(col)) {
                        let Some(value) = *v else { continue };
                        match w.class {
                            Some(class) => self.accs.entry(channel).or_default().push(
                                usize::from(w.pass),
                                class,
                                value,
                            ),
                            None => self.orphan_samples += 1,
                        }
                    }
                }
            }
        }
        for (col, &channel) in block.channels().iter().enumerate() {
            if let Some(watch) = self.watched.get_mut(&channel) {
                for (w, v) in windows.iter().zip(block.column(col)) {
                    if let (Some(class), Some(value)) = (w.class, *v) {
                        match class {
                            PlaintextClass::AllZeros => watch.tracker.push_a(value),
                            PlaintextClass::AllOnes => watch.tracker.push_b(value),
                            PlaintextClass::Random => {}
                        }
                    }
                }
            }
        }
        self.current = windows.last().map(|w| (w.pass, w.class));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{SampleEvent, WindowEvent};

    fn window(pass: u8, class: PlaintextClass) -> Event {
        Event::Window(WindowEvent {
            seq: 0,
            time_s: 0.0,
            pass,
            class: Some(class),
            plaintext: [0; 16],
            ciphertext: [0; 16],
        })
    }

    fn sample(value: f64) -> Event {
        Event::Sample(SampleEvent { time_s: 0.0, channel: ChannelId::Pcpu, value })
    }

    #[test]
    fn accumulates_per_pass_and_class() {
        let mut p = StreamingTvla::new();
        for pass in 0..2u8 {
            for (ci, class) in PlaintextClass::ALL.iter().enumerate() {
                p.on_event(&window(pass, *class));
                for i in 0..10 {
                    p.on_event(&sample(f64::from(i) + f64::from(ci as u32) * 100.0));
                }
            }
        }
        let acc = p.accumulator(ChannelId::Pcpu).expect("seen");
        for pass in 0..2 {
            for class in PlaintextClass::ALL {
                assert_eq!(acc.count(pass, class), 10);
            }
        }
        assert_eq!(p.orphan_samples(), 0);
    }

    #[test]
    fn classless_windows_count_as_orphans() {
        let mut p = StreamingTvla::new();
        p.on_event(&Event::Window(WindowEvent {
            seq: 0,
            time_s: 0.0,
            pass: 0,
            class: None,
            plaintext: [0; 16],
            ciphertext: [0; 16],
        }));
        p.on_event(&sample(1.0));
        assert_eq!(p.orphan_samples(), 1);
        assert!(p.accumulator(ChannelId::Pcpu).is_none());
    }

    #[test]
    fn watched_channel_detects_fixed_class_separation() {
        let mut p = StreamingTvla::new();
        p.watch(ChannelId::Pcpu, 20);
        for i in 0..40 {
            let jitter = f64::from(i % 5) * 0.01;
            p.on_event(&window(0, PlaintextClass::AllZeros));
            p.on_event(&sample(1.0 + jitter));
            p.on_event(&window(0, PlaintextClass::AllOnes));
            p.on_event(&sample(1.5 + jitter));
            // Random-class samples must not feed the tracker.
            p.on_event(&window(0, PlaintextClass::Random));
            p.on_event(&sample(100.0));
        }
        assert!(p.leakage_detected());
        assert_eq!(p.tracker(ChannelId::Pcpu).unwrap().counts(), (40, 40));
    }

    #[test]
    fn watch_needs_minimum_samples_before_arming() {
        let mut p = StreamingTvla::new();
        p.watch(ChannelId::Pcpu, 50);
        for _ in 0..10 {
            p.on_event(&window(0, PlaintextClass::AllZeros));
            p.on_event(&sample(1.0));
            p.on_event(&window(0, PlaintextClass::AllOnes));
            p.on_event(&sample(9.0));
        }
        assert!(
            !p.leakage_detected(),
            "clear separation but below the minimum count must stay silent"
        );
    }

    #[test]
    fn unwatched_flat_channel_never_detects() {
        let mut p = StreamingTvla::new();
        p.watch(ChannelId::Pcpu, 10);
        for _ in 0..100 {
            p.on_event(&window(0, PlaintextClass::AllZeros));
            p.on_event(&sample(1.0));
            p.on_event(&window(0, PlaintextClass::AllOnes));
            p.on_event(&sample(1.0));
        }
        assert!(!p.leakage_detected(), "identical class means must not trip the tracker");
    }

    #[test]
    fn merge_combines_watch_trackers() {
        let feed = |p: &mut StreamingTvla| {
            for i in 0..30 {
                let jitter = f64::from(i % 3) * 0.01;
                p.on_event(&window(0, PlaintextClass::AllZeros));
                p.on_event(&sample(1.0 + jitter));
                p.on_event(&window(0, PlaintextClass::AllOnes));
                p.on_event(&sample(1.4 + jitter));
            }
        };
        let mut a = StreamingTvla::new();
        a.watch(ChannelId::Pcpu, 40);
        let mut b = StreamingTvla::new();
        b.watch(ChannelId::Pcpu, 40);
        feed(&mut a);
        assert!(!a.leakage_detected(), "one shard alone is below the minimum");
        feed(&mut b);
        let merged = a.merged(b);
        assert_eq!(merged.tracker(ChannelId::Pcpu).unwrap().counts(), (60, 60));
        assert!(merged.leakage_detected(), "merged shards cross the minimum");
    }

    #[test]
    fn merge_equals_single_stream() {
        let feed = |p: &mut StreamingTvla, salt: u64| {
            for pass in 0..2u8 {
                for class in PlaintextClass::ALL {
                    p.on_event(&window(pass, class));
                    for i in 0..50u64 {
                        let x = ((i.wrapping_mul(2_862_933_555_777_941_757).wrapping_add(salt))
                            >> 33) as f64;
                        p.on_event(&sample(x));
                    }
                }
            }
        };
        let mut whole = StreamingTvla::new();
        feed(&mut whole, 1);
        feed(&mut whole, 2);
        let mut a = StreamingTvla::new();
        feed(&mut a, 1);
        let mut b = StreamingTvla::new();
        feed(&mut b, 2);
        let merged = a.merged(b);
        let whole_m = whole.matrix(ChannelId::Pcpu, "x").expect("seen");
        let merged_m = merged.matrix(ChannelId::Pcpu, "x").expect("seen");
        for (w, m) in whole_m.cells.iter().zip(&merged_m.cells) {
            assert!((w.t_score - m.t_score).abs() < 1e-9, "{} vs {}", w.t_score, m.t_score);
        }
    }
}
