//! Batch-compatibility collectors.
//!
//! These processors *retain* what they see (growing vectors / trace
//! sets) — the opposite of the streaming accumulators. They exist so the
//! legacy batch APIs in `psc_core::campaign` can run over the same event
//! pipeline and return their historical data structures unchanged. New
//! code should prefer [`StreamingTvla`](super::StreamingTvla) /
//! [`StreamingCpa`](super::StreamingCpa), which are O(1) in trace count.

use crate::event::{ChannelId, Event};
use crate::processor::Processor;
use psc_sca::trace::{Trace, TraceSet};
use psc_sca::tvla::PlaintextClass;
use std::collections::BTreeMap;

/// Per-channel TVLA datasets: `values[pass][class]`, indexed like
/// [`PlaintextClass::ALL`].
pub type ClassDatasets = [[Vec<f64>; 3]; 2];

/// Collects raw per-class value vectors per channel (the legacy
/// `TvlaDatasets` shape).
#[derive(Debug, Clone, Default)]
pub struct DatasetCollector {
    data: BTreeMap<ChannelId, ClassDatasets>,
    current: Option<(u8, Option<PlaintextClass>)>,
    orphan_samples: u64,
}

impl DatasetCollector {
    /// Empty collector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Remove and return the datasets for `channel`.
    pub fn take(&mut self, channel: ChannelId) -> Option<ClassDatasets> {
        self.data.remove(&channel)
    }

    /// Samples seen outside a classed window.
    #[must_use]
    pub fn orphan_samples(&self) -> u64 {
        self.orphan_samples
    }

    /// Samples still held for channels nobody has [`take`]n — after the
    /// requested channels are extracted, this is the count of samples
    /// that arrived on *unrequested* channels (skipped, not panicked on).
    ///
    /// [`take`]: DatasetCollector::take
    #[must_use]
    pub fn residual_samples(&self) -> u64 {
        self.data.values().flat_map(|passes| passes.iter().flatten()).map(|v| v.len() as u64).sum()
    }
}

impl Processor for DatasetCollector {
    fn name(&self) -> &'static str {
        "dataset-collector"
    }

    fn on_event(&mut self, event: &Event) {
        match event {
            Event::Window(w) => self.current = Some((w.pass, w.class)),
            Event::Sample(s) => match self.current {
                Some((pass, Some(class))) => {
                    let class_idx = PlaintextClass::ALL
                        .iter()
                        .position(|c| *c == class)
                        .expect("ALL contains every class");
                    self.data.entry(s.channel).or_default()[usize::from(pass)][class_idx]
                        .push(s.value);
                }
                _ => self.orphan_samples += 1,
            },
            Event::Sched(_) => {}
        }
    }
}

/// Collects full known-plaintext trace sets per channel (the legacy
/// `collect_known_plaintext` shape).
#[derive(Debug, Clone, Default)]
pub struct TraceCollector {
    sets: BTreeMap<ChannelId, TraceSet>,
    current: Option<([u8; 16], [u8; 16])>,
    orphan_samples: u64,
    capacity_hint: usize,
}

impl TraceCollector {
    /// Empty collector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty collector that pre-allocates each channel's trace set for
    /// `expected_traces` (one reallocation-free growth path for
    /// campaigns whose size is known up front).
    #[must_use]
    pub fn with_capacity_hint(expected_traces: usize) -> Self {
        Self { capacity_hint: expected_traces, ..Self::default() }
    }

    /// Remove and return the trace set for `channel`.
    pub fn take(&mut self, channel: ChannelId) -> Option<TraceSet> {
        self.sets.remove(&channel)
    }

    /// Samples seen before any window marker.
    #[must_use]
    pub fn orphan_samples(&self) -> u64 {
        self.orphan_samples
    }
}

impl Processor for TraceCollector {
    fn name(&self) -> &'static str {
        "trace-collector"
    }

    fn on_event(&mut self, event: &Event) {
        match event {
            Event::Window(w) => self.current = Some((w.plaintext, w.ciphertext)),
            Event::Sample(s) => {
                let Some((plaintext, ciphertext)) = self.current else {
                    self.orphan_samples += 1;
                    return;
                };
                let hint = self.capacity_hint;
                self.sets
                    .entry(s.channel)
                    .or_insert_with(|| TraceSet::with_capacity(s.channel.to_string(), hint))
                    .push(Trace { value: s.value, plaintext, ciphertext });
            }
            Event::Sched(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{SampleEvent, WindowEvent};

    #[test]
    fn dataset_collector_shapes() {
        let mut c = DatasetCollector::new();
        for pass in 0..2u8 {
            for class in PlaintextClass::ALL {
                c.on_event(&Event::Window(WindowEvent {
                    seq: 0,
                    time_s: 0.0,
                    pass,
                    class: Some(class),
                    plaintext: [0; 16],
                    ciphertext: [0; 16],
                }));
                for i in 0..5 {
                    c.on_event(&Event::Sample(SampleEvent {
                        time_s: 0.0,
                        channel: ChannelId::Pcpu,
                        value: f64::from(i),
                    }));
                }
            }
        }
        let data = c.take(ChannelId::Pcpu).expect("seen");
        for pass in &data {
            for class in pass {
                assert_eq!(class.len(), 5);
            }
        }
        assert!(c.take(ChannelId::Pcpu).is_none(), "take removes");
    }

    #[test]
    fn trace_collector_keeps_pt_ct_pairs() {
        let mut c = TraceCollector::new();
        c.on_event(&Event::Window(WindowEvent {
            seq: 0,
            time_s: 0.0,
            pass: 0,
            class: None,
            plaintext: [7; 16],
            ciphertext: [9; 16],
        }));
        c.on_event(&Event::Sample(SampleEvent {
            time_s: 0.0,
            channel: ChannelId::Pcpu,
            value: 2.5,
        }));
        let set = c.take(ChannelId::Pcpu).expect("seen");
        assert_eq!(set.len(), 1);
        assert_eq!(set.traces()[0].plaintext, [7; 16]);
        assert_eq!(set.traces()[0].ciphertext, [9; 16]);
        assert_eq!(set.label, "PCPU");
    }
}
