//! Shard-persisting trace recorder.

use crate::block::EventBlock;
use crate::event::{ChannelId, Event};
use crate::faults::{FaultState, RetryPolicy};
use crate::processor::Processor;
use psc_sca::codec::{self, LabeledTrace};
use psc_sca::trace::{Trace, TraceSet};
use psc_sca::tvla::PlaintextClass;
use std::path::PathBuf;
use std::sync::Arc;

/// The window context a sample inherits: TVLA labels plus the
/// known-plaintext record.
#[derive(Debug, Clone, Copy)]
struct WindowLabels {
    pass: u8,
    class: Option<PlaintextClass>,
    plaintext: [u8; 16],
    ciphertext: [u8; 16],
}

/// A [`ShardRecorder`]'s durable counters, as captured into (and
/// restored from) a campaign checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecorderState {
    /// Channel label the recorder writes under.
    pub label: String,
    /// Shard files already written; numbering continues here on resume.
    pub files_written: u64,
    /// Total traces recorded.
    pub traces_recorded: u64,
    /// Batches lost after exhausting the retry budget.
    pub io_errors: u64,
    /// Transient write failures that were retried.
    pub io_retries: u64,
}

/// Persists one channel's traces to disk in bounded batches via
/// [`psc_sca::codec`]. Memory stays O(`shard_capacity`): whenever the
/// in-flight buffer fills, it is written out as one `.psct` shard file and
/// cleared. Shards are written in the labeled version-2 format (TVLA pass
/// and plaintext class recorded per trace), so a recorded campaign can be
/// replayed through the pump with its full TVLA structure intact. Offline
/// analysis re-reads the shards with [`codec::read_trace_set`] (labels
/// dropped) or [`codec::read_recording`] (labels kept) in any order.
#[derive(Debug)]
pub struct ShardRecorder {
    dir: PathBuf,
    label: String,
    channel: ChannelId,
    shard: usize,
    capacity: usize,
    buffer: Vec<LabeledTrace>,
    current: Option<WindowLabels>,
    files: Vec<PathBuf>,
    traces_recorded: u64,
    io_errors: u64,
    io_retries: u64,
    last_error: Option<String>,
    retry: RetryPolicy,
    faults: Option<Arc<FaultState>>,
}

impl ShardRecorder {
    /// Recorder for `channel`, writing files named
    /// `{label}-s{shard:03}-{index:04}.psct` under `dir`, holding at most
    /// `shard_capacity` traces in memory.
    ///
    /// # Panics
    ///
    /// Panics if `shard_capacity == 0`.
    #[must_use]
    pub fn new(
        dir: impl Into<PathBuf>,
        label: impl Into<String>,
        channel: ChannelId,
        shard: usize,
        shard_capacity: usize,
    ) -> Self {
        assert!(shard_capacity > 0, "recorder shard capacity must be >= 1");
        Self {
            dir: dir.into(),
            label: label.into(),
            channel,
            shard,
            capacity: shard_capacity,
            buffer: Vec::with_capacity(shard_capacity),
            current: None,
            files: Vec::new(),
            traces_recorded: 0,
            io_errors: 0,
            io_retries: 0,
            last_error: None,
            retry: RetryPolicy::default(),
            faults: None,
        }
    }

    /// Replace the write [`RetryPolicy`] (default: three attempts with
    /// millisecond backoff; [`RetryPolicy::none`] fails immediately).
    #[must_use]
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Arm fault injection: each batch write first consults
    /// [`FaultState::take_recorder_error`] and fails transiently while
    /// the plan's recorder-error budget lasts.
    #[must_use]
    pub fn with_faults(mut self, faults: Arc<FaultState>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Shard files written so far.
    #[must_use]
    pub fn files(&self) -> &[PathBuf] {
        &self.files
    }

    /// Total traces recorded (buffered + written).
    #[must_use]
    pub fn traces_recorded(&self) -> u64 {
        self.traces_recorded
    }

    /// Write failures that exhausted their retry budget (each also drops
    /// that batch; see [`last_error`]).
    ///
    /// [`last_error`]: ShardRecorder::last_error
    #[must_use]
    pub fn io_errors(&self) -> u64 {
        self.io_errors
    }

    /// Batch writes retried after a transient failure. Nonzero retries
    /// with zero [`io_errors`] means every fault recovered and no traces
    /// were lost.
    ///
    /// [`io_errors`]: ShardRecorder::io_errors
    #[must_use]
    pub fn io_retries(&self) -> u64 {
        self.io_retries
    }

    /// Most recent write failure message.
    #[must_use]
    pub fn last_error(&self) -> Option<&str> {
        self.last_error.as_deref()
    }

    fn write_batch(&self, path: &PathBuf) -> Result<(), codec::CodecError> {
        if self.faults.as_ref().is_some_and(|f| f.take_recorder_error()) {
            return Err(codec::CodecError::Io(std::io::Error::other("injected recorder fault")));
        }
        std::fs::File::create(path)
            .map_err(codec::CodecError::Io)
            .and_then(|f| codec::write_recording(&self.label, &self.buffer, f))
    }

    /// Persist the in-flight buffer now (idempotent when empty). Called
    /// automatically at capacity and on finish; checkpointing drivers
    /// call it before snapshotting so the snapshot's file count covers
    /// every recorded trace.
    pub fn flush(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let path = self.dir.join(format!(
            "{}-s{:03}-{:04}.psct",
            self.label,
            self.shard,
            self.files.len()
        ));
        // A missing recording directory is created on first flush;
        // genuine failures (permissions, a file in the way) still
        // surface through File::create below.
        let _ = std::fs::create_dir_all(&self.dir);
        // Transient failures are retried with backoff while the policy
        // allows; the buffer is kept intact across attempts and only
        // dropped once the budget is exhausted.
        let salt = self.shard as u64 ^ (self.files.len() as u64) << 32;
        let mut attempt = 1u32;
        let result = loop {
            match self.write_batch(&path) {
                Ok(()) => break Ok(()),
                Err(_) if self.retry.should_retry(attempt) => {
                    self.io_retries += 1;
                    std::thread::sleep(self.retry.delay(attempt, salt));
                    attempt += 1;
                }
                Err(e) => break Err(e),
            }
        };
        self.buffer.clear();
        match result {
            Ok(()) => self.files.push(path),
            Err(e) => {
                self.io_errors += 1;
                self.last_error = Some(format!("{}: {e}", path.display()));
            }
        }
    }

    /// Snapshot the recorder's durable state for a campaign checkpoint.
    /// Call [`Self::flush`] first so the in-flight buffer is empty and
    /// the snapshot covers every recorded trace.
    #[must_use]
    pub fn checkpoint_state(&self) -> RecorderState {
        RecorderState {
            label: self.label.clone(),
            files_written: self.files.len() as u64,
            traces_recorded: self.traces_recorded,
            io_errors: self.io_errors,
            io_retries: self.io_retries,
        }
    }

    /// Restore a freshly built recorder from a checkpoint snapshot:
    /// counters resume and file numbering continues after the already
    /// written shards (whose deterministic paths are reconstructed so
    /// [`Self::files`] stays complete across a resume).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot was taken for a different channel label —
    /// a configuration mismatch, not recoverable data corruption.
    pub fn restore_state(&mut self, state: &RecorderState) {
        assert_eq!(state.label, self.label, "recorder snapshot is for another channel");
        self.files = (0..state.files_written)
            .map(|i| self.dir.join(format!("{}-s{:03}-{:04}.psct", self.label, self.shard, i)))
            .collect();
        self.traces_recorded = state.traces_recorded;
        self.io_errors = state.io_errors;
        self.io_retries = state.io_retries;
    }

    /// Read every written shard back, concatenated in write order (test
    /// and offline-analysis convenience).
    ///
    /// # Errors
    ///
    /// Propagates the first codec/IO failure.
    pub fn read_back(files: &[PathBuf]) -> Result<TraceSet, codec::CodecError> {
        let mut merged = TraceSet::default();
        for path in files {
            let set = codec::read_trace_set(std::fs::File::open(path)?)?;
            if merged.is_empty() {
                merged = set;
            } else {
                merged.extend(set.iter().copied());
            }
        }
        Ok(merged)
    }
}

impl Processor for ShardRecorder {
    fn name(&self) -> &'static str {
        "recorder"
    }

    fn on_event(&mut self, event: &Event) {
        match event {
            Event::Window(w) => {
                self.current = Some(WindowLabels {
                    pass: w.pass,
                    class: w.class,
                    plaintext: w.plaintext,
                    ciphertext: w.ciphertext,
                });
            }
            Event::Sample(s) if s.channel == self.channel => {
                if let Some(w) = self.current {
                    self.buffer.push(LabeledTrace {
                        trace: Trace {
                            value: s.value,
                            plaintext: w.plaintext,
                            ciphertext: w.ciphertext,
                        },
                        pass: w.pass,
                        class: w.class,
                    });
                    self.traces_recorded += 1;
                    if self.buffer.len() >= self.capacity {
                        self.flush();
                    }
                }
            }
            _ => {}
        }
    }

    /// Columnar fast path: only this recorder's channel column is
    /// walked — other channels' samples are never even inspected. Shard
    /// files come out byte-identical to the per-event path (same traces,
    /// same flush boundaries).
    fn on_block(&mut self, block: &EventBlock) {
        let windows = block.windows();
        if windows.is_empty() {
            return;
        }
        if let Some(col) = block.channels().iter().position(|&c| c == self.channel) {
            for (w, v) in windows.iter().zip(block.column(col)) {
                if let Some(value) = *v {
                    self.buffer.push(LabeledTrace {
                        trace: Trace { value, plaintext: w.plaintext, ciphertext: w.ciphertext },
                        pass: w.pass,
                        class: w.class,
                    });
                    self.traces_recorded += 1;
                    if self.buffer.len() >= self.capacity {
                        self.flush();
                    }
                }
            }
        }
        self.current = windows.last().map(|w| WindowLabels {
            pass: w.pass,
            class: w.class,
            plaintext: w.plaintext,
            ciphertext: w.ciphertext,
        });
    }

    fn on_finish(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{SampleEvent, WindowEvent};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("psc_recorder_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn feed(rec: &mut ShardRecorder, n: usize) {
        for i in 0..n {
            let pt = core::array::from_fn(|b| (i + b) as u8);
            let ct = core::array::from_fn(|b| (i * 3 + b) as u8);
            rec.on_event(&Event::Window(WindowEvent {
                seq: i as u64,
                time_s: i as f64,
                pass: 0,
                class: None,
                plaintext: pt,
                ciphertext: ct,
            }));
            rec.on_event(&Event::Sample(SampleEvent {
                time_s: i as f64,
                channel: ChannelId::Pcpu,
                value: i as f64 * 0.5,
            }));
        }
        rec.on_finish();
    }

    #[test]
    fn shards_bound_memory_and_roundtrip() {
        let dir = temp_dir("roundtrip");
        let mut rec = ShardRecorder::new(&dir, "PHPC", ChannelId::Pcpu, 0, 40);
        feed(&mut rec, 100);
        assert_eq!(rec.traces_recorded(), 100);
        assert_eq!(rec.io_errors(), 0);
        // 100 traces at capacity 40 → shards of 40/40/20.
        assert_eq!(rec.files().len(), 3);
        let back = ShardRecorder::read_back(rec.files()).unwrap();
        assert_eq!(back.len(), 100);
        assert!((back.traces()[99].value - 49.5).abs() < 1e-12);
        for f in rec.files() {
            std::fs::remove_file(f).ok();
        }
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn other_channels_ignored() {
        let dir = temp_dir("filter");
        let mut rec = ShardRecorder::new(&dir, "PHPC", ChannelId::Timing, 0, 10);
        feed(&mut rec, 20);
        assert_eq!(rec.traces_recorded(), 0, "PCPU samples must not be recorded");
        assert!(rec.files().is_empty());
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn io_failure_counted_not_panicking() {
        // A directory path that can never be created: its parent is a
        // plain file (a bare missing directory is created on flush).
        let blocker = std::env::temp_dir().join(format!("psc_rec_blocker_{}", std::process::id()));
        std::fs::write(&blocker, b"not a dir").unwrap();
        let mut rec = ShardRecorder::new(blocker.join("xyz"), "PHPC", ChannelId::Pcpu, 0, 5);
        feed(&mut rec, 5);
        assert_eq!(rec.io_errors(), 1);
        assert!(rec.last_error().is_some());
        std::fs::remove_file(&blocker).ok();
    }

    #[test]
    fn missing_record_dir_is_created_on_flush() {
        let dir = std::env::temp_dir()
            .join(format!("psc_recorder_autodir_{}", std::process::id()))
            .join("nested");
        let mut rec = ShardRecorder::new(&dir, "PHPC", ChannelId::Pcpu, 0, 4);
        feed(&mut rec, 4);
        assert_eq!(rec.io_errors(), 0, "{:?}", rec.last_error());
        assert_eq!(rec.files().len(), 1);
        for f in rec.files() {
            std::fs::remove_file(f).ok();
        }
        std::fs::remove_dir(&dir).ok();
        std::fs::remove_dir(dir.parent().unwrap()).ok();
    }

    #[test]
    fn transient_write_faults_are_retried_and_recovered() {
        use crate::faults::FaultPlan;
        let dir = temp_dir("retry");
        let faults = FaultPlan { recorder_errors: 2, ..FaultPlan::default() }.armed();
        let mut rec = ShardRecorder::new(&dir, "PHPC", ChannelId::Pcpu, 0, 10).with_faults(faults);
        feed(&mut rec, 25);
        // Two injected faults, both inside the default 3-attempt budget:
        // retried, recovered, nothing lost.
        assert_eq!(rec.io_retries(), 2);
        assert_eq!(rec.io_errors(), 0);
        assert_eq!(rec.files().len(), 3);
        assert_eq!(ShardRecorder::read_back(rec.files()).unwrap().len(), 25);
        for f in rec.files() {
            std::fs::remove_file(f).ok();
        }
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn exhausted_retry_budget_loses_the_batch_and_counts_it() {
        use crate::faults::FaultPlan;
        let dir = temp_dir("exhaust");
        // Four consecutive faults on one batch: attempts 1-3 all fail,
        // the batch is dropped, and later batches write cleanly.
        let faults = FaultPlan { recorder_errors: 4, ..FaultPlan::default() }.armed();
        let mut rec = ShardRecorder::new(&dir, "PHPC", ChannelId::Pcpu, 0, 10).with_faults(faults);
        feed(&mut rec, 25);
        assert_eq!(rec.io_errors(), 1, "first batch lost");
        assert_eq!(rec.io_retries(), 3, "two on the lost batch, one recovering the second");
        assert_eq!(rec.files().len(), 2);
        assert_eq!(ShardRecorder::read_back(rec.files()).unwrap().len(), 15);
        for f in rec.files() {
            std::fs::remove_file(f).ok();
        }
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn snapshot_restore_continues_file_numbering() {
        let dir = temp_dir("snapshot");
        let mut rec = ShardRecorder::new(&dir, "PHPC", ChannelId::Pcpu, 1, 10);
        feed(&mut rec, 20);
        let state = rec.checkpoint_state();
        assert_eq!(state.files_written, 2);
        let mut resumed = ShardRecorder::new(&dir, "PHPC", ChannelId::Pcpu, 1, 10);
        resumed.restore_state(&state);
        assert_eq!(resumed.files(), rec.files());
        assert_eq!(resumed.traces_recorded(), 20);
        feed(&mut resumed, 10);
        assert_eq!(resumed.files().len(), 3, "numbering continues after restored shards");
        assert_eq!(ShardRecorder::read_back(resumed.files()).unwrap().len(), 30);
        for f in resumed.files() {
            std::fs::remove_file(f).ok();
        }
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn tvla_labels_survive_the_recording() {
        use psc_sca::tvla::PlaintextClass;
        let dir = temp_dir("labels");
        let mut rec = ShardRecorder::new(&dir, "PHPC", ChannelId::Pcpu, 2, 8);
        for (i, class) in PlaintextClass::ALL.iter().enumerate() {
            rec.on_event(&Event::Window(WindowEvent {
                seq: i as u64,
                time_s: i as f64,
                pass: 1,
                class: Some(*class),
                plaintext: [i as u8; 16],
                ciphertext: [0; 16],
            }));
            rec.on_event(&Event::Sample(SampleEvent {
                time_s: i as f64,
                channel: ChannelId::Pcpu,
                value: i as f64,
            }));
        }
        rec.on_finish();
        let recording =
            psc_sca::codec::read_recording(std::fs::File::open(&rec.files()[0]).unwrap()).unwrap();
        assert_eq!(recording.label, "PHPC");
        assert_eq!(recording.traces.len(), 3);
        for (t, class) in recording.traces.iter().zip(PlaintextClass::ALL) {
            assert_eq!(t.pass, 1);
            assert_eq!(t.class, Some(class));
        }
        for f in rec.files() {
            std::fs::remove_file(f).ok();
        }
        std::fs::remove_dir(&dir).ok();
    }
}
