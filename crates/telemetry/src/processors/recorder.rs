//! Shard-persisting trace recorder.

use crate::block::EventBlock;
use crate::event::{ChannelId, Event};
use crate::processor::Processor;
use psc_sca::codec::{self, LabeledTrace};
use psc_sca::trace::{Trace, TraceSet};
use psc_sca::tvla::PlaintextClass;
use std::path::PathBuf;

/// The window context a sample inherits: TVLA labels plus the
/// known-plaintext record.
#[derive(Debug, Clone, Copy)]
struct WindowLabels {
    pass: u8,
    class: Option<PlaintextClass>,
    plaintext: [u8; 16],
    ciphertext: [u8; 16],
}

/// Persists one channel's traces to disk in bounded batches via
/// [`psc_sca::codec`]. Memory stays O(`shard_capacity`): whenever the
/// in-flight buffer fills, it is written out as one `.psct` shard file and
/// cleared. Shards are written in the labeled version-2 format (TVLA pass
/// and plaintext class recorded per trace), so a recorded campaign can be
/// replayed through the pump with its full TVLA structure intact. Offline
/// analysis re-reads the shards with [`codec::read_trace_set`] (labels
/// dropped) or [`codec::read_recording`] (labels kept) in any order.
#[derive(Debug)]
pub struct ShardRecorder {
    dir: PathBuf,
    label: String,
    channel: ChannelId,
    shard: usize,
    capacity: usize,
    buffer: Vec<LabeledTrace>,
    current: Option<WindowLabels>,
    files: Vec<PathBuf>,
    traces_recorded: u64,
    io_errors: u64,
    last_error: Option<String>,
}

impl ShardRecorder {
    /// Recorder for `channel`, writing files named
    /// `{label}-s{shard:03}-{index:04}.psct` under `dir`, holding at most
    /// `shard_capacity` traces in memory.
    ///
    /// # Panics
    ///
    /// Panics if `shard_capacity == 0`.
    #[must_use]
    pub fn new(
        dir: impl Into<PathBuf>,
        label: impl Into<String>,
        channel: ChannelId,
        shard: usize,
        shard_capacity: usize,
    ) -> Self {
        assert!(shard_capacity > 0, "recorder shard capacity must be >= 1");
        Self {
            dir: dir.into(),
            label: label.into(),
            channel,
            shard,
            capacity: shard_capacity,
            buffer: Vec::with_capacity(shard_capacity),
            current: None,
            files: Vec::new(),
            traces_recorded: 0,
            io_errors: 0,
            last_error: None,
        }
    }

    /// Shard files written so far.
    #[must_use]
    pub fn files(&self) -> &[PathBuf] {
        &self.files
    }

    /// Total traces recorded (buffered + written).
    #[must_use]
    pub fn traces_recorded(&self) -> u64 {
        self.traces_recorded
    }

    /// Write failures (each also drops that batch; see [`last_error`]).
    ///
    /// [`last_error`]: ShardRecorder::last_error
    #[must_use]
    pub fn io_errors(&self) -> u64 {
        self.io_errors
    }

    /// Most recent write failure message.
    #[must_use]
    pub fn last_error(&self) -> Option<&str> {
        self.last_error.as_deref()
    }

    fn flush(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let path = self.dir.join(format!(
            "{}-s{:03}-{:04}.psct",
            self.label,
            self.shard,
            self.files.len()
        ));
        // A missing recording directory is created on first flush;
        // genuine failures (permissions, a file in the way) still
        // surface through File::create below.
        let _ = std::fs::create_dir_all(&self.dir);
        let result = std::fs::File::create(&path)
            .map_err(codec::CodecError::Io)
            .and_then(|f| codec::write_recording(&self.label, &self.buffer, f));
        self.buffer.clear();
        match result {
            Ok(()) => self.files.push(path),
            Err(e) => {
                self.io_errors += 1;
                self.last_error = Some(format!("{}: {e}", path.display()));
            }
        }
    }

    /// Read every written shard back, concatenated in write order (test
    /// and offline-analysis convenience).
    ///
    /// # Errors
    ///
    /// Propagates the first codec/IO failure.
    pub fn read_back(files: &[PathBuf]) -> Result<TraceSet, codec::CodecError> {
        let mut merged = TraceSet::default();
        for path in files {
            let set = codec::read_trace_set(std::fs::File::open(path)?)?;
            if merged.is_empty() {
                merged = set;
            } else {
                merged.extend(set.iter().copied());
            }
        }
        Ok(merged)
    }
}

impl Processor for ShardRecorder {
    fn name(&self) -> &'static str {
        "recorder"
    }

    fn on_event(&mut self, event: &Event) {
        match event {
            Event::Window(w) => {
                self.current = Some(WindowLabels {
                    pass: w.pass,
                    class: w.class,
                    plaintext: w.plaintext,
                    ciphertext: w.ciphertext,
                });
            }
            Event::Sample(s) if s.channel == self.channel => {
                if let Some(w) = self.current {
                    self.buffer.push(LabeledTrace {
                        trace: Trace {
                            value: s.value,
                            plaintext: w.plaintext,
                            ciphertext: w.ciphertext,
                        },
                        pass: w.pass,
                        class: w.class,
                    });
                    self.traces_recorded += 1;
                    if self.buffer.len() >= self.capacity {
                        self.flush();
                    }
                }
            }
            _ => {}
        }
    }

    /// Columnar fast path: only this recorder's channel column is
    /// walked — other channels' samples are never even inspected. Shard
    /// files come out byte-identical to the per-event path (same traces,
    /// same flush boundaries).
    fn on_block(&mut self, block: &EventBlock) {
        let windows = block.windows();
        if windows.is_empty() {
            return;
        }
        if let Some(col) = block.channels().iter().position(|&c| c == self.channel) {
            for (w, v) in windows.iter().zip(block.column(col)) {
                if let Some(value) = *v {
                    self.buffer.push(LabeledTrace {
                        trace: Trace { value, plaintext: w.plaintext, ciphertext: w.ciphertext },
                        pass: w.pass,
                        class: w.class,
                    });
                    self.traces_recorded += 1;
                    if self.buffer.len() >= self.capacity {
                        self.flush();
                    }
                }
            }
        }
        self.current = windows.last().map(|w| WindowLabels {
            pass: w.pass,
            class: w.class,
            plaintext: w.plaintext,
            ciphertext: w.ciphertext,
        });
    }

    fn on_finish(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{SampleEvent, WindowEvent};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("psc_recorder_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn feed(rec: &mut ShardRecorder, n: usize) {
        for i in 0..n {
            let pt = core::array::from_fn(|b| (i + b) as u8);
            let ct = core::array::from_fn(|b| (i * 3 + b) as u8);
            rec.on_event(&Event::Window(WindowEvent {
                seq: i as u64,
                time_s: i as f64,
                pass: 0,
                class: None,
                plaintext: pt,
                ciphertext: ct,
            }));
            rec.on_event(&Event::Sample(SampleEvent {
                time_s: i as f64,
                channel: ChannelId::Pcpu,
                value: i as f64 * 0.5,
            }));
        }
        rec.on_finish();
    }

    #[test]
    fn shards_bound_memory_and_roundtrip() {
        let dir = temp_dir("roundtrip");
        let mut rec = ShardRecorder::new(&dir, "PHPC", ChannelId::Pcpu, 0, 40);
        feed(&mut rec, 100);
        assert_eq!(rec.traces_recorded(), 100);
        assert_eq!(rec.io_errors(), 0);
        // 100 traces at capacity 40 → shards of 40/40/20.
        assert_eq!(rec.files().len(), 3);
        let back = ShardRecorder::read_back(rec.files()).unwrap();
        assert_eq!(back.len(), 100);
        assert!((back.traces()[99].value - 49.5).abs() < 1e-12);
        for f in rec.files() {
            std::fs::remove_file(f).ok();
        }
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn other_channels_ignored() {
        let dir = temp_dir("filter");
        let mut rec = ShardRecorder::new(&dir, "PHPC", ChannelId::Timing, 0, 10);
        feed(&mut rec, 20);
        assert_eq!(rec.traces_recorded(), 0, "PCPU samples must not be recorded");
        assert!(rec.files().is_empty());
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn io_failure_counted_not_panicking() {
        // A directory path that can never be created: its parent is a
        // plain file (a bare missing directory is created on flush).
        let blocker = std::env::temp_dir().join(format!("psc_rec_blocker_{}", std::process::id()));
        std::fs::write(&blocker, b"not a dir").unwrap();
        let mut rec = ShardRecorder::new(blocker.join("xyz"), "PHPC", ChannelId::Pcpu, 0, 5);
        feed(&mut rec, 5);
        assert_eq!(rec.io_errors(), 1);
        assert!(rec.last_error().is_some());
        std::fs::remove_file(&blocker).ok();
    }

    #[test]
    fn missing_record_dir_is_created_on_flush() {
        let dir = std::env::temp_dir()
            .join(format!("psc_recorder_autodir_{}", std::process::id()))
            .join("nested");
        let mut rec = ShardRecorder::new(&dir, "PHPC", ChannelId::Pcpu, 0, 4);
        feed(&mut rec, 4);
        assert_eq!(rec.io_errors(), 0, "{:?}", rec.last_error());
        assert_eq!(rec.files().len(), 1);
        for f in rec.files() {
            std::fs::remove_file(f).ok();
        }
        std::fs::remove_dir(&dir).ok();
        std::fs::remove_dir(dir.parent().unwrap()).ok();
    }

    #[test]
    fn tvla_labels_survive_the_recording() {
        use psc_sca::tvla::PlaintextClass;
        let dir = temp_dir("labels");
        let mut rec = ShardRecorder::new(&dir, "PHPC", ChannelId::Pcpu, 2, 8);
        for (i, class) in PlaintextClass::ALL.iter().enumerate() {
            rec.on_event(&Event::Window(WindowEvent {
                seq: i as u64,
                time_s: i as f64,
                pass: 1,
                class: Some(*class),
                plaintext: [i as u8; 16],
                ciphertext: [0; 16],
            }));
            rec.on_event(&Event::Sample(SampleEvent {
                time_s: i as f64,
                channel: ChannelId::Pcpu,
                value: i as f64,
            }));
        }
        rec.on_finish();
        let recording =
            psc_sca::codec::read_recording(std::fs::File::open(&rec.files()[0]).unwrap()).unwrap();
        assert_eq!(recording.label, "PHPC");
        assert_eq!(recording.traces.len(), 3);
        for (t, class) in recording.traces.iter().zip(PlaintextClass::ALL) {
            assert_eq!(t.pass, 1);
            assert_eq!(t.class, Some(class));
        }
        for f in rec.files() {
            std::fs::remove_file(f).ok();
        }
        std::fs::remove_dir(&dir).ok();
    }
}
