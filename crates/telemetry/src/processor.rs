//! The processor abstraction and the event pump.
//!
//! Mirrors the event-driven/polling split of embedded input pipelines:
//! an *event-driven* processor reacts to every bus event; a *polling*
//! processor also gets `on_poll` callbacks on a fixed simulated-time grid
//! (the cadence an attacker's sampling loop would use). Poll scheduling is
//! driven by event timestamps, not wall clock, so pipelines stay fully
//! deterministic and replayable.

use crate::block::EventBlock;
use crate::event::Event;
use crate::ring::Receiver;

/// How a processor wants to be driven.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PollMode {
    /// `on_event` only.
    EventDriven,
    /// `on_event` plus `on_poll` every `interval_s` of simulated time.
    FixedInterval {
        /// Poll period in simulated seconds.
        interval_s: f64,
    },
}

/// A streaming consumer of telemetry events.
pub trait Processor {
    /// Short identifier for reports.
    fn name(&self) -> &'static str;

    /// Driving mode; defaults to event-driven.
    fn mode(&self) -> PollMode {
        PollMode::EventDriven
    }

    /// Handle one bus event.
    fn on_event(&mut self, event: &Event);

    /// Handle one columnar [`EventBlock`] — the bus's batched fast path.
    ///
    /// The default replays the block as its exact scalar event sequence
    /// through [`Self::on_event`], so every processor works on a block
    /// bus unchanged. Hot processors override this with true columnar
    /// updates (per-column tight loops); an override must stay
    /// **bit-identical** to the default — same accumulator streams, same
    /// counters — which `tests/block_equivalence.rs` pins for the
    /// in-tree processors.
    fn on_block(&mut self, block: &EventBlock) {
        block.for_each_event(&mut |event| self.on_event(event));
    }

    /// Fixed-interval callback at simulated time `time_s` (only for
    /// [`PollMode::FixedInterval`] processors).
    fn on_poll(&mut self, time_s: f64) {
        let _ = time_s;
    }

    /// Stream end: flush buffered state (e.g. partial recorder shards).
    fn on_finish(&mut self) {}
}

struct Entry<'a> {
    processor: &'a mut dyn Processor,
    next_poll_s: Option<f64>,
    interval_s: f64,
}

/// Dispatches events from a bus to attached processors, scheduling
/// fixed-interval polls against simulated time.
#[derive(Default)]
pub struct Pump<'a> {
    entries: Vec<Entry<'a>>,
}

impl<'a> Pump<'a> {
    /// Empty pump.
    #[must_use]
    pub fn new() -> Self {
        Self { entries: Vec::new() }
    }

    /// Attach a processor (borrowed, so the caller keeps typed access to
    /// its accumulated state after the pump finishes).
    pub fn attach(&mut self, processor: &'a mut dyn Processor) -> &mut Self {
        let interval_s = match processor.mode() {
            PollMode::EventDriven => 0.0,
            PollMode::FixedInterval { interval_s } => {
                assert!(interval_s > 0.0, "poll interval must be positive");
                interval_s
            }
        };
        self.entries.push(Entry { processor, next_poll_s: None, interval_s });
        self
    }

    /// Deliver one event, firing any poll ticks that fall due at or
    /// before the event's timestamp.
    pub fn dispatch(&mut self, event: &Event) {
        let now_s = event.time_s();
        for entry in &mut self.entries {
            if entry.interval_s > 0.0 {
                let next = entry.next_poll_s.get_or_insert(now_s + entry.interval_s);
                while *next <= now_s {
                    entry.processor.on_poll(*next);
                    *next += entry.interval_s;
                }
            }
            entry.processor.on_event(event);
        }
    }

    /// Deliver one block. Event-driven processors take the columnar fast
    /// path ([`Processor::on_block`]); fixed-interval processors walk the
    /// block's scalar event sequence so their poll ticks fire at exactly
    /// the timestamps the per-event bus would have produced.
    pub fn dispatch_block(&mut self, block: &EventBlock) {
        for entry in &mut self.entries {
            if entry.interval_s > 0.0 {
                let interval_s = entry.interval_s;
                let next_poll_s = &mut entry.next_poll_s;
                let processor = &mut entry.processor;
                block.for_each_event(&mut |event| {
                    let now_s = event.time_s();
                    let next = next_poll_s.get_or_insert(now_s + interval_s);
                    while *next <= now_s {
                        processor.on_poll(*next);
                        *next += interval_s;
                    }
                    processor.on_event(event);
                });
            } else {
                entry.processor.on_block(block);
            }
        }
    }

    /// Drain `receiver` until every sender is gone, then finish.
    /// (Block buses are drained with a caller-owned `recv` +
    /// [`Pump::dispatch_block`] loop, so the caller decides what happens
    /// to each processed block — e.g. recycling it to the producer.)
    pub fn run(&mut self, receiver: &Receiver<Event>) {
        while let Some(event) = receiver.recv() {
            self.dispatch(&event);
        }
        self.finish();
    }

    /// Signal end of stream to all processors.
    pub fn finish(&mut self) {
        for entry in &mut self.entries {
            entry.processor.on_finish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ChannelId, SampleEvent};
    use crate::ring::{channel, OverflowPolicy};

    #[derive(Default)]
    struct Counter {
        events: usize,
        polls: Vec<f64>,
        finished: bool,
        interval_s: f64,
    }

    impl Processor for Counter {
        fn name(&self) -> &'static str {
            "counter"
        }

        fn mode(&self) -> PollMode {
            if self.interval_s > 0.0 {
                PollMode::FixedInterval { interval_s: self.interval_s }
            } else {
                PollMode::EventDriven
            }
        }

        fn on_event(&mut self, _event: &Event) {
            self.events += 1;
        }

        fn on_poll(&mut self, time_s: f64) {
            self.polls.push(time_s);
        }

        fn on_finish(&mut self) {
            self.finished = true;
        }
    }

    fn sample(t: f64) -> Event {
        Event::Sample(SampleEvent { time_s: t, channel: ChannelId::Pcpu, value: 1.0 })
    }

    #[test]
    fn event_driven_gets_every_event() {
        let mut p = Counter::default();
        let mut pump = Pump::new();
        pump.attach(&mut p);
        for i in 0..5 {
            pump.dispatch(&sample(f64::from(i)));
        }
        pump.finish();
        assert_eq!(p.events, 5);
        assert!(p.polls.is_empty());
        assert!(p.finished);
    }

    #[test]
    fn polling_fires_on_simulated_grid() {
        let mut p = Counter { interval_s: 1.0, ..Counter::default() };
        let mut pump = Pump::new();
        pump.attach(&mut p);
        // Events at t = 0.5, 1.0, ..., 4.0.
        for i in 1..=8 {
            pump.dispatch(&sample(f64::from(i) * 0.5));
        }
        pump.finish();
        assert_eq!(p.events, 8);
        // First event at 0.5 arms the clock at 1.5; ticks then fire at
        // 1.5, 2.5, 3.5 as later events pass those times.
        assert_eq!(p.polls, vec![1.5, 2.5, 3.5]);
    }

    #[test]
    fn block_dispatch_fires_polls_like_event_dispatch() {
        use crate::block::EventBlock;
        use crate::event::{SchedEvent, WindowEvent};
        let mut block = EventBlock::new();
        block.reset(&[ChannelId::Pcpu]);
        for i in 1..=8u64 {
            let t = i as f64 * 0.5;
            block.begin(WindowEvent {
                seq: i,
                time_s: t,
                pass: 0,
                class: None,
                plaintext: [0; 16],
                ciphertext: [0; 16],
            });
            block.sample(0, 1.0);
            block.commit(SchedEvent {
                time_s: t,
                windows_consumed: 1,
                window_s: 0.5,
                denied_reads: 0,
            });
        }

        let mut scalar = Counter { interval_s: 1.0, ..Counter::default() };
        let mut scalar_pump = Pump::new();
        scalar_pump.attach(&mut scalar);
        block.for_each_event(&mut |e| scalar_pump.dispatch(e));
        scalar_pump.finish();

        let mut blocked = Counter { interval_s: 1.0, ..Counter::default() };
        let mut block_pump = Pump::new();
        block_pump.attach(&mut blocked);
        block_pump.dispatch_block(&block);
        block_pump.finish();

        assert_eq!(scalar.events, blocked.events);
        assert_eq!(scalar.polls, blocked.polls, "poll grid must not shift under block dispatch");
    }

    #[test]
    fn run_drains_channel_to_completion() {
        let (tx, rx) = channel(4, OverflowPolicy::Block);
        let mut p = Counter::default();
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(sample(f64::from(i))).expect("receiver alive");
            }
        });
        let mut pump = Pump::new();
        pump.attach(&mut p);
        pump.run(&rx);
        producer.join().expect("producer ok");
        assert_eq!(p.events, 100);
        assert!(p.finished);
    }
}
