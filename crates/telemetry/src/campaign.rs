//! Sharded campaign scaffolding.
//!
//! A campaign fans N independent workers (each owning its own seeded
//! simulation rig) across OS threads; every worker runs its own bounded
//! event bus and streaming processors, and the driver merges the O(1)
//! accumulator states afterwards. This module holds the generic pieces —
//! work splitting and the scoped fan-out — so `psc_core::campaign` only
//! wires rigs and processors together.

/// Split `total` work items over `shards` workers: the first
/// `total % shards` workers get one extra item, matching the legacy
/// parallel collector's layout so seeds line up shard-for-shard.
///
/// # Panics
///
/// Panics if `shards == 0`.
#[must_use]
pub fn split_counts(total: usize, shards: usize) -> Vec<usize> {
    assert!(shards > 0, "need at least one shard");
    let per_shard = total / shards;
    let remainder = total % shards;
    (0..shards).map(|i| per_shard + usize::from(i < remainder)).collect()
}

/// Run `worker(shard_index)` on one OS thread per shard and collect the
/// results in shard order. Worker panics propagate.
pub fn run_sharded<T, W>(shards: usize, worker: W) -> Vec<T>
where
    T: Send,
    W: Fn(usize) -> T + Sync,
{
    assert!(shards > 0, "need at least one shard");
    let worker = &worker;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards).map(|i| scope.spawn(move || worker(i))).collect();
        handles.into_iter().map(|h| h.join().expect("campaign shard panicked")).collect()
    })
}

/// As [`run_sharded`], but a panicking worker takes down only its own
/// shard: the panic is caught at the join boundary and surfaced as
/// `Err(message)` in that shard's slot while every other shard's result
/// is kept. This is the isolation boundary behind graceful campaign
/// degradation — one poisoned rig or processor must not discard the
/// statistics the surviving shards already paid for.
pub fn run_sharded_caught<T, W>(shards: usize, worker: W) -> Vec<Result<T, String>>
where
    T: Send,
    W: Fn(usize) -> T + Sync,
{
    assert!(shards > 0, "need at least one shard");
    let worker = &worker;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards).map(|i| scope.spawn(move || worker(i))).collect();
        handles.into_iter().map(|h| h.join().map_err(|p| panic_message(&*p))).collect()
    })
}

/// Best-effort extraction of a panic payload's message (panics carry
/// `&str` or `String` in practice; anything else gets a placeholder).
#[must_use]
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_matches_legacy_layout() {
        assert_eq!(split_counts(53, 4), vec![14, 13, 13, 13]);
        assert_eq!(split_counts(12, 4), vec![3, 3, 3, 3]);
        assert_eq!(split_counts(3, 4), vec![1, 1, 1, 0]);
        assert_eq!(split_counts(0, 2), vec![0, 0]);
        assert_eq!(split_counts(10, 1), vec![10]);
    }

    #[test]
    fn split_conserves_total() {
        for total in [0usize, 1, 7, 100, 1023] {
            for shards in 1..=8 {
                assert_eq!(split_counts(total, shards).iter().sum::<usize>(), total);
            }
        }
    }

    #[test]
    fn sharded_workers_run_in_parallel_and_order() {
        let results = run_sharded(6, |i| i * 10);
        assert_eq!(results, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = run_sharded(0, |i| i);
    }

    #[test]
    fn caught_fanout_isolates_the_panicking_shard() {
        let results = run_sharded_caught(4, |i| {
            assert!(i != 2, "shard 2 goes down");
            i * 10
        });
        assert_eq!(results[0], Ok(0));
        assert_eq!(results[1], Ok(10));
        assert_eq!(results[3], Ok(30));
        let err = results[2].as_ref().unwrap_err();
        assert!(err.contains("shard 2 goes down"), "panic message surfaced: {err}");
    }
}
