//! Bounded ring buffer and the blocking MPSC channel built on it.
//!
//! Trace collection must never be silently unbounded: a real attacker's
//! poll loop outruns analysis all the time, and the paper's campaigns run
//! for tens of thousands of windows. Every queue in the telemetry pipeline
//! is therefore a fixed-capacity ring with an explicit overflow policy and
//! exact drop accounting — `Block` applies backpressure to the producer,
//! the `Drop*` policies shed load but count every shed event.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// What to do when a push meets a full buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Producer waits until space frees up (channel) / push is refused
    /// (raw buffer). No data loss.
    #[default]
    Block,
    /// The incoming item is discarded and counted.
    DropNewest,
    /// The oldest queued item is evicted (and counted) to make room.
    DropOldest,
}

/// Fixed-capacity FIFO with drop accounting.
#[derive(Debug, Clone)]
pub struct RingBuffer<T> {
    buf: VecDeque<T>,
    capacity: usize,
    policy: OverflowPolicy,
    dropped: u64,
    accepted: u64,
    high_water: u64,
}

impl<T> RingBuffer<T> {
    /// New buffer holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize, policy: OverflowPolicy) -> Self {
        assert!(capacity > 0, "ring buffer needs capacity >= 1");
        Self {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            policy,
            dropped: 0,
            accepted: 0,
            high_water: 0,
        }
    }

    /// Queued item count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer holds no items.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Whether the buffer is at capacity.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.buf.len() >= self.capacity
    }

    /// The fixed capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items dropped so far (shed pushes under `DropNewest`, evictions
    /// under `DropOldest`, refused pushes under `Block`).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Items accepted into the buffer so far.
    #[must_use]
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Peak queued occupancy ever reached, in items. Tracked under the
    /// same push path that owns the buffer, so it is exact, not sampled.
    #[must_use]
    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    /// Push under the configured policy. Returns `true` when `item` was
    /// accepted. Under `Block` a full buffer refuses the push (the caller
    /// — e.g. the channel sender — is responsible for waiting and
    /// retrying) and the refusal is counted as a drop.
    pub fn push(&mut self, item: T) -> bool {
        if self.is_full() {
            match self.policy {
                OverflowPolicy::Block | OverflowPolicy::DropNewest => {
                    self.dropped += 1;
                    return false;
                }
                OverflowPolicy::DropOldest => {
                    self.buf.pop_front();
                    self.dropped += 1;
                }
            }
        }
        self.buf.push_back(item);
        self.accepted += 1;
        self.high_water = self.high_water.max(self.buf.len() as u64);
        true
    }

    /// Push that never counts a refusal: used by the blocking channel,
    /// which waits for space instead of shedding. Returns `false` (without
    /// touching counters) when full.
    pub fn try_push(&mut self, item: T) -> Result<(), T> {
        if self.is_full() {
            return Err(item);
        }
        self.buf.push_back(item);
        self.accepted += 1;
        self.high_water = self.high_water.max(self.buf.len() as u64);
        Ok(())
    }

    /// Pop the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.buf.pop_front()
    }
}

/// Counters snapshot for one channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Items accepted into the queue.
    pub accepted: u64,
    /// Items shed (policy drops).
    pub dropped: u64,
    /// Items handed to the receiver.
    pub delivered: u64,
    /// Peak queued occupancy, in items (exact, tracked on every push).
    pub high_water: u64,
}

struct ChannelState<T> {
    ring: RingBuffer<T>,
    senders: usize,
    receiver_alive: bool,
    delivered: u64,
    /// Senders currently parked on `not_full` (Block policy).
    waiting_senders: usize,
    /// Whether the receiver is parked on `not_empty`.
    receiver_waiting: bool,
}

struct Shared<T> {
    state: Mutex<ChannelState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Sending half of a bounded event channel. Clone for multiple producers.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half of a bounded event channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// The error returned when sending into a channel whose receiver is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disconnected;

impl core::fmt::Display for Disconnected {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("telemetry channel receiver dropped")
    }
}

impl std::error::Error for Disconnected {}

/// Create a bounded channel of `capacity` items with `policy` overflow
/// behavior. `Block` gives lossless backpressure; the `Drop*` policies
/// shed load and account for it in [`ChannelStats::dropped`].
#[must_use]
pub fn channel<T>(capacity: usize, policy: OverflowPolicy) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(ChannelState {
            ring: RingBuffer::new(capacity, policy),
            senders: 1,
            receiver_alive: true,
            delivered: 0,
            waiting_senders: 0,
            receiver_waiting: false,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

impl<T> Sender<T> {
    /// Send `item` under the channel's policy.
    ///
    /// # Errors
    ///
    /// Returns [`Disconnected`] when the receiver has been dropped.
    pub fn send(&self, item: T) -> Result<(), Disconnected> {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if !state.receiver_alive {
                return Err(Disconnected);
            }
            match state.ring.policy {
                OverflowPolicy::Block => {
                    if state.ring.is_full() {
                        state.waiting_senders += 1;
                        state = self.shared.not_full.wait(state).unwrap_or_else(|e| e.into_inner());
                        state.waiting_senders -= 1;
                        continue;
                    }
                    let _ = state.ring.try_push(item);
                }
                OverflowPolicy::DropNewest | OverflowPolicy::DropOldest => {
                    state.ring.push(item);
                }
            }
            // Syscall-free hot path: wake the receiver only if it is
            // actually parked (tracked under the same lock).
            if state.receiver_waiting {
                self.shared.not_empty.notify_one();
            }
            return Ok(());
        }
    }

    /// Counters snapshot.
    #[must_use]
    pub fn stats(&self) -> ChannelStats {
        let state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        ChannelStats {
            accepted: state.ring.accepted(),
            dropped: state.ring.dropped(),
            delivered: state.delivered,
            high_water: state.ring.high_water(),
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.senders += 1;
        drop(state);
        Self { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.senders -= 1;
        if state.senders == 0 {
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Receive the next event, blocking while producers are alive.
    /// `None` means the channel is drained and every sender is gone.
    pub fn recv(&self) -> Option<T> {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = state.ring.pop() {
                state.delivered += 1;
                // Syscall-free hot path: wake a sender only if one is
                // actually parked (tracked under the same lock).
                if state.waiting_senders > 0 {
                    self.shared.not_full.notify_one();
                }
                return Some(item);
            }
            if state.senders == 0 {
                return None;
            }
            state.receiver_waiting = true;
            state = self.shared.not_empty.wait(state).unwrap_or_else(|e| e.into_inner());
            state.receiver_waiting = false;
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<T> {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        let item = state.ring.pop();
        if item.is_some() {
            state.delivered += 1;
            if state.waiting_senders > 0 {
                self.shared.not_full.notify_one();
            }
        }
        item
    }

    /// Counters snapshot.
    #[must_use]
    pub fn stats(&self) -> ChannelStats {
        let state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        ChannelStats {
            accepted: state.ring.accepted(),
            dropped: state.ring.dropped(),
            delivered: state.delivered,
            high_water: state.ring.high_water(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.receiver_alive = false;
        self.shared.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut ring = RingBuffer::new(4, OverflowPolicy::Block);
        for i in 0..4 {
            assert!(ring.push(i));
        }
        assert!(!ring.push(99), "full buffer refuses under Block");
        assert_eq!(ring.dropped(), 1);
        let drained: Vec<i32> = std::iter::from_fn(|| ring.pop()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3]);
    }

    #[test]
    fn high_water_tracks_peak_occupancy() {
        let mut ring = RingBuffer::new(8, OverflowPolicy::Block);
        for i in 0..5 {
            ring.push(i);
        }
        ring.pop();
        ring.pop();
        ring.push(9);
        assert_eq!(ring.high_water(), 5, "peak was 5, current occupancy is 4");
        let (tx, rx) = channel::<u8>(4, OverflowPolicy::DropNewest);
        for i in 0..3 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.stats().high_water, 3);
    }

    #[test]
    fn drop_oldest_evicts_front() {
        let mut ring = RingBuffer::new(2, OverflowPolicy::DropOldest);
        ring.push(1);
        ring.push(2);
        ring.push(3);
        assert_eq!(ring.dropped(), 1);
        assert_eq!(ring.pop(), Some(2));
        assert_eq!(ring.pop(), Some(3));
    }

    #[test]
    fn drop_newest_sheds_incoming() {
        let mut ring = RingBuffer::new(2, OverflowPolicy::DropNewest);
        ring.push(1);
        ring.push(2);
        assert!(!ring.push(3));
        assert_eq!(ring.dropped(), 1);
        assert_eq!(ring.accepted(), 2);
        assert_eq!(ring.pop(), Some(1));
    }

    #[test]
    fn channel_backpressure_roundtrip() {
        let (tx, rx) = channel::<u64>(8, OverflowPolicy::Block);
        let producer = std::thread::spawn(move || {
            for i in 0..1000 {
                tx.send(i).expect("receiver alive");
            }
        });
        let mut got = Vec::new();
        while let Some(v) = rx.recv() {
            got.push(v);
        }
        producer.join().expect("producer ok");
        assert_eq!(got, (0..1000).collect::<Vec<_>>());
        let stats = rx.stats();
        assert_eq!(stats.accepted, 1000);
        assert_eq!(stats.delivered, 1000);
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn channel_send_fails_after_receiver_drop() {
        let (tx, rx) = channel::<u8>(2, OverflowPolicy::Block);
        drop(rx);
        assert_eq!(tx.send(1), Err(Disconnected));
    }

    #[test]
    fn lossy_channel_counts_drops() {
        let (tx, rx) = channel::<u32>(2, OverflowPolicy::DropNewest);
        for i in 0..10 {
            tx.send(i).expect("receiver alive");
        }
        assert_eq!(rx.stats().dropped, 8);
        assert_eq!(rx.recv(), Some(0));
        assert_eq!(rx.recv(), Some(1));
        drop(tx);
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn multiple_producers_all_delivered() {
        let (tx, rx) = channel::<u64>(16, OverflowPolicy::Block);
        let txs: Vec<_> = (0..4).map(|_| tx.clone()).collect();
        drop(tx);
        let handles: Vec<_> = txs
            .into_iter()
            .enumerate()
            .map(|(p, tx)| {
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        tx.send(p as u64 * 1000 + i).expect("receiver alive");
                    }
                })
            })
            .collect();
        let mut got = Vec::new();
        while let Some(v) = rx.recv() {
            got.push(v);
        }
        for h in handles {
            h.join().expect("producer ok");
        }
        got.sort_unstable();
        let mut expect: Vec<u64> =
            (0..4).flat_map(|p| (0..100).map(move |i| p * 1000 + i)).collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }
}
