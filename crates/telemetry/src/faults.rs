//! Deterministic fault injection and retry policies.
//!
//! Robustness claims are only as good as the failures they were tested
//! against, and real failures (a transient `EIO`, a worker OOM-killed
//! mid-campaign, a throttled filesystem) are miserable to reproduce on
//! demand. This module provides the harness the fault-tolerance tests and
//! the `psc` CLI use to *manufacture* those failures deterministically:
//!
//! * [`FaultPlan`] — a declarative schedule of faults: fail the next N
//!   source fills on one shard, fail the next N recorder writes, panic a
//!   chosen shard's consumer at a chosen block, or slow the producer
//!   down;
//! * [`FaultState`] — the armed plan: shared atomics that the pipeline's
//!   instrumentation points consult. Each budget decrements exactly once
//!   per injected fault, so a plan of "2 source errors" produces exactly
//!   two, campaign-wide, regardless of thread interleaving;
//! * [`RetryPolicy`] — bounded exponential backoff with *deterministic*
//!   jitter (a [splitmix64] hash of a caller salt and the attempt
//!   number), so retry schedules are reproducible run-to-run.
//!
//! Everything is zero-cost when unarmed: the pipeline threads an
//! `Option<Arc<FaultState>>` and a `None` short-circuits before any
//! atomic is touched.
//!
//! [splitmix64]: https://prng.di.unimi.it/splitmix64.c

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A declarative schedule of faults to inject into one campaign run.
///
/// The default plan injects nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Fail this many consecutive trace-source fills on `source_shard`
    /// with a transient error (retryable by the source's
    /// [`RetryPolicy`]).
    pub source_errors: u32,
    /// Shard whose source fills fail (ignored when `source_errors == 0`).
    pub source_shard: usize,
    /// Fail this many recorder batch writes, campaign-wide, with a
    /// transient I/O error.
    pub recorder_errors: u32,
    /// Panic the consumer of shard `.0` when it has pumped block `.1`
    /// (0-based): `Some((1, 2))` panics shard 1's consumer after its
    /// third block.
    pub panic_shard: Option<(usize, u64)>,
    /// Extra wall-clock delay per source fill, microseconds — a slow
    /// producer, exercising bus back-pressure under degraded hardware.
    pub source_delay_us: u64,
    /// Drop this many outbound transport frames (a fleet worker's
    /// partial-state messages) before they reach the wire.
    pub frame_drops: u32,
    /// Extra wall-clock delay per outbound transport frame,
    /// microseconds — a congested or throttled network path.
    pub frame_delay_us: u64,
    /// Sever the transport connection this many times; each firing
    /// forces a reconnect (and, for a fleet worker, an epoch bump).
    pub disconnects: u32,
    /// Corrupt this many outbound transport frames by flipping one
    /// payload byte — the receiver must reject them on decode.
    pub frame_corrupt: u32,
}

impl FaultPlan {
    /// Arm the plan, producing the shared state the pipeline consults.
    #[must_use]
    pub fn armed(self) -> Arc<FaultState> {
        Arc::new(FaultState {
            source_budget: AtomicU32::new(self.source_errors),
            recorder_budget: AtomicU32::new(self.recorder_errors),
            panic_fired: AtomicBool::new(false),
            frame_drop_budget: AtomicU32::new(self.frame_drops),
            disconnect_budget: AtomicU32::new(self.disconnects),
            corrupt_budget: AtomicU32::new(self.frame_corrupt),
            plan: self,
        })
    }
}

/// An armed [`FaultPlan`]: shared, thread-safe fault budgets.
#[derive(Debug)]
pub struct FaultState {
    plan: FaultPlan,
    source_budget: AtomicU32,
    recorder_budget: AtomicU32,
    panic_fired: AtomicBool,
    frame_drop_budget: AtomicU32,
    disconnect_budget: AtomicU32,
    corrupt_budget: AtomicU32,
}

impl FaultState {
    /// The plan this state was armed from.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Should this source fill on `shard` fail? Consumes one unit of the
    /// source-error budget when it fires.
    pub fn take_source_error(&self, shard: usize) -> bool {
        if shard != self.plan.source_shard {
            return false;
        }
        self.source_budget
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
            .is_ok()
    }

    /// Should this recorder batch write fail? Consumes one unit of the
    /// recorder-error budget when it fires.
    pub fn take_recorder_error(&self) -> bool {
        self.recorder_budget
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
            .is_ok()
    }

    /// Should shard `shard`'s consumer panic after pumping block
    /// `block`? Fires at most once per campaign.
    pub fn take_consumer_panic(&self, shard: usize, block: u64) -> bool {
        match self.plan.panic_shard {
            Some((s, b)) if s == shard && block >= b => {
                !self.panic_fired.swap(true, Ordering::Relaxed)
            }
            _ => false,
        }
    }

    /// The per-fill producer delay, if the plan slows the source.
    #[must_use]
    pub fn source_delay(&self) -> Option<Duration> {
        (self.plan.source_delay_us > 0).then(|| Duration::from_micros(self.plan.source_delay_us))
    }

    /// Should this outbound transport frame be dropped? Consumes one
    /// unit of the frame-drop budget when it fires.
    pub fn take_frame_drop(&self) -> bool {
        self.frame_drop_budget
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
            .is_ok()
    }

    /// Should the transport connection be severed now? Consumes one
    /// unit of the disconnect budget when it fires.
    pub fn take_disconnect(&self) -> bool {
        self.disconnect_budget
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
            .is_ok()
    }

    /// Should this outbound transport frame be corrupted? Consumes one
    /// unit of the corruption budget when it fires.
    pub fn take_frame_corrupt(&self) -> bool {
        self.corrupt_budget
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
            .is_ok()
    }

    /// The per-frame transport delay, if the plan slows the wire.
    #[must_use]
    pub fn frame_delay(&self) -> Option<Duration> {
        (self.plan.frame_delay_us > 0).then(|| Duration::from_micros(self.plan.frame_delay_us))
    }
}

/// Bounded retry with exponential backoff and deterministic jitter.
///
/// `delay(attempt, salt)` for attempt 1, 2, … doubles the base delay per
/// attempt, caps it at `max_delay`, and adds up to 25% jitter derived
/// from a splitmix64 hash of `salt ^ attempt` — reproducible for a fixed
/// salt, decorrelated across shards (which pass their shard index).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    /// Three attempts, 1 ms → 8 ms backoff: generous for transient local
    /// I/O without stalling a real campaign on a hard failure.
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(8),
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl RetryPolicy {
    /// No retries at all: fail on the first error.
    #[must_use]
    pub fn none() -> Self {
        Self { max_attempts: 1, base_delay: Duration::ZERO, max_delay: Duration::ZERO }
    }

    /// Whether attempt number `attempt` (1-based) may be retried after a
    /// failure.
    #[must_use]
    pub fn should_retry(&self, attempt: u32) -> bool {
        attempt < self.max_attempts
    }

    /// Backoff before retrying after failed attempt `attempt` (1-based),
    /// with deterministic jitter keyed by `salt`.
    #[must_use]
    pub fn delay(&self, attempt: u32, salt: u64) -> Duration {
        let exp = attempt.saturating_sub(1).min(20);
        let base = self.base_delay.saturating_mul(1u32 << exp).min(self.max_delay);
        // Up to +25% deterministic jitter.
        let jitter_num = splitmix64(salt ^ u64::from(attempt)) % 256;
        base + base.mul_f64(jitter_num as f64 / 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_fire_exactly_n_times() {
        let state = FaultPlan {
            source_errors: 2,
            source_shard: 1,
            recorder_errors: 1,
            ..FaultPlan::default()
        }
        .armed();
        assert!(!state.take_source_error(0), "wrong shard never fires");
        assert!(state.take_source_error(1));
        assert!(state.take_source_error(1));
        assert!(!state.take_source_error(1), "budget exhausted");
        assert!(state.take_recorder_error());
        assert!(!state.take_recorder_error());
    }

    #[test]
    fn budgets_are_exact_under_contention() {
        let state =
            FaultPlan { source_errors: 100, source_shard: 0, ..FaultPlan::default() }.armed();
        let fired: u32 = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let state = Arc::clone(&state);
                    scope.spawn(move || {
                        (0..1000).filter(|_| state.take_source_error(0)).count() as u32
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(fired, 100, "each budget unit fires exactly once across threads");
    }

    #[test]
    fn consumer_panic_fires_once_at_or_after_block() {
        let state = FaultPlan { panic_shard: Some((2, 3)), ..FaultPlan::default() }.armed();
        assert!(!state.take_consumer_panic(2, 2), "before the target block");
        assert!(!state.take_consumer_panic(0, 5), "wrong shard");
        assert!(state.take_consumer_panic(2, 3));
        assert!(!state.take_consumer_panic(2, 4), "fires at most once");
    }

    #[test]
    fn retry_backoff_is_deterministic_bounded_and_monotonic() {
        let policy = RetryPolicy::default();
        assert!(policy.should_retry(1));
        assert!(policy.should_retry(2));
        assert!(!policy.should_retry(3));
        for attempt in 1..=6 {
            let a = policy.delay(attempt, 42);
            let b = policy.delay(attempt, 42);
            assert_eq!(a, b, "same salt, same delay");
            assert!(a <= policy.max_delay.mul_f64(1.25), "capped incl. jitter");
        }
        assert!(policy.delay(1, 7) >= policy.base_delay);
        assert_ne!(policy.delay(1, 7), policy.delay(1, 8), "salt decorrelates shards");
    }

    #[test]
    fn unarmed_plan_is_inert() {
        let state = FaultPlan::default().armed();
        assert!(!state.take_source_error(0));
        assert!(!state.take_recorder_error());
        assert!(!state.take_consumer_panic(0, 0));
        assert!(state.source_delay().is_none());
        assert!(!state.take_frame_drop());
        assert!(!state.take_disconnect());
        assert!(!state.take_frame_corrupt());
        assert!(state.frame_delay().is_none());
    }

    #[test]
    fn transport_budgets_fire_exactly_n_times() {
        let state = FaultPlan {
            frame_drops: 2,
            disconnects: 1,
            frame_corrupt: 1,
            frame_delay_us: 50,
            ..FaultPlan::default()
        }
        .armed();
        assert!(state.take_frame_drop());
        assert!(state.take_frame_drop());
        assert!(!state.take_frame_drop(), "drop budget exhausted");
        assert!(state.take_disconnect());
        assert!(!state.take_disconnect(), "disconnect budget exhausted");
        assert!(state.take_frame_corrupt());
        assert!(!state.take_frame_corrupt(), "corruption budget exhausted");
        assert_eq!(state.frame_delay(), Some(Duration::from_micros(50)));
    }
}
