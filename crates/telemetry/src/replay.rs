//! Synthetic event sources: feed recorded campaigns back through the pump.
//!
//! A [`crate::processors::ShardRecorder`] persists one channel's slice of
//! a campaign as labeled `.psct` shards; this module turns such a
//! [`Recording`] back into the exact event
//! stream a live rig would have produced — window marker (with the
//! recorded TVLA pass/class and known-plaintext record), the channel
//! sample, and a cadence record — so every streaming processor
//! ([`StreamingTvla`](crate::processors::StreamingTvla),
//! [`StreamingCpa`](crate::processors::StreamingCpa), monitors, even a
//! re-recording recorder) runs unchanged over offline data.

use crate::block::EventBlock;
use crate::event::{ChannelId, Event, SampleEvent, SchedEvent, WindowEvent};
use psc_sca::codec::{LabeledTrace, Recording};
use psc_smc::SmcKey;

/// Map a recording's channel label back to its [`ChannelId`]: `PCPU` and
/// `TIME` are the IOReport/timing pseudo-channels, any other four-byte
/// label is an SMC key. Returns `None` for labels that fit neither shape.
#[must_use]
pub fn channel_for_label(label: &str) -> Option<ChannelId> {
    match label {
        "PCPU" => Some(ChannelId::Pcpu),
        "TIME" => Some(ChannelId::Timing),
        other => {
            let bytes: [u8; 4] = other.as_bytes().try_into().ok()?;
            SmcKey::new(bytes).ok().map(ChannelId::Smc)
        }
    }
}

/// Pump one recording into `sink` as a synthetic event stream.
///
/// Each recorded trace becomes a `Window` event (carrying the recorded
/// pass/class/plaintext/ciphertext), one `Sample` on `channel`, and a
/// `Sched` record on a synthetic `window_s` timeline starting at
/// `seq_start`. Returns the sequence number after the last emitted
/// window, so multiple recordings (e.g. one per shard file) chain into
/// one monotone stream.
pub fn replay_recording(
    recording: &Recording,
    channel: ChannelId,
    seq_start: u64,
    window_s: f64,
    sink: &mut dyn FnMut(Event),
) -> u64 {
    let mut seq = seq_start;
    for t in &recording.traces {
        let time_s = (seq + 1) as f64 * window_s;
        sink(Event::Window(WindowEvent {
            seq,
            time_s,
            pass: t.pass,
            class: t.class,
            plaintext: t.trace.plaintext,
            ciphertext: t.trace.ciphertext,
        }));
        sink(Event::Sample(SampleEvent { time_s, channel, value: t.trace.value }));
        sink(Event::Sched(SchedEvent { time_s, windows_consumed: 1, window_s, denied_reads: 0 }));
        seq += 1;
    }
    seq
}

/// Append recorded traces to an [`EventBlock`] as replayed observations —
/// the columnar form of [`replay_recording`], used by the windowed shard
/// replay to stream chunks of a recording through the block bus. The
/// block must hold exactly one sample column (the recording's channel);
/// rows land on the same synthetic `window_s` timeline and yield the
/// same event sequence as the scalar replay. Returns the sequence number
/// after the last appended row.
///
/// # Panics
///
/// Panics if `block` does not have exactly one channel column.
pub fn fill_block(
    traces: &[LabeledTrace],
    seq_start: u64,
    window_s: f64,
    block: &mut EventBlock,
) -> u64 {
    assert_eq!(block.channels().len(), 1, "replay blocks carry one recorded channel");
    let mut seq = seq_start;
    for t in traces {
        let time_s = (seq + 1) as f64 * window_s;
        block.begin(WindowEvent {
            seq,
            time_s,
            pass: t.pass,
            class: t.class,
            plaintext: t.trace.plaintext,
            ciphertext: t.trace.ciphertext,
        });
        block.sample(0, t.trace.value);
        block.commit(SchedEvent { time_s, windows_consumed: 1, window_s, denied_reads: 0 });
        seq += 1;
    }
    seq
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::processors::StreamingTvla;
    use crate::Processor;
    use psc_sca::codec::LabeledTrace;
    use psc_sca::trace::Trace;
    use psc_sca::tvla::PlaintextClass;
    use psc_smc::key::key;

    #[test]
    fn labels_map_to_channels() {
        assert_eq!(channel_for_label("PCPU"), Some(ChannelId::Pcpu));
        assert_eq!(channel_for_label("TIME"), Some(ChannelId::Timing));
        assert_eq!(channel_for_label("PHPC"), Some(ChannelId::Smc(key("PHPC"))));
        assert_eq!(channel_for_label("toolong"), None);
        assert_eq!(channel_for_label(""), None);
    }

    #[test]
    fn replayed_recording_rebuilds_tvla_state() {
        let mut traces = Vec::new();
        for pass in 0..2u8 {
            for class in PlaintextClass::ALL {
                for i in 0..5 {
                    traces.push(LabeledTrace {
                        trace: Trace {
                            value: f64::from(i) + f64::from(class.index() as u32),
                            plaintext: class.fixed_plaintext().unwrap_or([i as u8; 16]),
                            ciphertext: [0; 16],
                        },
                        pass,
                        class: Some(class),
                    });
                }
            }
        }
        let recording = Recording { label: "PHPC".into(), traces };
        let channel = channel_for_label(&recording.label).unwrap();
        let mut tvla = StreamingTvla::new();
        let next = replay_recording(&recording, channel, 0, 1.0, &mut |e| tvla.on_event(&e));
        assert_eq!(next, 30);
        let acc = tvla.accumulator(channel).expect("replayed");
        for pass in 0..2 {
            for class in PlaintextClass::ALL {
                assert_eq!(acc.count(pass, class), 5);
            }
        }
    }

    #[test]
    fn fill_block_matches_scalar_replay() {
        let traces: Vec<LabeledTrace> = (0..7)
            .map(|i| LabeledTrace {
                trace: Trace {
                    value: f64::from(i) * 0.25,
                    plaintext: [i as u8; 16],
                    ciphertext: [0x40 | i as u8; 16],
                },
                pass: (i % 2) as u8,
                class: Some(PlaintextClass::ALL[(i % 3) as usize]),
            })
            .collect();
        let recording = Recording { label: "PHPC".into(), traces };
        let channel = channel_for_label(&recording.label).unwrap();

        let mut scalar = Vec::new();
        let end_scalar = replay_recording(&recording, channel, 3, 2.0, &mut |e| scalar.push(e));

        let mut block = EventBlock::new();
        block.reset(&[channel]);
        // Two chunks, continuing the sequence across them.
        let mid = fill_block(&recording.traces[..4], 3, 2.0, &mut block);
        let end_block = fill_block(&recording.traces[4..], mid, 2.0, &mut block);
        let mut blocked = Vec::new();
        block.for_each_event(&mut |e| blocked.push(*e));

        assert_eq!(end_scalar, end_block);
        assert_eq!(scalar, blocked, "block replay must re-emit the exact scalar stream");
    }

    #[test]
    fn seq_chains_across_recordings() {
        let recording = Recording {
            label: "PCPU".into(),
            traces: vec![LabeledTrace {
                trace: Trace { value: 1.0, plaintext: [0; 16], ciphertext: [0; 16] },
                pass: 0,
                class: None,
            }],
        };
        let mut events = Vec::new();
        let mid = replay_recording(&recording, ChannelId::Pcpu, 0, 1.0, &mut |e| events.push(e));
        let end = replay_recording(&recording, ChannelId::Pcpu, mid, 1.0, &mut |e| events.push(e));
        assert_eq!((mid, end), (1, 2));
        let seqs: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                Event::Window(w) => Some(w.seq),
                _ => None,
            })
            .collect();
        assert_eq!(seqs, vec![0, 1]);
    }
}
