//! Typed telemetry events.
//!
//! The attacker's measurement loop is event-shaped: every observation
//! window opens with the submitted plaintext / returned ciphertext
//! (§3.4's known-plaintext record), then yields one scalar sample per
//! polled channel, plus scheduler metadata (how many SoC windows the SMC
//! consumed before publishing — >1 under the interval-stretching
//! mitigation). Producers push these events into bounded
//! [`ring`](crate::ring) channels; [`Processor`](crate::processor::Processor)s
//! consume them.

use psc_sca::tvla::PlaintextClass;
use psc_smc::SmcKey;
use serde::{Deserialize, Serialize};

/// Identifies one telemetry channel (one time series).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ChannelId {
    /// An SMC key read through the unprivileged IOKit client.
    Smc(SmcKey),
    /// The IOReport `PCPU` energy delta (mJ per window).
    Pcpu,
    /// Wall-clock timing of the observation window (seconds).
    Timing,
}

impl core::fmt::Display for ChannelId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ChannelId::Smc(key) => write!(f, "{key}"),
            ChannelId::Pcpu => f.write_str("PCPU"),
            ChannelId::Timing => f.write_str("TIME"),
        }
    }
}

/// Start-of-window marker carrying the attacker's known-plaintext record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowEvent {
    /// Monotone per-shard window sequence number.
    pub seq: u64,
    /// Simulated time at the end of the window, seconds.
    pub time_s: f64,
    /// TVLA pass (0 = unprimed first collection, 1 = primed second);
    /// always 0 for known-plaintext CPA collection.
    pub pass: u8,
    /// TVLA plaintext class; `None` for known-plaintext CPA windows.
    pub class: Option<PlaintextClass>,
    /// Plaintext the attacker submitted.
    pub plaintext: [u8; 16],
    /// Ciphertext the victim returned.
    pub ciphertext: [u8; 16],
}

/// One scalar reading on one channel, inside the current window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SampleEvent {
    /// Simulated time of the reading, seconds.
    pub time_s: f64,
    /// Which channel produced the value.
    pub channel: ChannelId,
    /// The reading (watts for SMC power keys, mJ for PCPU, s for timing).
    pub value: f64,
}

/// Scheduler/cadence metadata for one observation window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedEvent {
    /// Simulated time at the end of the observation, seconds.
    pub time_s: f64,
    /// SoC windows consumed before the SMC published (>1 under the
    /// interval-stretching mitigation).
    pub windows_consumed: u32,
    /// Nominal window length, seconds.
    pub window_s: f64,
    /// SMC key reads denied by access control during this window.
    pub denied_reads: u32,
}

/// The telemetry event union flowing over the bus.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// Start-of-window marker (precedes its samples on the bus).
    Window(WindowEvent),
    /// One channel reading.
    Sample(SampleEvent),
    /// Scheduler/cadence metadata (closes the window's event group).
    Sched(SchedEvent),
}

impl Event {
    /// Simulated timestamp of the event, seconds.
    #[must_use]
    pub fn time_s(&self) -> f64 {
        match self {
            Event::Window(w) => w.time_s,
            Event::Sample(s) => s.time_s,
            Event::Sched(s) => s.time_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_smc::key::key;

    #[test]
    fn channel_ids_order_and_display() {
        let a = ChannelId::Smc(key("PHPC"));
        let b = ChannelId::Smc(key("PSTR"));
        assert!(a < b, "SMC keys order lexically");
        assert_eq!(a.to_string(), "PHPC");
        assert_eq!(ChannelId::Pcpu.to_string(), "PCPU");
        assert_eq!(ChannelId::Timing.to_string(), "TIME");
    }

    #[test]
    fn event_time_passthrough() {
        let e = Event::Sample(SampleEvent { time_s: 2.5, channel: ChannelId::Pcpu, value: 1.0 });
        assert!((e.time_s() - 2.5).abs() < 1e-12);
    }
}
