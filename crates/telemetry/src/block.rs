//! Columnar event blocks: the bus's batched unit of traffic.
//!
//! The scalar event stream costs one synchronized ring push/pop and one
//! `Processor` dispatch per event — and every observation fans out into
//! ~(2 + C) events (a window marker, one sample per channel, a sched
//! record). An [`EventBlock`] carries N whole observations as a
//! struct-of-arrays instead: one window-record column, one sample column
//! **per channel** (`Option<f64>` — `None` is a denied read, i.e. the
//! scalar stream's missing sample event), and one sched column. One
//! block is one channel synchronization and one dispatch, and columnar
//! consumers ([`Processor::on_block`](crate::processor::Processor::on_block))
//! update their accumulators with per-column tight loops instead of
//! per-event pattern matches.
//!
//! Blocks are **loss-free re-encodings** of the scalar stream:
//! [`EventBlock::for_each_event`] re-emits the exact event sequence a
//! scalar producer would have sent (window, samples in column order,
//! sched — denied reads emit nothing), which is both the compatibility
//! fallback for event-driven processors and the anchor of the
//! bit-identity equivalence suite. Buffers are reused across
//! [`EventBlock::clear`]/[`EventBlock::reset`] calls, so the steady
//! state of a producer loop is allocation-free.

use crate::event::{ChannelId, Event, SampleEvent, SchedEvent, WindowEvent};

/// A columnar batch of whole observations (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct EventBlock {
    channels: Vec<ChannelId>,
    windows: Vec<WindowEvent>,
    scheds: Vec<SchedEvent>,
    /// `columns[c][row]` — the sample of `channels[c]` in observation
    /// `row`, `None` when the read was denied.
    columns: Vec<Vec<Option<f64>>>,
}

impl EventBlock {
    /// Empty block with no channels.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the channel layout and clear all rows, reusing every buffer.
    /// Call once per campaign (or whenever the channel set changes);
    /// [`Self::clear`] is enough between blocks of the same layout.
    pub fn reset(&mut self, channels: &[ChannelId]) {
        if self.channels != channels {
            self.channels.clear();
            self.channels.extend_from_slice(channels);
            self.columns.resize_with(channels.len(), Vec::new);
        }
        self.clear();
    }

    /// Drop all rows, keeping the channel layout and the allocations.
    pub fn clear(&mut self) {
        self.windows.clear();
        self.scheds.clear();
        for col in &mut self.columns {
            col.clear();
        }
    }

    /// The channel layout, in column order.
    #[must_use]
    pub fn channels(&self) -> &[ChannelId] {
        &self.channels
    }

    /// Committed observations in the block.
    #[must_use]
    pub fn len(&self) -> usize {
        self.scheds.len()
    }

    /// Whether the block holds no committed observations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.scheds.is_empty()
    }

    /// Start a new observation row. Every sample column gets a `None`
    /// slot; fill readable channels with [`Self::sample`], then seal the
    /// row with [`Self::commit`].
    ///
    /// # Panics
    ///
    /// Panics if the previous row was not committed.
    pub fn begin(&mut self, window: WindowEvent) {
        assert_eq!(self.windows.len(), self.scheds.len(), "previous row not committed");
        self.windows.push(window);
        for col in &mut self.columns {
            col.push(None);
        }
    }

    /// Record the current row's sample for column `col`.
    ///
    /// # Panics
    ///
    /// Panics if no row is open or `col` is out of range.
    pub fn sample(&mut self, col: usize, value: f64) {
        assert_eq!(self.windows.len(), self.scheds.len() + 1, "no open row");
        *self.columns[col].last_mut().expect("open row has a slot per column") = Some(value);
    }

    /// Seal the current observation row with its scheduler record.
    ///
    /// # Panics
    ///
    /// Panics if no row is open.
    pub fn commit(&mut self, sched: SchedEvent) {
        assert_eq!(self.windows.len(), self.scheds.len() + 1, "no open row");
        self.scheds.push(sched);
    }

    /// The window records, one per observation row.
    #[must_use]
    pub fn windows(&self) -> &[WindowEvent] {
        &self.windows
    }

    /// The scheduler records, one per observation row.
    #[must_use]
    pub fn scheds(&self) -> &[SchedEvent] {
        &self.scheds
    }

    /// The sample column of `channels()[col]`.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    #[must_use]
    pub fn column(&self, col: usize) -> &[Option<f64>] {
        &self.columns[col]
    }

    /// Re-emit the block as the exact scalar event sequence a per-event
    /// producer would have sent: per row, the window marker, one sample
    /// per readable channel in column order, then the sched record. This
    /// is the compatibility fallback of
    /// [`Processor::on_block`](crate::processor::Processor::on_block)
    /// and the anchor of the block/event bit-identity tests.
    pub fn for_each_event(&self, sink: &mut dyn FnMut(&Event)) {
        for (row, (window, sched)) in self.windows.iter().zip(&self.scheds).enumerate() {
            sink(&Event::Window(*window));
            for (channel, col) in self.channels.iter().zip(&self.columns) {
                if let Some(value) = col[row] {
                    sink(&Event::Sample(SampleEvent {
                        time_s: window.time_s,
                        channel: *channel,
                        value,
                    }));
                }
            }
            sink(&Event::Sched(*sched));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_smc::key::key;

    fn window(seq: u64) -> WindowEvent {
        WindowEvent {
            seq,
            time_s: seq as f64,
            pass: 0,
            class: None,
            plaintext: [seq as u8; 16],
            ciphertext: [0; 16],
        }
    }

    fn sched(seq: u64) -> SchedEvent {
        SchedEvent { time_s: seq as f64, windows_consumed: 1, window_s: 1.0, denied_reads: 0 }
    }

    #[test]
    fn block_reemits_the_scalar_stream_in_order() {
        let channels = [ChannelId::Smc(key("PHPC")), ChannelId::Pcpu];
        let mut block = EventBlock::new();
        block.reset(&channels);
        for row in 0..3u64 {
            block.begin(window(row));
            if row != 1 {
                block.sample(0, row as f64 + 0.5); // row 1: denied SMC read
            }
            block.sample(1, row as f64 * 10.0);
            block.commit(sched(row));
        }
        assert_eq!(block.len(), 3);
        let mut events = Vec::new();
        block.for_each_event(&mut |e| events.push(*e));
        // Rows 0 and 2 fan out into 4 events, row 1 (denied) into 3.
        assert_eq!(events.len(), 11);
        assert!(matches!(events[0], Event::Window(w) if w.seq == 0));
        assert!(
            matches!(events[1], Event::Sample(s) if s.channel == channels[0] && s.value == 0.5)
        );
        assert!(matches!(events[2], Event::Sample(s) if s.channel == ChannelId::Pcpu));
        assert!(matches!(events[3], Event::Sched(_)));
        // Denied row: window, PCPU sample, sched only.
        assert!(matches!(events[4], Event::Window(w) if w.seq == 1));
        assert!(matches!(events[5], Event::Sample(s) if s.channel == ChannelId::Pcpu));
        assert!(matches!(events[6], Event::Sched(_)));
    }

    #[test]
    fn clear_keeps_layout_and_reset_rebuilds_it() {
        let mut block = EventBlock::new();
        block.reset(&[ChannelId::Pcpu]);
        block.begin(window(0));
        block.sample(0, 1.0);
        block.commit(sched(0));
        block.clear();
        assert!(block.is_empty());
        assert_eq!(block.channels(), &[ChannelId::Pcpu]);
        block.reset(&[ChannelId::Pcpu, ChannelId::Timing]);
        assert_eq!(block.channels().len(), 2);
        block.begin(window(0));
        block.commit(sched(0));
        assert_eq!(block.column(1), &[None]);
    }

    #[test]
    #[should_panic(expected = "previous row not committed")]
    fn begin_requires_committed_row() {
        let mut block = EventBlock::new();
        block.reset(&[ChannelId::Pcpu]);
        block.begin(window(0));
        block.begin(window(1));
    }

    #[test]
    #[should_panic(expected = "no open row")]
    fn sample_requires_open_row() {
        let mut block = EventBlock::new();
        block.reset(&[ChannelId::Pcpu]);
        block.sample(0, 1.0);
    }
}
