//! # psc-telemetry — streaming event-bus telemetry
//!
//! The paper's attacks (§3.4) are fundamentally *streaming*: an
//! unprivileged process polls SMC / IOReport channels in a loop and
//! accumulates statistics over tens of thousands of measurement windows.
//! This crate turns trace collection from "fill `Vec`s, analyze later"
//! into a publish/subscribe pipeline:
//!
//! * [`event`] — the typed events: [`WindowEvent`]
//!   (plaintext/ciphertext window markers), [`SampleEvent`]
//!   (one scalar per channel per window), [`SchedEvent`]
//!   (cadence metadata: windows consumed, denied reads);
//! * [`block`] — columnar [`EventBlock`]s: whole observations as
//!   struct-of-arrays (window records, one `Option<f64>` sample column
//!   per channel, sched records), the bus's batched unit of traffic —
//!   one ring synchronization and one dispatch per *block* instead of
//!   per event;
//! * [`ring`] — bounded ring buffers and the blocking MPSC channel built
//!   on them, with explicit [`OverflowPolicy`] and
//!   exact drop accounting;
//! * [`processor`] — the [`Processor`] trait
//!   (event-driven or fixed-interval polling against simulated time) and
//!   the [`Pump`] that dispatches a bus to processors;
//! * [`processors`] — streaming consumers with **O(1) memory in trace
//!   count**: online TVLA (Welford accumulators →
//!   the same 3×3 `TvlaMatrix` as the batch path), incremental CPA
//!   (running per-guess/byte sums), a shard-persisting trace recorder
//!   over `psc_sca::codec`, and a throttling/cadence monitor — plus
//!   retaining batch-compat collectors for the legacy APIs;
//! * [`replay`] — synthetic event sources: recorded `.psct` campaigns
//!   pumped back through the same processors as offline replays;
//! * [`campaign`] — work splitting and the scoped thread fan-out that
//!   `psc_core`'s session driver uses to shard collection across workers
//!   and sum-merge the accumulator shards;
//! * [`metrics`] / [`spans`] — the observability layer (see below).
//!
//! ## The block fast path
//!
//! Producers should batch observations into [`EventBlock`]s and send
//! those over the bus; per-event channels remain for fine-grained or
//! irregular streams. Every [`Processor`] works on a block bus out of
//! the box — the default [`Processor::on_block`] replays the block as
//! its exact scalar event sequence through `on_event` — and a processor
//! should *override* `on_block` when it is hot enough for per-event
//! dispatch to matter: resolve per-channel state once per column, then
//! update accumulators in a tight loop over the column slice (see
//! [`StreamingTvla`], [`StreamingCpa`] and [`ShardRecorder`] for the
//! pattern). Overrides must stay **bit-identical** to the per-event
//! fallback — same accumulator streams, same drop/orphan counters — a
//! contract pinned by the workspace `tests/block_equivalence.rs` suite.
//! Fixed-interval (polling) processors are always driven per event by
//! [`Pump::dispatch_block`] so their poll grid never shifts.
//!
//! ## Observability
//!
//! The pipeline's internal state — bus occupancy and drops by
//! [`OverflowPolicy`], recycle-lane hit/miss, per-block dispatch and
//! source-fill latency, denied reads, recorder I/O errors, adaptive
//! rounds-to-stop — is surfaced through two opt-in, zero-cost-when-off
//! facilities:
//!
//! * [`metrics`] — atomic [`Counter`]s, high-water [`Gauge`]s and fixed
//!   log2-bucket [`Histogram`]s behind a [`MetricsRegistry`]. The driver
//!   runs **one registry per shard** and merges the per-shard
//!   [`MetricsSnapshot`]s at the end — counters add, gauges max,
//!   histograms add bucket-wise — exactly mirroring how
//!   `TvlaAccumulator::merged` / `Cpa::merge` combine analysis shards,
//!   so fleet members aggregate metrics the same way they aggregate
//!   statistics (the law is pinned by proptests). The merged snapshot
//!   plus wall time form the [`MetricsReport`] embedded in campaign
//!   reports; canonical metric names live in [`metrics::names`].
//! * [`spans`] — a [`SpanTracer`] collecting campaign→shard→stage spans
//!   and emitting them as Chrome trace-event JSON
//!   ([`SpanTracer::to_chrome_json`]), loadable in Perfetto for a
//!   flame-chart view of producer/consumer overlap.
//!
//! Instrumentation points in the driver are gated behind `Option`
//! handles: with observability off, no registry or tracer is allocated,
//! no clock is read, and the pipeline's analysis output stays
//! bit-identical (metrics only observe — they never steer), with the
//! overhead of the *on* path measured in `BENCH_bus.json`. The
//! workspace is air-gapped, so reports and traces are emitted as
//! hand-rolled JSON and checked with the minimal
//! [`metrics::validate_json`] parser.
//!
//! ## Example
//!
//! ```
//! use psc_telemetry::event::{ChannelId, Event, SampleEvent, WindowEvent};
//! use psc_telemetry::processor::Pump;
//! use psc_telemetry::processors::StreamingTvla;
//! use psc_telemetry::ring::{channel, OverflowPolicy};
//! use psc_sca::tvla::PlaintextClass;
//!
//! let (tx, rx) = channel(256, OverflowPolicy::Block);
//! let producer = std::thread::spawn(move || {
//!     for pass in 0..2u8 {
//!         for class in PlaintextClass::ALL {
//!             for i in 0..100u64 {
//!                 tx.send(Event::Window(WindowEvent {
//!                     seq: i, time_s: i as f64, pass, class: Some(class),
//!                     plaintext: [0; 16], ciphertext: [0; 16],
//!                 })).unwrap();
//!                 tx.send(Event::Sample(SampleEvent {
//!                     time_s: i as f64, channel: ChannelId::Pcpu,
//!                     value: 1.0 + (i % 7) as f64 * 0.01,
//!                 })).unwrap();
//!             }
//!         }
//!     }
//! });
//! let mut tvla = StreamingTvla::new();
//! let mut pump = Pump::new();
//! pump.attach(&mut tvla);
//! pump.run(&rx);
//! producer.join().unwrap();
//! let matrix = tvla.matrix(ChannelId::Pcpu, "PCPU").unwrap();
//! assert_eq!(matrix.cells.len(), 9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod campaign;
pub mod event;
pub mod faults;
pub mod metrics;
pub mod processor;
pub mod processors;
pub mod replay;
pub mod ring;
pub mod spans;

pub use block::EventBlock;
pub use campaign::{panic_message, run_sharded, run_sharded_caught, split_counts};
pub use event::{ChannelId, Event, SampleEvent, SchedEvent, WindowEvent};
pub use faults::{FaultPlan, FaultState, RetryPolicy};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, MetricsReport, MetricsSnapshot};
pub use processor::{PollMode, Processor, Pump};
pub use processors::{
    DatasetCollector, ShardRecorder, StreamingCpa, StreamingTvla, ThrottleMonitor, TraceCollector,
};
pub use replay::{channel_for_label, replay_recording};
pub use ring::{channel, ChannelStats, OverflowPolicy, Receiver, RingBuffer, Sender};
pub use spans::{SpanRecord, SpanTracer};
